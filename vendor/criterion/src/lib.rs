//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched from crates.io. This vendored crate keeps the
//! workspace's `[[bench]]` targets compiling and running: each
//! `bench_function` warms up once, runs the closure for a fixed number of
//! samples, and prints mean wall-clock time per iteration. No statistics,
//! plots, or baselines — just honest timings on stdout.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle (one per `criterion_group!` function).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), 20, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Upstream-API compatibility; nothing to flush here.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // One warm-up pass, then the timed samples.
    f(&mut b);
    b.elapsed = Duration::ZERO;
    b.iters = 0;
    for _ in 0..samples {
        f(&mut b);
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.iters == 0 {
        println!("bench {label:<40} (no iterations)");
    } else {
        let per_iter = b.elapsed.as_nanos() / b.iters as u128;
        println!(
            "bench {label:<40} {:>12} ns/iter ({} iters)",
            per_iter, b.iters
        );
    }
}

/// Passed to the benchmark closure; accumulates timed iterations.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one call of `f` and accumulates it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
