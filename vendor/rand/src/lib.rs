//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched from crates.io. This vendored crate implements the small API
//! surface the workspace actually uses — `StdRng::seed_from_u64`, `gen`,
//! `gen_range`, `gen_bool` — on top of a deterministic xoshiro256**
//! generator. Streams differ from upstream `rand`, but every consumer in
//! this workspace seeds explicitly and asserts only statistical properties,
//! so reproducibility (same seed → same stream, forever) is what matters.

pub mod rngs {
    /// Deterministic 256-bit-state generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as xoshiro recommends.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_u64(seed)
        }
    }
}

/// Raw entropy source: everything else builds on `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integers usable as [`Rng::gen_range`] bounds. A single blanket
/// `SampleRange` impl over this trait keeps type inference flowing from the
/// use site into the range literal, as upstream `rand` does.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u128;
        T::from_i128(lo + (rng.next_u64() as u128 % span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u128 + 1;
        T::from_i128(lo + (rng.next_u64() as u128 % span) as i128)
    }
}

/// The user-facing sampling interface (subset of upstream `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u32..=3);
            assert!(w <= 3);
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
