//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched from crates.io. This vendored crate implements the
//! subset the workspace's property tests use: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer-range and tuple
//! strategies, `Just`, `prop_map`/`prop_flat_map`, and
//! `proptest::collection::vec`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! values but is not minimized), and value streams are seeded
//! deterministically from the test name, so runs are reproducible without a
//! persistence file.

pub mod test_runner {
    /// Failure raised by `prop_assert!`-family macros inside a case body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Runner configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic value source handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// FNV-1a over the test name: per-test deterministic seeds.
    pub fn seed_for(name: &str, case: u64) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (full value range).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`](fn@vec): exact, half-open, or inclusive.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize % span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body; failure aborts the case
/// with a message instead of panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: both sides equal `{:?}`", l);
    }};
}

/// Declares property tests: each `fn` runs its body over `cases` generated
/// inputs. No shrinking — the first failing case is reported as-is.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::new(
                        $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                    );
                    #[allow(unused_mut)]
                    let mut inputs: ::std::vec::Vec<::std::string::String> =
                        ::std::vec::Vec::new();
                    $(
                        let value = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        inputs.push(format!("{} = {:?}", stringify!($arg), &value));
                        let $arg = value;
                    )*
                    let result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest case {} of `{}` failed: {}\ninputs: {}",
                            case,
                            stringify!($name),
                            e,
                            inputs.join(", "),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -4i32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u16>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn flat_map_composes(
            (n, v) in (1usize..4).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0u8..10, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::new(crate::test_runner::seed_for("t", 0));
        let mut b = crate::test_runner::TestRng::new(crate::test_runner::seed_for("t", 0));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
