//! E9/E10: reconfiguration ablations — context partitioning and
//! reconfiguration-call placement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use symbad_core::partition::ArchConfig;
use symbad_core::timed::ReconfigStrategy;
use symbad_core::{level2, level3, Partition};

fn reconfig_benches(c: &mut Criterion) {
    let workload = bench::small_workload();
    let arch = ArchConfig::default();
    let mut group = c.benchmark_group("reconfig");
    group.sample_size(10);
    group.bench_function("static_hw_no_fpga", |b| {
        b.iter(|| level2::run(black_box(&workload)).expect("runs"))
    });
    group.bench_function("split_contexts_hoisted", |b| {
        b.iter(|| {
            level3::run_with(
                black_box(&workload),
                &Partition::paper_level3(),
                &arch,
                ReconfigStrategy::Hoisted,
            )
            .expect("runs")
        })
    });
    group.bench_function("merged_context_hoisted", |b| {
        b.iter(|| {
            level3::run_with(
                black_box(&workload),
                &Partition::merged_context(),
                &arch,
                ReconfigStrategy::Hoisted,
            )
            .expect("runs")
        })
    });
    group.bench_function("split_contexts_naive", |b| {
        b.iter(|| {
            level3::run_with(
                black_box(&workload),
                &Partition::paper_level3(),
                &arch,
                ReconfigStrategy::Naive,
            )
            .expect("runs")
        })
    });
    group.finish();
}

criterion_group!(benches, reconfig_benches);
criterion_main!(benches);
