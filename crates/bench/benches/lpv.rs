//! E5/E6: LPV — deadlock freeness, deadline achievement, FIFO sizing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use symbad_core::cascade::fig2_petri_net;

fn lpv_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("lpv");
    group.sample_size(20);
    let live_net = fig2_petri_net(1);
    let dead_net = fig2_petri_net(0);
    group.bench_function("liveness_proof_fig2", |b| {
        b.iter(|| lp::check_liveness(black_box(&live_net)))
    });
    group.bench_function("deadlock_counterexample_fig2", |b| {
        b.iter(|| lp::check_liveness(black_box(&dead_net)))
    });
    group.bench_function("unreachability_state_equation", |b| {
        b.iter(|| {
            lp::check_unreachable(
                black_box(&live_net),
                &[lp::MarkingConstraint {
                    place: lp::PlaceId::from_index(0),
                    relation: lp::MarkingRelation::AtLeast,
                    tokens: 2,
                }],
            )
        })
    });
    // Deadline LP on the annotated paper task graph.
    let config = media::dataset::DatasetConfig::default();
    let profile = media::profile::build_profile(&config, 80);
    let cpu = platform::CpuModel::arm7tdmi();
    let mut graph = lp::TaskGraph::new();
    let mut prev = None;
    for m in media::profile::MODULES {
        let t = graph.add_task(m, cpu.cycles(profile.mix(m)));
        if let Some(p) = prev {
            graph.add_dep(p, t);
        }
        prev = Some(t);
    }
    group.bench_function("deadline_lp_pipeline", |b| {
        b.iter(|| lp::check_deadline(black_box(&graph), 10_000_000))
    });
    group.bench_function("fifo_dimensioning", |b| {
        b.iter(|| {
            lp::dimension_fifo(black_box(&lp::ChannelRates {
                producer_burst: 1,
                producer_period: 8,
                consumer_period: 6,
                consumer_latency: 120,
                horizon: 1_000_000,
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, lpv_benches);
criterion_main!(benches);
