//! Sequential vs parallel dispatch of the verification obligations: the
//! cascade (five independent stages), BMC obligations over the wrapper
//! property set, and the SAT portfolio on a pigeonhole miter. On a
//! single-core host the parallel numbers track the sequential ones (plus
//! thread overhead); on a multi-core host they show the fan-out win.
#![allow(clippy::needless_range_loop)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn php_cnf(n_holes: usize) -> sat::Cnf {
    let pigeons = n_holes + 1;
    let mut s = sat::Solver::new();
    let mut x = vec![vec![]; pigeons];
    for row in x.iter_mut() {
        for _ in 0..n_holes {
            row.push(s.new_var());
        }
    }
    for row in &x {
        s.add_clause(row.iter().map(|&v| sat::Lit::pos(v)));
    }
    for h in 0..n_holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause([sat::Lit::neg(x[p1][h]), sat::Lit::neg(x[p2][h])]);
            }
        }
    }
    s.export_cnf()
}

fn parallel_benches(c: &mut Criterion) {
    let modes = [
        ("seq", exec::ExecMode::Sequential),
        ("par4", exec::ExecMode::Parallel { workers: 4 }),
    ];

    let mut group = c.benchmark_group("parallel/cascade");
    group.sample_size(10);
    for (name, mode) in modes {
        group.bench_function(name, |b| {
            b.iter(|| symbad_core::cascade::run_mode(black_box(mode)))
        });
    }
    group.finish();

    let wrapper = hdl::fsm::bus_wrapper_fsm("bus_wrapper");
    let props: Vec<mc::prop::Property> = symbad_core::level4::extended_properties();
    let mut group = c.benchmark_group("parallel/bmc_obligations");
    group.sample_size(10);
    for (name, mode) in modes {
        group.bench_function(name, |b| {
            b.iter(|| {
                mc::bmc::check_many(
                    black_box(&wrapper),
                    black_box(&props),
                    12,
                    mode,
                    &telemetry::noop(),
                )
            })
        });
    }
    group.finish();

    let cnf = php_cnf(7);
    let mut group = c.benchmark_group("parallel/sat_portfolio");
    group.sample_size(10);
    for (name, mode) in modes {
        group.bench_function(name, |b| {
            b.iter(|| sat::solve_portfolio(black_box(&cnf), mode))
        });
    }
    group.finish();
}

criterion_group!(benches, parallel_benches);
criterion_main!(benches);
