//! Interpreter-vs-bytecode-VM throughput on the media kernels — the win
//! the ATPG fault sweeps and the level-2 frame loop collect when they run
//! on the VM.

use behav::bytecode::{compile, Vm};
use behav::interp::Interpreter;
use criterion::{criterion_group, criterion_main, Criterion};
use media::kernels::{distance_step_function, root_function};
use std::hint::black_box;

fn behav_vm(c: &mut Criterion) {
    let mut group = c.benchmark_group("behav_vm");
    group.sample_size(20);

    let root = root_function();
    group.bench_function("root_interp", |b| {
        b.iter(|| {
            Interpreter::new(&root)
                .run(black_box(&[123_456_789]))
                .unwrap()
        })
    });
    let mut root_vm = Vm::new(compile(&root));
    group.bench_function("root_vm_full", |b| {
        b.iter(|| root_vm.run(black_box(&[123_456_789])).unwrap())
    });
    group.bench_function("root_vm_signature", |b| {
        b.iter(|| root_vm.run_signature(black_box(&[123_456_789])).unwrap())
    });

    let dist = distance_step_function();
    group.bench_function("distance_interp", |b| {
        b.iter(|| {
            Interpreter::new(&dist)
                .run(black_box(&[40_000, 39_999, 7]))
                .unwrap()
        })
    });
    let mut dist_vm = Vm::new(compile(&dist));
    group.bench_function("distance_vm_signature", |b| {
        b.iter(|| {
            dist_vm
                .run_signature(black_box(&[40_000, 39_999, 7]))
                .unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, behav_vm);
criterion_main!(benches);
