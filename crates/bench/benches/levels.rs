//! E1/E2/E3/E11: simulation speed of the four abstraction levels.
//!
//! The paper reports wall-clock figures per level on a Sun U80 (level 1:
//! whole run < 15 s; level 2: ≈200 kHz simulated clock; level 3: ≈30 kHz).
//! These benches measure our per-level wall time on the same workload; the
//! `report` binary converts them into simulated-kHz rows for
//! EXPERIMENTS.md. Level 4 is represented by cycle-accurate RTL simulation
//! of the synthesized ROOT kernel — the abstraction the TL levels exist to
//! avoid.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn levels(c: &mut Criterion) {
    let workload = bench::bench_workload();
    let mut group = c.benchmark_group("levels");
    group.sample_size(10);
    group.bench_function("level1_untimed", |b| {
        b.iter(|| symbad_core::level1::run(black_box(&workload)).expect("runs"))
    });
    group.bench_function("level2_timed_tl", |b| {
        b.iter(|| symbad_core::level2::run(black_box(&workload)).expect("runs"))
    });
    group.bench_function("level3_reconfigurable", |b| {
        b.iter(|| symbad_core::level3::run(black_box(&workload)).expect("runs"))
    });
    // Level 4: cycle-level RTL simulation of the ROOT kernel over the same
    // number of distance evaluations the workload performs.
    let root = media::kernels::root_function();
    let unrolled = behav::unroll::unroll(&root, media::kernels::ROOT_ITERATIONS);
    let rtl = hdl::synth::synthesize(&unrolled).expect("synthesizable");
    let evals = workload.probes.len() * workload.gallery_len();
    group.bench_function("level4_rtl_sim", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..evals {
                acc = acc.wrapping_add(rtl.eval_combinational(&[black_box(i as u64 * 37)])[0]);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, levels);
criterion_main!(benches);
