//! E7: SymbC consistency checking, scaling with program size.

use behav::{Expr, FunctionBuilder};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use symbad_core::cascade::instrumented_sw;

/// Instrumented SW with `blocks` reconfigure/call phases and nested
/// branching, to scale the abstract-interpretation workload.
fn large_sw(blocks: usize) -> (behav::Function, symbc::ConfigMap) {
    let mut map = symbc::ConfigMap::new();
    let c1 = map.add_config("config1");
    let c2 = map.add_config("config2");
    map.add_function(c1, "distance");
    map.add_function(c2, "root");
    let mut fb = FunctionBuilder::new("sw", 32);
    let x = fb.param("x", 32);
    let acc = fb.local("acc", 32);
    for i in 0..blocks {
        fb.reconfigure(c1);
        fb.if_else(
            Expr::gt(Expr::var(x), Expr::constant(i as u64, 32)),
            |t| {
                t.resource_call("distance", vec![], None);
            },
            |e| {
                e.resource_call("distance", vec![], None);
            },
        );
        fb.reconfigure(c2);
        fb.while_(Expr::lt(Expr::var(acc), Expr::constant(100, 32)), |b| {
            b.resource_call("root", vec![], None);
            b.assign(acc, Expr::add(Expr::var(acc), Expr::constant(1, 32)));
        });
    }
    fb.ret(Expr::var(acc));
    (fb.build(), map)
}

fn symbc_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbc");
    let (clean, map) = instrumented_sw(true);
    let (buggy, _) = instrumented_sw(false);
    group.bench_function("certificate_paper_sw", |b| {
        b.iter(|| symbc::check(black_box(&clean), black_box(&map)))
    });
    group.bench_function("counterexample_paper_sw", |b| {
        b.iter(|| symbc::check(black_box(&buggy), black_box(&map)))
    });
    for blocks in [4usize, 16, 64] {
        let (sw, map) = large_sw(blocks);
        group.bench_function(format!("certificate_{blocks}_phases"), |b| {
            b.iter(|| symbc::check(black_box(&sw), black_box(&map)))
        });
    }
    group.finish();
}

criterion_group!(benches, symbc_benches);
criterion_main!(benches);
