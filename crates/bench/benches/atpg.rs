//! E4: ATPG engines and coverage metrics on the case-study kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn atpg_benches(c: &mut Criterion) {
    let distance = media::kernels::distance_step_function();
    let root = media::kernels::root_function();
    let mut group = c.benchmark_group("atpg");
    group.sample_size(10);
    group.bench_function("random_tpg_distance", |b| {
        b.iter(|| {
            atpg::tpg::random_tpg(
                black_box(&distance),
                &atpg::tpg::RandomConfig {
                    rounds: 128,
                    seed: 7,
                },
            )
        })
    });
    group.bench_function("genetic_tpg_distance", |b| {
        b.iter(|| {
            atpg::tpg::genetic_tpg(
                black_box(&distance),
                &atpg::tpg::GaConfig {
                    population: 16,
                    vectors_per_individual: 4,
                    generations: 10,
                    mutation_per_mille: 60,
                    tournament: 3,
                    seed: 11,
                },
            )
        })
    });
    group.bench_function("bit_coverage_fault_sim_root", |b| {
        let tb = atpg::tpg::random_tpg(
            &root,
            &atpg::tpg::RandomConfig {
                rounds: 32,
                seed: 3,
            },
        );
        b.iter(|| atpg::metrics::bit_coverage(black_box(&root), black_box(&tb)))
    });
    group.bench_function("sat_branch_tpg_distance", |b| {
        let mut cond = None;
        distance.visit_stmts(&mut |s| {
            if let behav::Stmt::If { cond_id, .. } = s {
                cond.get_or_insert(*cond_id);
            }
        });
        let cond = cond.expect("distance has a branch");
        b.iter(|| atpg::formal::sat_branch_tpg(black_box(&distance), cond, true).expect("ok"))
    });
    group.finish();
}

criterion_group!(benches, atpg_benches);
criterion_main!(benches);
