//! E8: model checking of the level-4 RTL and PCC property coverage.

use criterion::{criterion_group, criterion_main, Criterion};
use mc::prop::{BoolExpr, Property};
use std::hint::black_box;
use symbad_core::cascade::wrapper;
use symbad_core::level4::{extended_properties, initial_properties};

fn mc_pcc_benches(c: &mut Criterion) {
    let rtl = wrapper(true);
    let mut group = c.benchmark_group("mc_pcc");
    group.sample_size(10);
    let inv = Property::invariant("state_in_range", BoolExpr::le("state", 3));
    group.bench_function("bmc_invariant_bound12", |b| {
        b.iter(|| mc::bmc::check(black_box(&rtl), black_box(&inv), 12))
    });
    group.bench_function("bdd_reachability_proof", |b| {
        b.iter(|| mc::reach::check(black_box(&rtl), black_box(&inv)))
    });
    let resp = Property::response(
        "request_advances",
        BoolExpr::eq("state", 1),
        BoolExpr::eq("state", 2),
        1,
    );
    group.bench_function("bmc_response_bound12", |b| {
        b.iter(|| mc::bmc::check(black_box(&rtl), black_box(&resp), 12))
    });
    let cfg = pcc::PccConfig { bmc_bound: 10 };
    let initial: Vec<Property> = initial_properties()
        .into_iter()
        .filter(|p| p.name() != "req_eventually_done")
        .collect();
    let extended: Vec<Property> = extended_properties()
        .into_iter()
        .filter(|p| p.name() != "req_eventually_done")
        .collect();
    group.bench_function("pcc_initial_set", |b| {
        b.iter(|| pcc::check_coverage(black_box(&rtl), black_box(&initial), &cfg).expect("ok"))
    });
    group.bench_function("pcc_extended_set", |b| {
        b.iter(|| pcc::check_coverage(black_box(&rtl), black_box(&extended), &cfg).expect("ok"))
    });
    group.finish();
}

criterion_group!(benches, mc_pcc_benches);
criterion_main!(benches);
