//! Micro-benchmarks of the formal engines (SAT, BDD, simplex) — the
//! substrate costs behind every verification experiment.
#![allow(clippy::needless_range_loop)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sat_pigeonhole(n_holes: usize) -> sat::SolveResult {
    let pigeons = n_holes + 1;
    let mut s = sat::Solver::new();
    let mut x = vec![vec![]; pigeons];
    for row in x.iter_mut() {
        for _ in 0..n_holes {
            row.push(s.new_var());
        }
    }
    for row in &x {
        s.add_clause(row.iter().map(|&v| sat::Lit::pos(v)));
    }
    for h in 0..n_holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause([sat::Lit::neg(x[p1][h]), sat::Lit::neg(x[p2][h])]);
            }
        }
    }
    s.solve()
}

fn engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    group.bench_function("sat_pigeonhole_6", |b| {
        b.iter(|| sat_pigeonhole(black_box(6)))
    });
    group.bench_function("bdd_16bit_adder_equivalence", |b| {
        b.iter(|| {
            let mut rtl = hdl::Rtl::new("add");
            let x = rtl.input("x", 16);
            let y = rtl.input("y", 16);
            let s1 = rtl.binary(behav::BinOp::Add, x, y);
            let s2 = rtl.binary(behav::BinOp::Add, y, x);
            let ne = rtl.binary(behav::BinOp::Ne, s1, s2);
            rtl.output("ne", ne);
            let mut mgr = bdd::Manager::new();
            let mut ctx = hdl::lower::BddBackend::new(&mut mgr, 0);
            use hdl::lower::BitCtx;
            let bits_x: Vec<bdd::Ref> = (0..16).map(|_| ctx.bit_fresh()).collect();
            let bits_y: Vec<bdd::Ref> = (0..16).map(|_| ctx.bit_fresh()).collect();
            let lowered = hdl::lower::lower(&rtl, &mut ctx, &[bits_x, bits_y], &[]);
            let ne_bit = lowered.outputs(&rtl)[0].1[0];
            assert_eq!(ne_bit, bdd::Ref::FALSE);
        })
    });
    group.bench_function("simplex_dense_20x20", |b| {
        b.iter(|| {
            let n = 20;
            let mut p = lp::Problem::new(n);
            p.maximize(&vec![lp::Rational::ONE; n]);
            for i in 0..n {
                let mut row = vec![lp::Rational::ZERO; n];
                for (j, slot) in row.iter_mut().enumerate() {
                    *slot = lp::Rational::new(((i * 7 + j * 3) % 5 + 1) as i128, 1);
                }
                p.add_le(&row, lp::Rational::integer(100));
            }
            black_box(p.solve())
        })
    });
    group.finish();
}

criterion_group!(benches, engines);
criterion_main!(benches);
