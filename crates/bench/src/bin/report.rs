//! Regenerates every experiment row of EXPERIMENTS.md (E1–E12).
//!
//! Run with `cargo run --release -p bench --bin report`. Absolute wall-clock
//! numbers depend on the host; the *shape* (orderings, ratios, catch/miss
//! outcomes) is what reproduces the paper. See DESIGN.md §4 for the
//! experiment-to-paper mapping.

use mc::prop::Property;
use std::time::Instant;
use symbad_core::cascade;
use symbad_core::explore;
use symbad_core::level4;
use symbad_core::partition::ArchConfig;
use symbad_core::workload::Workload;
use symbad_core::{level1, level2, level3};

fn main() {
    println!("Symbad reproduction — experiment report");
    println!("=======================================\n");

    let workload = Workload::paper(10);
    println!(
        "workload: {} identities × {} poses ({} gallery entries), {} probes, {}×{} frames\n",
        workload.dataset.config().identities,
        workload.dataset.config().poses,
        workload.gallery_len(),
        workload.probes.len(),
        workload.dataset.config().width,
        workload.dataset.config().height,
    );

    e1_e2_e3_e11(&workload);
    e4();
    e5_e6(&workload);
    e7();
    e8();
    e9_e10(&workload);
    e12();
}

fn hz(ticks: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        ticks as f64 / seconds
    }
}

fn e1_e2_e3_e11(workload: &Workload) {
    println!("── E1/E2/E3/E11: simulation speed per abstraction level ──");
    println!("paper: L1 run <15 s wall; L2 ≈200 kHz; L3 ≈30 kHz (Sun U80);");
    println!("       RTL simulation 'tens of hours' motivates TL modelling\n");

    // Best-of-3 wall times: the runs are fast enough that timer noise
    // otherwise dominates.
    fn timed<R>(mut f: impl FnMut() -> R) -> (R, f64) {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let r = f();
            best = best.min(t0.elapsed().as_secs_f64());
            out = Some(r);
        }
        (out.expect("ran at least once"), best)
    }
    let (l1, l1_wall) = timed(|| level1::run(workload).expect("level 1"));
    let (l2, l2_wall) = timed(|| level2::run(workload).expect("level 2"));
    let (l3, l3_wall) = timed(|| level3::run(workload).expect("level 3"));

    // Level 4 representative: cycle-level RTL evaluation of the ROOT
    // kernel for every distance evaluation in the workload.
    let root = media::kernels::root_function();
    let unrolled = behav::unroll::unroll(&root, media::kernels::ROOT_ITERATIONS);
    let rtl = hdl::synth::synthesize(&unrolled).expect("synthesizable");
    // Enough evaluations that the wall time is measurable.
    let evals = (workload.probes.len() * workload.gallery_len()).max(10_000);
    let t0 = Instant::now();
    let mut sink = 0u64;
    for i in 0..evals {
        sink = sink.wrapping_add(rtl.eval_combinational(&[(i as u64) * 37 % 65536])[0]);
    }
    let l4_wall = t0.elapsed().as_secs_f64().max(1e-9);
    let l4_cycles = (evals as u64) * media::kernels::ROOT_ITERATIONS as u64;
    std::hint::black_box(sink);

    println!("| level | model | wall s | simulated ticks | simulated kHz | functional |");
    println!("|-------|-------|--------|-----------------|---------------|------------|");
    println!(
        "| 1 | untimed functional | {:.3} | (untimed) | — | matches reference: {} |",
        l1_wall, l1.matches_reference
    );
    println!(
        "| 2 | timed TL, HW/SW | {:.3} | {} | {:.1} | matches reference: {} |",
        l2_wall,
        l2.total_ticks,
        hz(l2.total_ticks, l2_wall) / 1000.0,
        l2.matches_reference
    );
    println!(
        "| 3 | + FPGA reconfig | {:.3} | {} | {:.1} | matches reference: {} |",
        l3_wall,
        l3.total_ticks,
        hz(l3.total_ticks, l3_wall) / 1000.0,
        l3.matches_reference
    );
    println!(
        "| 4 | RTL (ROOT kernel, cycle-level) | {:.3} | {} | {:.1} | equivalence proven (E8) |",
        l4_wall,
        l4_cycles,
        hz(l4_cycles, l4_wall) / 1000.0
    );
    // Shape checks. The paper's per-level slowdown is wall-clock cost of
    // the added modelling detail; in this event-driven reproduction the
    // honest equivalents are (a) wall time per frame rising with the
    // level, and (b) host cost per *simulated cycle* exploding at RTL.
    let frames = workload.probes.len() as f64;
    println!(
        "\nwall time per frame: L1 {:.1} µs → L2 {:.1} µs → L3 {:.1} µs (detail costs wall time)",
        1e6 * l1_wall / frames,
        1e6 * l2_wall / frames,
        1e6 * l3_wall / frames
    );
    let l2_ns_per_cycle = 1e9 * l2_wall / l2.total_ticks as f64;
    let l4_ns_per_cycle = 1e9 * l4_wall / l4_cycles as f64;
    println!(
        "host ns per simulated cycle: TL (L2) {:.2} vs RTL (L4, one small kernel) {:.2} → RTL ≈{:.0}× slower per cycle",
        l2_ns_per_cycle,
        l4_ns_per_cycle,
        l4_ns_per_cycle / l2_ns_per_cycle.max(1e-12)
    );
    println!(
        "simulated time per frame: L2 {:.0} ticks → L3 {:.0} ticks (reconfiguration stalls)",
        l2.ticks_per_frame, l3.ticks_per_frame
    );
    println!(
        "bus utilization: L2 {:.1}% → L3 {:.1}% (reconfiguration adds bus load)",
        l2.bus.utilization * 100.0,
        l3.bus.utilization * 100.0
    );
    // TL/RTL co-simulation: same functionality and simulated time, the
    // host pays for netlist evaluation — the paper's "co-simulation is
    // still too expensive" claim, measured.
    let (cosim, cosim_wall) =
        timed(|| symbad_core::level3::run_with_rtl_cosim(workload).expect("cosim"));
    assert_eq!(cosim.recognized, l3.recognized);
    println!(
        "TL/RTL co-simulation of ROOT: wall {:.1} µs/frame vs native {:.1} µs/frame → {:.2}× slower, functionally identical\n",
        1e6 * cosim_wall / frames,
        1e6 * l3_wall / frames,
        cosim_wall / l3_wall.max(1e-12)
    );
}

fn e4() {
    println!("── E4: ATPG (Laerte++) coverage on the case-study kernels ──");
    println!("paper: GA + SAT engines; statement/branch/condition/bit metrics;");
    println!("       memory-inspection found the memory-initialization errors\n");

    let distance = media::kernels::distance_step_function();
    for (name, func) in [
        ("distance", &distance),
        ("root", &media::kernels::root_function()),
    ] {
        let random = atpg::tpg::random_tpg(
            func,
            &atpg::tpg::RandomConfig {
                rounds: 64,
                seed: 7,
            },
        );
        let cov = atpg::metrics::evaluate(func, &random.vectors).report();
        let bits = atpg::metrics::bit_coverage(func, &random);
        println!(
            "| {name} | random({} vec) | stmt {:.0}% | branch {:.0}% | cond {:.0}% | bit {:.1}% |",
            random.len(),
            cov.statement_pct(),
            cov.branch_pct(),
            cov.condition_pct(),
            bits.pct()
        );
    }
    // GA vs random on a narrow-branch kernel.
    let ga = atpg::tpg::genetic_tpg(
        &distance,
        &atpg::tpg::GaConfig {
            population: 20,
            vectors_per_individual: 6,
            generations: 30,
            mutation_per_mille: 60,
            tournament: 3,
            seed: 11,
        },
    );
    println!(
        "| distance | GA | reached {}/{} coverage score in {} generations |",
        ga.history.last().unwrap(),
        ga.target,
        ga.history.len()
    );
    // SAT completion and memory inspection. Coverage-greedy testbenches
    // cannot distinguish LUT indices, so the inspector runs on the
    // generated patterns plus a directed index sweep (as in the cascade).
    let buggy = cascade::buggy_lut_kernel(false);
    let mut tb = atpg::tpg::random_tpg(
        &buggy,
        &atpg::tpg::RandomConfig {
            rounds: 64,
            seed: 5,
        },
    );
    tb.vectors.extend((0..16u64).map(|i| vec![i]));
    let findings = atpg::metrics::memory_inspection(&buggy, &tb);
    println!(
        "| lut_kernel (seeded bug) | memory inspection | {} uninitialized reads found |",
        findings.len()
    );
    let (completed, unreachable) =
        atpg::formal::complete_with_sat(&distance, &atpg::Testbench::new()).expect("sat tpg");
    let after = atpg::metrics::evaluate(&distance, &completed.vectors).report();
    println!(
        "| distance | SAT completion from empty TB | branch {:.0}% ({} proven unreachable) |",
        after.branch_pct(),
        unreachable
    );
    // Bit-coverage completion: simulation plateaus, SAT finishes the job.
    let weak = atpg::Testbench {
        vectors: vec![vec![0, 0, 0]],
    };
    let before_bits = atpg::metrics::bit_coverage(&distance, &weak);
    let (full, untestable) =
        atpg::formal::complete_faults_with_sat(&distance, &weak).expect("fault tpg");
    let after_bits = atpg::metrics::bit_coverage(&distance, &full);
    println!(
        "| distance | SAT fault completion | bit {:.1}% → {:.1}% ({} proven untestable) |",
        before_bits.pct(),
        after_bits.pct(),
        untestable
    );
    // GA parameter ablation: population size vs generations to converge.
    for population in [6usize, 12, 24] {
        let ga = atpg::tpg::genetic_tpg(
            &distance,
            &atpg::tpg::GaConfig {
                population,
                vectors_per_individual: 4,
                generations: 60,
                mutation_per_mille: 60,
                tournament: 3,
                seed: 21,
            },
        );
        println!(
            "| distance | GA pop={population} | best {}/{} after {} generations |",
            ga.history.last().unwrap(),
            ga.target,
            ga.history.len()
        );
    }
    println!();
}

fn e5_e6(workload: &Workload) {
    println!("── E5/E6: LPV — deadlock freeness, deadlines, FIFO sizing ──");
    println!("paper: 'LPV allowed efficient hunt of deadlock conditions';");
    println!("       'LPV has been used to prove real-time properties like timing");
    println!("        deadline achievement and FIFO channel dimensioning'\n");

    for credits in [0u64, 1, 2] {
        let net = cascade::fig2_petri_net(credits);
        let verdict = lp::check_liveness(&net);
        println!("| fig2 net, {credits} frame credits | {verdict:?} |");
    }

    let config = workload.dataset.config();
    let profile = media::profile::build_profile(config, workload.gallery_len());
    let cpu = platform::CpuModel::arm7tdmi();
    let arch = ArchConfig::default();
    let partition = symbad_core::Partition::paper_level2();
    let mut g = lp::TaskGraph::new();
    let mut prev = None;
    for m in media::profile::MODULES {
        let mix = profile.mix(m);
        let cycles = match partition.domain(m) {
            symbad_core::Domain::Sw => cpu.cycles(mix),
            _ => arch.hw_cycles(mix.total()),
        };
        let t = g.add_task(m, cycles);
        if let Some(p) = prev {
            g.add_dep(p, t);
        }
        prev = Some(t);
    }
    let latency = g.latency_lp();
    println!("| per-frame worst-case latency (LP = critical path) | {latency} cycles |");
    for (factor, label) in [(2.0, "relaxed"), (0.5, "over-tight")] {
        let deadline = (latency.to_f64() * factor) as u64;
        let verdict = lp::check_deadline(&g, deadline);
        let met = matches!(verdict, lp::DeadlineVerdict::Met { .. });
        println!("| deadline {deadline} cycles ({label}) | met: {met} |");
    }

    let bound = lp::dimension_fifo(&lp::ChannelRates {
        producer_burst: 1,
        producer_period: 8,
        consumer_period: 6,
        consumer_latency: 120,
        horizon: 1_000_000,
    });
    println!(
        "| FIFO sizing (Tp=8, Tc=6, L=120) | capacity {} tokens, sustained: {} |\n",
        bound.capacity, bound.sustained
    );
}

fn e7() {
    println!("── E7: SymbC reconfiguration consistency ──");
    println!("paper: 'a certificate of consistency … or a counter-example'\n");
    let (clean, map) = cascade::instrumented_sw(true);
    let (buggy, _) = cascade::instrumented_sw(false);
    match symbc::check(&clean, &map) {
        symbc::Verdict::Consistent(cert) => println!(
            "| correct SW | certificate: {} calls checked, {} reconfigurations |",
            cert.checked_calls, cert.reconfigurations
        ),
        v => println!("| correct SW | UNEXPECTED {v:?} |"),
    }
    match symbc::check(&buggy, &map) {
        symbc::Verdict::Inconsistent(violations) => {
            println!(
                "| buggy SW (missing reconfigure) | counterexample: {} |",
                violations[0]
            );
        }
        v => println!("| buggy SW | UNEXPECTED {v:?} |"),
    }
    println!();
}

fn e8() {
    println!("── E8: model checking + PCC at level 4 ──");
    println!("paper: 'PCC allowed us to identify property missing in the initial");
    println!("        verification plan'\n");
    let report = level4::run();
    for (name, nodes, equivalent) in &report.kernels {
        println!("| kernel {name} | {nodes} RTL nodes | RTL ≡ behavioural: {equivalent} |");
    }
    for (name, engine, proven) in &report.properties {
        println!("| property {name} | {engine} | proven: {proven} |");
    }
    println!(
        "| PCC initial property set | {:.1}% fault coverage ({} uncovered) |",
        report.pcc_initial.pct(),
        report.pcc_initial.uncovered.len()
    );
    println!(
        "| PCC extended property set | {:.1}% fault coverage ({} uncovered) |\n",
        report.pcc_extended.pct(),
        report.pcc_extended.uncovered.len()
    );
}

fn e9_e10(workload: &Workload) {
    println!("── E9/E10: reconfiguration ablations ──");
    println!("paper: context partitioning 'must be thoroughly tuned'; reducing");
    println!("       reconfigurations is 'rather tricky to ensure automatically'\n");
    let arch = ArchConfig::default();
    println!("| mapping | ticks/frame | reconfigs | bitstream words | bus util |");
    println!("|---------|-------------|-----------|-----------------|----------|");
    for p in explore::context_ablation(workload, &arch).expect("ablation") {
        println!(
            "| {} | {:.0} | {} | {} | {:.1}% |",
            p.name,
            p.ticks_per_frame,
            p.reconfigurations,
            p.download_words,
            p.bus_utilization * 100.0
        );
    }
    for p in explore::strategy_ablation(workload, &arch).expect("ablation") {
        println!(
            "| {} | {:.0} | {} | {} | {:.1}% |",
            p.name,
            p.ticks_per_frame,
            p.reconfigurations,
            p.download_words,
            p.bus_utilization * 100.0
        );
    }
    println!("\npartition sweep (level 2, modules moved to HW by profiling rank):");
    for p in explore::partition_sweep(workload, &arch).expect("sweep") {
        println!("| {} | {:.0} ticks/frame |", p.name, p.ticks_per_frame);
    }
    println!();
}

fn e12() {
    println!("── E12: the verification cascade end-to-end ──");
    let report = cascade::run();
    println!("| stage | level | seeded error | caught | fix certified |");
    println!("|-------|-------|--------------|--------|---------------|");
    for s in &report.stages {
        println!(
            "| {} | {} | {} | {} | {} |",
            s.stage, s.level, s.seeded_error, s.caught, s.clean_passes
        );
    }
    println!(
        "\ncascade effective (every stage catches its class): {}\n",
        report.all_effective()
    );
    let _ = Property::invariant("doc", mc::prop::BoolExpr::Const(true));
}
