//! Shared workload configuration for the benchmark harness and the
//! `report` binary, so benches and EXPERIMENTS.md rows use identical
//! parameters.

use symbad_core::workload::Workload;

/// The workload used by the level benches: paper-scale gallery
/// (20 identities × 4 poses), a handful of probe frames.
pub fn bench_workload() -> Workload {
    Workload::paper(3)
}

/// A smaller workload for the slowest benches (naive reconfiguration).
pub fn small_workload() -> Workload {
    Workload::small()
}
