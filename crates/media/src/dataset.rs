//! The synthetic camera and face gallery.
//!
//! Substitutes the paper's proprietary 20-identity face database and CMOS
//! camera (see DESIGN.md): a parametric face renderer produces
//! deterministic, identity-distinct, pose-varying images, mosaiced RGGB
//! with seeded sensor noise. Determinism is load-bearing — the flow's
//! cross-level trace comparison requires bit-identical frames per
//! `(identity, pose, noise_seed)`.

use crate::image::BayerImage;

/// A tiny deterministic xorshift PRNG (no external dependency so the frame
/// bytes are fully pinned by this crate alone).
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

/// Per-identity facial geometry (derived deterministically from the id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FaceParams {
    head_a: i64,
    head_b: i64,
    eye_dx: i64,
    eye_dy: i64,
    eye_r: i64,
    mouth_w: i64,
    mouth_y: i64,
    skin: i64,
    brow: bool,
}

impl FaceParams {
    fn for_identity(id: usize) -> FaceParams {
        let mut rng = XorShift::new(0xFACE_0000 + id as u64);
        FaceParams {
            head_a: rng.range(16, 24),
            head_b: rng.range(22, 29),
            eye_dx: rng.range(6, 11),
            eye_dy: rng.range(6, 10),
            eye_r: rng.range(2, 4),
            mouth_w: rng.range(6, 14),
            mouth_y: rng.range(10, 16),
            skin: rng.range(150, 220),
            brow: rng.next().is_multiple_of(2),
        }
    }
}

/// Dataset configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetConfig {
    /// Number of identities in the gallery (the paper uses 20).
    pub identities: usize,
    /// Poses per identity.
    pub poses: usize,
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Peak sensor-noise amplitude (grey levels).
    pub noise_amp: i64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            identities: 20,
            poses: 4,
            width: 64,
            height: 64,
            noise_amp: 6,
        }
    }
}

/// The synthetic face dataset: camera + gallery source.
#[derive(Debug, Clone)]
pub struct Dataset {
    config: DatasetConfig,
}

impl Dataset {
    /// Creates a dataset with the given configuration.
    pub fn new(config: DatasetConfig) -> Self {
        assert!(config.identities > 0 && config.poses > 0);
        assert!(config.width >= 32 && config.height >= 32);
        Dataset { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Renders the camera frame for `(identity, pose)` with the given
    /// noise seed. `noise_seed = 0` disables noise (gallery enrolment);
    /// probes use non-zero seeds so they never equal the enrolled frame
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if identity or pose is out of range.
    pub fn frame(&self, identity: usize, pose: usize, noise_seed: u64) -> BayerImage {
        assert!(identity < self.config.identities, "identity out of range");
        assert!(pose < self.config.poses, "pose out of range");
        let p = FaceParams::for_identity(identity);
        let mut pose_rng = XorShift::new(0x9053_0000 + pose as u64 * 131 + identity as u64);
        let dx = pose_rng.range(-4, 4);
        let dy = pose_rng.range(-3, 3);
        // Pose scale in 1/16ths: 15..=17 (≈ ±6 %).
        let scale16 = pose_rng.range(15, 17);

        let w = self.config.width as i64;
        let h = self.config.height as i64;
        let cx = w / 2 + dx;
        let cy = h / 2 + dy;
        let head_a = p.head_a * scale16 / 16;
        let head_b = p.head_b * scale16 / 16;

        let mut noise = XorShift::new(noise_seed);
        let mut raw = BayerImage::new(self.config.width, self.config.height);
        for y in 0..h {
            for x in 0..w {
                // Background with a soft vertical gradient.
                let mut v: i64 = 30 + y / 8;
                let ex = x - cx;
                let ey = y - cy;
                // Head ellipse.
                if ex * ex * head_b * head_b + ey * ey * head_a * head_a
                    <= head_a * head_a * head_b * head_b
                {
                    v = p.skin - (ex.abs() + ey.abs()) / 4;
                    // Eyes.
                    for side in [-1i64, 1] {
                        let ddx = ex - side * p.eye_dx;
                        let ddy = ey + p.eye_dy;
                        if ddx * ddx + ddy * ddy <= p.eye_r * p.eye_r {
                            v = 50;
                        }
                        // Brows.
                        if p.brow && ddy == -(p.eye_r + 2) && ddx.abs() <= p.eye_r + 1 {
                            v = 70;
                        }
                    }
                    // Nose.
                    if ex.abs() <= 1 && (-2..=4).contains(&ey) {
                        v -= 30;
                    }
                    // Mouth.
                    if ey >= p.mouth_y && ey <= p.mouth_y + 1 && ex.abs() <= p.mouth_w {
                        v = 60;
                    }
                }
                if self.config.noise_amp > 0 && noise_seed != 0 {
                    v += noise.range(-self.config.noise_amp, self.config.noise_amp);
                }
                let v = v.clamp(0, 255) as u16;
                // RGGB mosaic with per-channel gains (BAY's quad average
                // restores the luminance).
                let gain = match (x & 1, y & 1) {
                    (0, 0) => 90,  // R
                    (1, 1) => 110, // B
                    _ => 100,      // G
                };
                *raw.at_mut(x as usize, y as usize) = (v as i64 * gain / 100).min(255) as u16;
            }
        }
        raw
    }

    /// Enumerates `(identity, pose)` pairs of the gallery.
    pub fn gallery_entries(&self) -> Vec<(usize, usize)> {
        let mut v = Vec::with_capacity(self.config.identities * self.config.poses);
        for id in 0..self.config.identities {
            for pose in 0..self.config.poses {
                v.push((id, pose));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_deterministic() {
        let ds = Dataset::new(DatasetConfig::default());
        let a = ds.frame(3, 1, 42);
        let b = ds.frame(3, 1, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn identities_differ() {
        let ds = Dataset::new(DatasetConfig::default());
        let a = ds.frame(0, 0, 0);
        let b = ds.frame(1, 0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn poses_differ() {
        let ds = Dataset::new(DatasetConfig::default());
        let a = ds.frame(0, 0, 0);
        let b = ds.frame(0, 1, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn noise_seed_changes_frame_but_zero_is_clean() {
        let ds = Dataset::new(DatasetConfig::default());
        let clean1 = ds.frame(5, 2, 0);
        let clean2 = ds.frame(5, 2, 0);
        let noisy = ds.frame(5, 2, 7);
        assert_eq!(clean1, clean2);
        assert_ne!(clean1, noisy);
    }

    #[test]
    fn gallery_enumeration() {
        let ds = Dataset::new(DatasetConfig {
            identities: 3,
            poses: 2,
            ..DatasetConfig::default()
        });
        let entries = ds.gallery_entries();
        assert_eq!(entries.len(), 6);
        assert_eq!(entries[0], (0, 0));
        assert_eq!(entries[5], (2, 1));
    }

    #[test]
    #[should_panic(expected = "identity out of range")]
    fn identity_bounds_checked() {
        let ds = Dataset::new(DatasetConfig::default());
        ds.frame(99, 0, 0);
    }

    #[test]
    fn frame_values_fit_in_8_bits() {
        let ds = Dataset::new(DatasetConfig::default());
        let f = ds.frame(7, 3, 123);
        assert!(f.data.iter().all(|&v| v <= 255));
    }
}
