//! Image containers.

/// A raw Bayer-mosaic frame as produced by the CMOS camera model
/// (RGGB pattern, one 10-bit sample per photosite, stored in `u16`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BayerImage {
    /// Width in photosites.
    pub width: usize,
    /// Height in photosites.
    pub height: usize,
    /// Row-major samples.
    pub data: Vec<u16>,
}

/// An 8-bit grayscale image.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GrayImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixels.
    pub data: Vec<u16>,
}

/// A binary image (0 / 1 per pixel).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BinaryImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major flags.
    pub data: Vec<u8>,
}

impl BayerImage {
    /// Creates a zero frame.
    pub fn new(width: usize, height: usize) -> Self {
        BayerImage {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Sample at `(x, y)`.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> u16 {
        self.data[y * self.width + x]
    }

    /// Mutable sample at `(x, y)`.
    #[inline]
    pub fn at_mut(&mut self, x: usize, y: usize) -> &mut u16 {
        &mut self.data[y * self.width + x]
    }
}

impl GrayImage {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Self {
        GrayImage {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Pixel at `(x, y)`.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> u16 {
        self.data[y * self.width + x]
    }

    /// Mutable pixel at `(x, y)`.
    #[inline]
    pub fn at_mut(&mut self, x: usize, y: usize) -> &mut u16 {
        &mut self.data[y * self.width + x]
    }

    /// Clamped pixel access (out-of-range coordinates clamp to the border,
    /// the usual convolution boundary convention).
    #[inline]
    pub fn at_clamped(&self, x: isize, y: isize) -> u16 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.at(cx, cy)
    }

    /// Mean pixel value.
    pub fn mean(&self) -> u16 {
        if self.data.is_empty() {
            return 0;
        }
        let sum: u64 = self.data.iter().map(|&p| p as u64).sum();
        (sum / self.data.len() as u64) as u16
    }
}

impl BinaryImage {
    /// Creates an all-zero mask.
    pub fn new(width: usize, height: usize) -> Self {
        BinaryImage {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Flag at `(x, y)`.
    #[inline]
    pub fn at(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Mutable flag at `(x, y)`.
    #[inline]
    pub fn at_mut(&mut self, x: usize, y: usize) -> &mut u8 {
        &mut self.data[y * self.width + x]
    }

    /// Number of set pixels.
    pub fn count_ones(&self) -> usize {
        self.data.iter().filter(|&&b| b != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut g = GrayImage::new(4, 3);
        *g.at_mut(2, 1) = 77;
        assert_eq!(g.at(2, 1), 77);
        assert_eq!(g.at(0, 0), 0);
    }

    #[test]
    fn clamped_access() {
        let mut g = GrayImage::new(2, 2);
        *g.at_mut(0, 0) = 5;
        *g.at_mut(1, 1) = 9;
        assert_eq!(g.at_clamped(-3, -3), 5);
        assert_eq!(g.at_clamped(10, 10), 9);
    }

    #[test]
    fn mean_and_count() {
        let mut g = GrayImage::new(2, 1);
        *g.at_mut(0, 0) = 10;
        *g.at_mut(1, 0) = 20;
        assert_eq!(g.mean(), 15);
        let mut b = BinaryImage::new(2, 2);
        *b.at_mut(0, 1) = 1;
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn bayer_indexing() {
        let mut b = BayerImage::new(2, 2);
        *b.at_mut(1, 0) = 300;
        assert_eq!(b.at(1, 0), 300);
    }
}
