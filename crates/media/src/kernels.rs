//! DISTANCE and ROOT as behavioural (`behav`) functions.
//!
//! These are the two modules the case study maps into the embedded FPGA
//! ("it has been quite reasonable that modules DISTANCE and ROOT be mapped
//! both into the FPGA. They have been split into two different contexts,
//! named config1 and config2", §4.1). Having them in the behavioural IR
//! lets every formal tool of the flow touch the *same* kernels: ATPG
//! generates tests for them at level 1, `hdl::synth` turns them into RTL at
//! level 4, and the equivalence tests pin all three versions (pure Rust,
//! interpreter, netlist) to each other.

use behav::bytecode::{BehavExec, Runner};
use behav::{Expr, Function, FunctionBuilder};

/// Width of feature elements processed by the DISTANCE kernel.
pub const DISTANCE_WIDTH: u32 = 16;

/// The DISTANCE step kernel: `acc' = acc + (a − b)²` over one feature
/// element, with the subtraction direction chosen by a comparison (so the
/// kernel has a branch for coverage metrics to chew on).
///
/// Inputs: `a`, `b` (feature elements), `acc` (running sum).
/// Output: the updated accumulator (32-bit).
pub fn distance_step_function() -> Function {
    let mut fb = FunctionBuilder::new("distance", 32);
    let a = fb.param("a", DISTANCE_WIDTH);
    let b = fb.param("b", DISTANCE_WIDTH);
    let acc = fb.param("acc", 32);
    let d = fb.local("d", DISTANCE_WIDTH);
    fb.if_else(
        Expr::ge(Expr::var(a), Expr::var(b)),
        |t| t.assign(d, Expr::sub(Expr::var(a), Expr::var(b))),
        |e| e.assign(d, Expr::sub(Expr::var(b), Expr::var(a))),
    );
    // Widen the 16-bit difference to 32 bits before squaring — the IR's
    // result width is the max operand width, so a 16-bit multiply would
    // wrap (exactly the class of subtle width bug bit-coverage catches).
    let d32 = fb.local("d32", 32);
    fb.assign(d32, Expr::var(d));
    let sq = fb.local("sq", 32);
    fb.assign(sq, Expr::mul(Expr::var(d32), Expr::var(d32)));
    fb.ret(Expr::add(Expr::var(acc), Expr::var(sq)));
    fb.build()
}

/// Input width of the ROOT kernel.
pub const ROOT_IN_WIDTH: u32 = 32;

/// Loop trip count of [`root_function`]: one iteration per result bit.
pub const ROOT_ITERATIONS: u32 = ROOT_IN_WIDTH / 2;

/// The ROOT kernel: integer square root of a 32-bit value by the bit-pair
/// (non-restoring) method — a bounded loop of exactly
/// [`ROOT_ITERATIONS`] iterations, unrollable for synthesis.
pub fn root_function() -> Function {
    let mut fb = FunctionBuilder::new("root", 16);
    let x = fb.param("x", ROOT_IN_WIDTH);
    let rem = fb.local("rem", ROOT_IN_WIDTH);
    let res = fb.local("res", ROOT_IN_WIDTH);
    let bit = fb.local("bit", ROOT_IN_WIDTH);
    let i = fb.local("i", 8);
    fb.assign(rem, Expr::var(x));
    fb.assign(res, Expr::constant(0, ROOT_IN_WIDTH));
    fb.assign(
        bit,
        Expr::constant(1u64 << (ROOT_IN_WIDTH - 2), ROOT_IN_WIDTH),
    );
    fb.assign(i, Expr::constant(0, 8));
    fb.while_(
        Expr::lt(Expr::var(i), Expr::constant(ROOT_ITERATIONS as u64, 8)),
        |body| {
            let try_v = body.local("try", ROOT_IN_WIDTH);
            body.assign(try_v, Expr::add(Expr::var(res), Expr::var(bit)));
            body.if_else(
                Expr::ge(Expr::var(rem), Expr::var(try_v)),
                |t| {
                    t.assign(rem, Expr::sub(Expr::var(rem), Expr::var(try_v)));
                    t.assign(
                        res,
                        Expr::add(
                            Expr::shr(Expr::var(res), Expr::constant(1, ROOT_IN_WIDTH)),
                            Expr::var(bit),
                        ),
                    );
                },
                |e| {
                    e.assign(
                        res,
                        Expr::shr(Expr::var(res), Expr::constant(1, ROOT_IN_WIDTH)),
                    );
                },
            );
            body.assign(
                bit,
                Expr::shr(Expr::var(bit), Expr::constant(2, ROOT_IN_WIDTH)),
            );
            body.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 8)));
        },
    );
    fb.ret(Expr::var(res));
    fb.build()
}

/// A media kernel compiled once and executed many times — the per-frame
/// fast path. The engine is a construction-time choice ([`BehavExec`]
/// defaults to the bytecode VM; the interpreter remains available as the
/// reference).
#[derive(Debug)]
pub struct CompiledKernel {
    runner: Runner,
}

impl CompiledKernel {
    /// Compiles an arbitrary kernel function under the chosen engine.
    pub fn new(func: &Function, exec: BehavExec) -> CompiledKernel {
        CompiledKernel {
            runner: Runner::new(func, exec),
        }
    }

    /// The DISTANCE step kernel, ready to run per feature element.
    pub fn distance_step(exec: BehavExec) -> CompiledKernel {
        CompiledKernel::new(&distance_step_function(), exec)
    }

    /// The ROOT kernel, ready to run per frame.
    pub fn root(exec: BehavExec) -> CompiledKernel {
        CompiledKernel::new(&root_function(), exec)
    }

    /// Executes the kernel on `inputs`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or if the kernel fails to return a value
    /// within the default step limit — impossible for the bounded-loop
    /// media kernels.
    pub fn run(&mut self, inputs: &[u64]) -> u64 {
        self.runner
            .run_value(inputs)
            .expect("kernel exceeds step limit")
            .expect("kernel returns a value")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::root as rust_root;
    use behav::bytecode::{compile, Vm};
    use behav::interp::{enumerate_bit_faults, Interpreter};
    use behav::unroll::unroll;

    #[test]
    fn distance_step_matches_rust() {
        let f = distance_step_function();
        for (a, b, acc) in [
            (0u64, 0u64, 0u64),
            (10, 3, 100),
            (3, 10, 100),
            (65535, 0, 0),
            (1000, 2000, 123456),
        ] {
            let out = Interpreter::new(&f)
                .run(&[a, b, acc])
                .expect("runs")
                .return_value
                .expect("returns");
            let d = (a as i64 - b as i64).unsigned_abs();
            let expected = (acc + d * d) & 0xFFFF_FFFF;
            assert_eq!(out, expected, "a={a} b={b} acc={acc}");
        }
    }

    #[test]
    fn root_kernel_matches_rust_isqrt() {
        let f = root_function();
        for x in [
            0u64,
            1,
            2,
            3,
            4,
            15,
            16,
            17,
            49,
            1023,
            1024,
            65535,
            100_000,
            4_000_000_000,
        ] {
            let out = Interpreter::new(&f)
                .run(&[x])
                .expect("runs")
                .return_value
                .expect("returns");
            assert_eq!(out, rust_root(x) as u64 & 0xFFFF, "x={x}");
        }
    }

    #[test]
    fn root_kernel_exhaustive_low_range() {
        let f = root_function();
        let mut interp = Interpreter::new(&f);
        for x in 0..=400u64 {
            let out = interp.run(&[x]).unwrap().return_value.unwrap();
            assert_eq!(out, rust_root(x) as u64, "x={x}");
        }
    }

    #[test]
    fn root_unrolls_loop_free_with_known_bound() {
        let f = root_function();
        let u = unroll(&f, ROOT_ITERATIONS);
        assert!(behav::unroll::is_loop_free(&u));
        for x in [0u64, 49, 65535, 999_999] {
            let a = Interpreter::new(&f).run(&[x]).unwrap().return_value;
            let b = Interpreter::new(&u).run(&[x]).unwrap().return_value;
            assert_eq!(a, b, "x={x}");
        }
    }

    #[test]
    fn kernels_have_branches_for_coverage() {
        // Both kernels must expose conditions, otherwise E4's coverage
        // experiment degenerates.
        assert!(distance_step_function().num_conditions() >= 1);
        assert!(root_function().num_conditions() >= 2);
    }

    /// Every kernel, through interpreter AND VM, bit-for-bit — including
    /// the unrolled variants the synthesis path consumes.
    #[test]
    fn kernels_agree_across_engines() {
        let distance = distance_step_function();
        let root = root_function();
        let cases: [(&Function, Vec<Vec<u64>>); 4] = [
            (
                &distance,
                vec![
                    vec![0, 0, 0],
                    vec![10, 3, 100],
                    vec![3, 10, 100],
                    vec![65535, 0, 0],
                    vec![1000, 2000, 123_456],
                ],
            ),
            (
                &root,
                vec![
                    vec![0],
                    vec![49],
                    vec![1023],
                    vec![65535],
                    vec![4_000_000_000],
                ],
            ),
            (&unroll(&distance, 1), vec![vec![9, 4, 7]]),
            (
                &unroll(&root, ROOT_ITERATIONS),
                vec![vec![0], vec![49], vec![999_999]],
            ),
        ];
        for (f, vectors) in &cases {
            let mut vm = Vm::new(compile(f));
            for v in vectors {
                let interp = Interpreter::new(f).run(v);
                assert_eq!(interp, vm.run(v), "{} diverged on {v:?}", f.name());
            }
        }
    }

    /// Faulted kernel runs must also agree — the ATPG sweep depends on it.
    #[test]
    fn faulted_kernels_agree_across_engines() {
        for f in [distance_step_function(), root_function()] {
            let mut vm = Vm::new(compile(&f));
            let vector: Vec<u64> = (0..f.num_params() as u64).map(|i| 100 + i * 37).collect();
            // Sampled faults keep the debug-build runtime reasonable.
            for fault in enumerate_bit_faults(&f).into_iter().step_by(5) {
                vm.set_fault(Some(fault));
                let interp = Interpreter::new(&f).with_fault(fault).run(&vector);
                assert_eq!(interp, vm.run(&vector), "{} fault {fault:?}", f.name());
            }
        }
    }

    #[test]
    fn compiled_kernels_match_reference_functions() {
        let mut droot = CompiledKernel::root(BehavExec::default());
        for x in [0u64, 1, 50, 65_535, 1_000_000] {
            assert_eq!(droot.run(&[x]), rust_root(x) as u64 & 0xFFFF);
        }
        let mut dist = CompiledKernel::distance_step(BehavExec::default());
        let mut dist_interp = CompiledKernel::distance_step(BehavExec::Interp);
        for (a, b, acc) in [(0u64, 0u64, 0u64), (9, 4, 11), (4, 9, 11), (65535, 0, 7)] {
            let got = dist.run(&[a, b, acc]);
            assert_eq!(got, dist_interp.run(&[a, b, acc]));
            let d = (a as i64 - b as i64).unsigned_abs();
            assert_eq!(got, (acc + d * d) & 0xFFFF_FFFF);
        }
    }
}
