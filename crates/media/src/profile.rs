//! Per-module operation mixes — the level-1 profiling data.
//!
//! "Accurate profiling is of key relevance to estimate performance of the
//! architecture under investigation" (§4.1). The mixes below are derived
//! from the per-pixel / per-element operation counts of the
//! [`crate::pipeline`] implementations, scaled by the workload geometry;
//! they feed [`platform::Profile`] and from there the level-2/3 SW timing
//! annotation.

use crate::dataset::DatasetConfig;
use crate::pipeline::FEATURE_LEN;
use platform::{OpMix, Profile};

/// Per-invocation operation mix of one Figure-2 module for frames of
/// `width × height` pixels and a gallery of `gallery_len` signatures.
pub fn module_mix(module: &str, config: &DatasetConfig, gallery_len: usize) -> OpMix {
    let pixels = (config.width * config.height) as u64;
    let feat = FEATURE_LEN as u64;
    let gal = gallery_len as u64;
    match module {
        // Quad gather (4 loads) + 3 adds + shift per pixel.
        "bay" => OpMix {
            alu: 4 * pixels,
            mem: 5 * pixels,
            branch: pixels,
            ..OpMix::default()
        },
        // 3×3 window: 9 loads, 8 compares per pixel.
        "erosion" => OpMix {
            alu: 8 * pixels,
            mem: 10 * pixels,
            branch: pixels,
            ..OpMix::default()
        },
        // Sobel: ~12 adds, 2 abs, 1 compare, 6 loads per pixel.
        "edge" => OpMix {
            alu: 15 * pixels,
            mem: 7 * pixels,
            branch: pixels,
            ..OpMix::default()
        },
        // Two passes over the image, one sqrt-free moment accumulation.
        "ellipse" => OpMix {
            alu: 8 * pixels,
            mul: 2 * pixels,
            mem: 2 * pixels,
            branch: 2 * pixels,
            div: 4,
            ..OpMix::default()
        },
        "crtbord" => OpMix {
            alu: 16,
            ..OpMix::default()
        },
        // Resampling grid: address arithmetic + a load per sample.
        "crtline" => OpMix {
            alu: 6 * feat,
            mem: feat,
            div: 2 * feat,
            ..OpMix::default()
        },
        // Min/max scan + normalization divide per element.
        "calcline" => OpMix {
            alu: 3 * feat,
            div: feat,
            mem: 2 * feat,
            branch: 2 * feat,
            ..OpMix::default()
        },
        // Per gallery entry: feat × (sub, compare, mul, add, 2 loads).
        "distance" => OpMix {
            alu: 2 * feat * gal,
            mul: feat * gal,
            mem: 2 * feat * gal,
            branch: feat * gal,
            ..OpMix::default()
        },
        "calcdist" => OpMix {
            alu: feat * gal,
            mem: feat * gal,
            ..OpMix::default()
        },
        // Bit-pair isqrt: 16 iterations of compare/sub/shift per entry.
        "root" => OpMix {
            alu: 5 * 16 * gal,
            branch: 16 * gal,
            ..OpMix::default()
        },
        "winner" => OpMix {
            alu: 2 * gal,
            branch: gal,
            mem: gal,
            ..OpMix::default()
        },
        // Frame readout: one store per pixel.
        "camera" => OpMix {
            mem: pixels,
            alu: pixels,
            ..OpMix::default()
        },
        // Gallery fetch: one load per signature element.
        "database" => OpMix {
            mem: feat * gal,
            ..OpMix::default()
        },
        _ => OpMix::default(),
    }
}

/// The canonical module list in dataflow order (Figure 2).
pub const MODULES: [&str; 13] = [
    "camera", "bay", "erosion", "edge", "ellipse", "crtbord", "crtline", "calcline", "database",
    "distance", "calcdist", "root", "winner",
];

/// Builds the full level-1 profile for a dataset configuration.
pub fn build_profile(config: &DatasetConfig, gallery_len: usize) -> Profile {
    let mut p = Profile::new();
    for m in MODULES {
        p.record(m, module_mix(m, config, gallery_len));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform::CpuModel;

    #[test]
    fn heavy_modules_rank_first() {
        let config = DatasetConfig::default();
        let profile = build_profile(&config, 80);
        let ranking = profile.ranking();
        let top: Vec<&str> = ranking.iter().take(4).map(|(n, _)| *n).collect();
        // The compute-heavy pixel/vector kernels must dominate — this is
        // the designer's ranking that drives the HW/SW partition.
        assert!(
            top.contains(&"distance"),
            "distance must rank in the top 4: {top:?}"
        );
        assert!(
            top.contains(&"edge") || top.contains(&"erosion") || top.contains(&"ellipse"),
            "pixel kernels must rank high: {top:?}"
        );
    }

    #[test]
    fn profile_covers_all_modules() {
        let config = DatasetConfig::default();
        let profile = build_profile(&config, 10);
        for m in MODULES {
            assert!(
                profile.mix(m).total() > 0,
                "module {m} must have a non-empty mix"
            );
        }
    }

    #[test]
    fn annotation_scales_with_gallery() {
        let config = DatasetConfig::default();
        let cpu = CpuModel::arm7tdmi();
        let small = build_profile(&config, 10).annotate("distance", &cpu);
        let large = build_profile(&config, 80).annotate("distance", &cpu);
        assert_eq!(large, 8 * small);
    }

    #[test]
    fn unknown_module_has_empty_mix() {
        let config = DatasetConfig::default();
        assert_eq!(module_mix("ghost", &config, 1), OpMix::default());
    }
}
