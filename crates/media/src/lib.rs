//! The face-recognition application — the Symbad case study workload.
//!
//! "The target application consists of recognition of a face previously
//! acquired by a low-resolution CMOS camera. The recognition phase is
//! performed comparing the unknown face to a database of twenty different
//! faces under multiple poses" (§4). The original camera and face database
//! are not available, so this crate substitutes a **deterministic synthetic
//! face generator** (20 parametric identities × poses, Bayer-mosaiced with
//! seeded sensor noise); the methodology only needs a reproducible image
//! source whose outputs can be trace-compared across refinement levels.
//!
//! The modules are exactly the Figure-2 blocks:
//!
//! `CAMERA → BAY → EROSION → EDGE → ELLIPSE → CRTBORD → CRTLINE → CALCLINE
//!  → DISTANCE → CALCDIST → ROOT → WINNER`, with `DATABASE` as the stored
//! gallery.
//!
//! * [`image`] — image containers (Bayer raw, grayscale, binary),
//! * [`dataset`] — the synthetic camera and gallery,
//! * [`pipeline`] — each Figure-2 module as a pure function,
//! * [`mod@reference`] — the end-to-end "C reference model" with an
//!   observation trace for cross-level comparison,
//! * [`kernels`] — DISTANCE and ROOT expressed as `behav` functions: the
//!   two modules the case study maps into the FPGA (contexts `config1` /
//!   `config2`) and later synthesizes to RTL,
//! * [`profile`] — per-module operation mixes feeding the platform's
//!   automatic SW annotation.

pub mod dataset;
pub mod image;
pub mod kernels;
pub mod pipeline;
pub mod profile;
pub mod reference;

pub use dataset::{Dataset, DatasetConfig};
pub use image::{BayerImage, BinaryImage, GrayImage};
pub use reference::{recognize, RecognitionResult};
