//! The end-to-end "C reference model".
//!
//! "The reference model of the complete system functionality is a
//! collection of programs written in C" (§4). This module is that
//! collection: the whole pipeline as one pure call chain, producing both
//! the recognition answer and an *observation trace* of intermediate
//! results. Every abstraction level of the flow is verified by comparing
//! its trace against this one (paper: "match of results consists of trace
//! files comparison").

use crate::dataset::Dataset;
use crate::image::BayerImage;
use crate::pipeline::{
    bay, calcdist, calcline, crtbord, crtline, distance, edge, ellipse, erosion, root, winner,
    FeatureVector,
};

/// Observable checkpoints of one pipeline run, in dataflow order. These are
/// the values the level-1/2/3 models must reproduce exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineTrace {
    /// Sum of the demosaiced image (BAY output checkpoint).
    pub bay_checksum: u64,
    /// Sum of the eroded image (EROSION output checkpoint).
    pub erosion_checksum: u64,
    /// Edge-pixel count (EDGE output checkpoint).
    pub edge_count: u64,
    /// Fitted ellipse (ELLIPSE output).
    pub ellipse: (i32, i32, i32, i32),
    /// The normalized signature (CALCLINE output).
    pub features: FeatureVector,
    /// Per-gallery-entry distances after ROOT.
    pub distances: Vec<u32>,
    /// WINNER output: index into the gallery entry list.
    pub winner_entry: usize,
}

/// The recognition answer plus its trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecognitionResult {
    /// Recognized identity.
    pub identity: usize,
    /// Pose of the best-matching gallery entry.
    pub pose: usize,
    /// Distance to the best match.
    pub distance: u32,
    /// Full observation trace.
    pub trace: PipelineTrace,
}

/// Extracts the normalized face signature from a raw camera frame —
/// the front half of Figure 2 (BAY … CALCLINE).
pub fn extract_features(frame: &BayerImage) -> (FeatureVector, PipelineTracePrefix) {
    let gray = bay(frame);
    let eroded = erosion(&gray);
    let edges = edge(&eroded);
    let fit = ellipse(&edges);
    let region = crtbord(gray.width, gray.height, &fit);
    let raw_lines = crtline(&eroded, &region);
    let features = calcline(&raw_lines);
    let prefix = PipelineTracePrefix {
        bay_checksum: gray.data.iter().map(|&p| p as u64).sum(),
        erosion_checksum: eroded.data.iter().map(|&p| p as u64).sum(),
        edge_count: edges.count_ones() as u64,
        ellipse: (fit.cx, fit.cy, fit.a, fit.b),
    };
    (features, prefix)
}

/// The front-half observations of [`PipelineTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineTracePrefix {
    /// Sum of the demosaiced image.
    pub bay_checksum: u64,
    /// Sum of the eroded image.
    pub erosion_checksum: u64,
    /// Edge-pixel count.
    pub edge_count: u64,
    /// Fitted ellipse.
    pub ellipse: (i32, i32, i32, i32),
}

/// The enrolled gallery: one signature per `(identity, pose)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gallery {
    /// `(identity, pose, signature)` triples in enumeration order.
    pub entries: Vec<(usize, usize, FeatureVector)>,
}

/// Enrols the whole dataset (noise-free frames, matching the paper's
/// "previously acquired" gallery).
pub fn enroll(dataset: &Dataset) -> Gallery {
    let entries = dataset
        .gallery_entries()
        .into_iter()
        .map(|(id, pose)| {
            let frame = dataset.frame(id, pose, 0);
            let (features, _) = extract_features(&frame);
            (id, pose, features)
        })
        .collect();
    Gallery { entries }
}

/// Runs the complete reference recognition of `frame` against `gallery`.
pub fn recognize(frame: &BayerImage, gallery: &Gallery) -> RecognitionResult {
    let (features, prefix) = extract_features(frame);
    let distances: Vec<u32> = gallery
        .entries
        .iter()
        .map(|(_, _, g)| root(calcdist(&distance(&features, g))))
        .collect();
    let best = winner(&distances);
    let (identity, pose, _) = gallery.entries[best].clone();
    RecognitionResult {
        identity,
        pose,
        distance: distances[best],
        trace: PipelineTrace {
            bay_checksum: prefix.bay_checksum,
            erosion_checksum: prefix.erosion_checksum,
            edge_count: prefix.edge_count,
            ellipse: prefix.ellipse,
            features,
            distances,
            winner_entry: best,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    fn small_dataset() -> Dataset {
        Dataset::new(DatasetConfig {
            identities: 8,
            poses: 3,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn noiseless_probe_recognizes_itself() {
        let ds = small_dataset();
        let gallery = enroll(&ds);
        for id in 0..8 {
            let probe = ds.frame(id, 1, 0);
            let r = recognize(&probe, &gallery);
            assert_eq!(r.identity, id, "identity {id}");
            assert_eq!(r.pose, 1);
            assert_eq!(r.distance, 0);
        }
    }

    #[test]
    fn noisy_probe_accuracy_is_high() {
        let ds = small_dataset();
        let gallery = enroll(&ds);
        let mut correct = 0;
        let mut total = 0;
        for id in 0..8 {
            for pose in 0..3 {
                for seed in 1..=3u64 {
                    let probe = ds.frame(id, pose, seed);
                    let r = recognize(&probe, &gallery);
                    total += 1;
                    if r.identity == id {
                        correct += 1;
                    }
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy >= 0.85,
            "recognition accuracy {accuracy} too low ({correct}/{total})"
        );
    }

    #[test]
    fn recognition_is_deterministic() {
        let ds = small_dataset();
        let gallery = enroll(&ds);
        let probe = ds.frame(2, 0, 99);
        let a = recognize(&probe, &gallery);
        let b = recognize(&probe, &gallery);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_is_fully_populated() {
        let ds = small_dataset();
        let gallery = enroll(&ds);
        let probe = ds.frame(4, 2, 5);
        let r = recognize(&probe, &gallery);
        assert!(r.trace.bay_checksum > 0);
        assert!(r.trace.erosion_checksum > 0);
        assert!(r.trace.edge_count > 0);
        assert_eq!(r.trace.features.len(), crate::pipeline::FEATURE_LEN);
        assert_eq!(r.trace.distances.len(), gallery.entries.len());
        assert_eq!(
            gallery.entries[r.trace.winner_entry].0, r.identity,
            "winner entry consistent with identity"
        );
    }

    #[test]
    fn different_identities_have_distinct_signatures() {
        let ds = small_dataset();
        let gallery = enroll(&ds);
        // Pairwise distances between identities must exceed zero.
        for i in 0..gallery.entries.len() {
            for j in (i + 1)..gallery.entries.len() {
                let (id_i, _, fi) = &gallery.entries[i];
                let (id_j, _, fj) = &gallery.entries[j];
                if id_i != id_j {
                    let d = calcdist(&distance(fi, fj));
                    assert!(d > 0, "identities {id_i} and {id_j} collide");
                }
            }
        }
    }
}
