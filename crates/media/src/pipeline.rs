//! The Figure-2 modules as pure functions.
//!
//! Each function is one box of the paper's level-1 dataflow network. The
//! same code backs every abstraction level: level 1 wires these functions
//! into kernel processes, levels 2–3 execute them natively inside SW/HW
//! tasks while annotated simulated time advances, and the two FPGA kernels
//! (DISTANCE, ROOT) additionally exist as `behav` functions in
//! [`crate::kernels`] for the formal levels.

use crate::image::{BayerImage, BinaryImage, GrayImage};

/// Result of the ELLIPSE module: a moment-based ellipse fit of the edge
/// cloud (the face outline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EllipseFit {
    /// Center x (pixels).
    pub cx: i32,
    /// Center y (pixels).
    pub cy: i32,
    /// Semi-axis along x.
    pub a: i32,
    /// Semi-axis along y.
    pub b: i32,
    /// Number of edge points used.
    pub points: u32,
}

/// Result of CRTBORD: the clamped bounding region around the fitted face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Inclusive left edge.
    pub x0: usize,
    /// Inclusive top edge.
    pub y0: usize,
    /// Exclusive right edge.
    pub x1: usize,
    /// Exclusive bottom edge.
    pub y1: usize,
}

impl Region {
    /// Region width.
    pub fn width(&self) -> usize {
        self.x1.saturating_sub(self.x0)
    }

    /// Region height.
    pub fn height(&self) -> usize {
        self.y1.saturating_sub(self.y0)
    }
}

/// Number of scan lines in a feature vector.
pub const FEATURE_LINES: usize = 8;
/// Samples per scan line.
pub const FEATURE_SAMPLES: usize = 16;
/// Total feature-vector length.
pub const FEATURE_LEN: usize = FEATURE_LINES * FEATURE_SAMPLES;

/// A normalized face signature (output of CALCLINE).
pub type FeatureVector = Vec<u16>;

/// BAY: demosaics the RGGB Bayer frame into grayscale by averaging each
/// pixel's 2×2 quad (gains of the three channels cancel in the average).
pub fn bay(raw: &BayerImage) -> GrayImage {
    let mut out = GrayImage::new(raw.width, raw.height);
    for y in 0..raw.height {
        for x in 0..raw.width {
            // Quad anchored at the even coordinates covering (x, y).
            let qx = x & !1;
            let qy = y & !1;
            let x1 = (qx + 1).min(raw.width - 1);
            let y1 = (qy + 1).min(raw.height - 1);
            let sum = raw.at(qx, qy) as u32
                + raw.at(x1, qy) as u32
                + raw.at(qx, y1) as u32
                + raw.at(x1, y1) as u32;
            *out.at_mut(x, y) = (sum / 4).min(255) as u16;
        }
    }
    out
}

/// EROSION: 3×3 grayscale erosion (minimum filter) — suppresses salt
/// noise before edge detection.
pub fn erosion(img: &GrayImage) -> GrayImage {
    let mut out = GrayImage::new(img.width, img.height);
    for y in 0..img.height {
        for x in 0..img.width {
            let mut m = u16::MAX;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    m = m.min(img.at_clamped(x as isize + dx as isize, y as isize + dy as isize));
                }
            }
            *out.at_mut(x, y) = m;
        }
    }
    out
}

/// EDGE: Sobel gradient magnitude thresholded against half the image mean.
pub fn edge(img: &GrayImage) -> BinaryImage {
    let mut out = BinaryImage::new(img.width, img.height);
    let threshold = (img.mean() as u32 / 2).max(16);
    for y in 0..img.height {
        for x in 0..img.width {
            let p = |dx: isize, dy: isize| img.at_clamped(x as isize + dx, y as isize + dy) as i32;
            let gx = -p(-1, -1) - 2 * p(-1, 0) - p(-1, 1) + p(1, -1) + 2 * p(1, 0) + p(1, 1);
            let gy = -p(-1, -1) - 2 * p(0, -1) - p(1, -1) + p(-1, 1) + 2 * p(0, 1) + p(1, 1);
            let mag = (gx.abs() + gy.abs()) as u32 / 4;
            if mag > threshold {
                *out.at_mut(x, y) = 1;
            }
        }
    }
    out
}

/// ELLIPSE: fits an ellipse to the edge cloud via first and second
/// moments. Returns a centered unit fit when no edges exist.
pub fn ellipse(edges: &BinaryImage) -> EllipseFit {
    let mut n = 0u64;
    let (mut sx, mut sy) = (0u64, 0u64);
    for y in 0..edges.height {
        for x in 0..edges.width {
            if edges.at(x, y) != 0 {
                n += 1;
                sx += x as u64;
                sy += y as u64;
            }
        }
    }
    if n == 0 {
        return EllipseFit {
            cx: edges.width as i32 / 2,
            cy: edges.height as i32 / 2,
            a: 1,
            b: 1,
            points: 0,
        };
    }
    let cx = (sx / n) as i64;
    let cy = (sy / n) as i64;
    let (mut vxx, mut vyy) = (0u64, 0u64);
    for y in 0..edges.height {
        for x in 0..edges.width {
            if edges.at(x, y) != 0 {
                let dx = x as i64 - cx;
                let dy = y as i64 - cy;
                vxx += (dx * dx) as u64;
                vyy += (dy * dy) as u64;
            }
        }
    }
    // Semi-axes: 2·stddev covers the bulk of an elliptic outline.
    let a = 2 * root((vxx / n).max(1)) as i32;
    let b = 2 * root((vyy / n).max(1)) as i32;
    EllipseFit {
        cx: cx as i32,
        cy: cy as i32,
        a: a.max(1),
        b: b.max(1),
        points: n as u32,
    }
}

/// CRTBORD: the clamped bounding region of the fitted ellipse.
pub fn crtbord(width: usize, height: usize, fit: &EllipseFit) -> Region {
    let x0 = (fit.cx - fit.a).max(0) as usize;
    let y0 = (fit.cy - fit.b).max(0) as usize;
    let x1 = ((fit.cx + fit.a + 1) as usize).min(width);
    let y1 = ((fit.cy + fit.b + 1) as usize).min(height);
    Region {
        x0,
        y0,
        x1: x1.max(x0 + 1),
        y1: y1.max(y0 + 1),
    }
}

/// CRTLINE: samples [`FEATURE_LINES`] horizontal scan lines ×
/// [`FEATURE_SAMPLES`] points across the region (nearest-neighbour
/// resampling to a pose-independent grid).
pub fn crtline(img: &GrayImage, region: &Region) -> Vec<u16> {
    let mut out = Vec::with_capacity(FEATURE_LEN);
    let w = region.width().max(1);
    let h = region.height().max(1);
    for line in 0..FEATURE_LINES {
        let y = region.y0 + (line * h + h / 2) / FEATURE_LINES;
        let y = y.min(img.height - 1);
        for s in 0..FEATURE_SAMPLES {
            let x = region.x0 + (s * w + w / 2) / FEATURE_SAMPLES;
            let x = x.min(img.width - 1);
            out.push(img.at(x, y));
        }
    }
    out
}

/// CALCLINE: normalizes raw line samples to a 0..=255 signature
/// (illumination invariance).
pub fn calcline(raw: &[u16]) -> FeatureVector {
    let min = raw.iter().copied().min().unwrap_or(0) as u32;
    let max = raw.iter().copied().max().unwrap_or(0) as u32;
    let span = (max - min).max(1);
    raw.iter()
        .map(|&v| (((v as u32 - min) * 255) / span) as u16)
        .collect()
}

/// DISTANCE: per-element squared differences of two signatures — the
/// kernel the case study maps into FPGA context `config1`.
pub fn distance(a: &[u16], b: &[u16]) -> Vec<u64> {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x as i64 - y as i64;
            (d * d) as u64
        })
        .collect()
}

/// CALCDIST: accumulates the squared differences.
pub fn calcdist(sq: &[u64]) -> u64 {
    sq.iter().sum()
}

/// ROOT: integer square root (non-restoring, bit-pair method) — the kernel
/// mapped into FPGA context `config2`.
pub fn root(x: u64) -> u32 {
    let mut rem = x;
    let mut res = 0u64;
    let mut bit = 1u64 << 62;
    while bit > rem {
        bit >>= 2;
    }
    while bit != 0 {
        if rem >= res + bit {
            rem -= res + bit;
            res = (res >> 1) + bit;
        } else {
            res >>= 1;
        }
        bit >>= 2;
    }
    res as u32
}

/// WINNER: index of the minimum distance (ties broken toward the lower
/// index, deterministically).
pub fn winner(distances: &[u32]) -> usize {
    distances
        .iter()
        .enumerate()
        .min_by_key(|&(i, &d)| (d, i))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_exact_integer_sqrt() {
        for x in 0..2000u64 {
            let r = root(x) as u64;
            assert!(r * r <= x, "x={x}");
            assert!((r + 1) * (r + 1) > x, "x={x}");
        }
        assert_eq!(root(u64::MAX), u32::MAX);
        assert_eq!(root(0), 0);
        assert_eq!(root(1), 1);
    }

    #[test]
    fn distance_and_calcdist() {
        let a = vec![10u16, 20, 30];
        let b = vec![13u16, 20, 26];
        let sq = distance(&a, &b);
        assert_eq!(sq, vec![9, 0, 16]);
        assert_eq!(calcdist(&sq), 25);
        assert_eq!(root(calcdist(&sq)), 5);
    }

    #[test]
    fn winner_breaks_ties_low() {
        assert_eq!(winner(&[5, 2, 2, 7]), 1);
        assert_eq!(winner(&[1]), 0);
        assert_eq!(winner(&[]), 0);
    }

    #[test]
    fn calcline_normalizes_full_range() {
        let raw = vec![50u16, 100, 150];
        let n = calcline(&raw);
        assert_eq!(n[0], 0);
        assert_eq!(n[2], 255);
        // Constant input stays at zero (span clamps to 1).
        let flat = calcline(&[7, 7, 7]);
        assert_eq!(flat, vec![0, 0, 0]);
    }

    #[test]
    fn erosion_shrinks_bright_areas() {
        let mut img = GrayImage::new(5, 5);
        *img.at_mut(2, 2) = 200; // single bright pixel
        let e = erosion(&img);
        // A lone bright pixel is erased by a min filter.
        assert_eq!(e.at(2, 2), 0);
    }

    #[test]
    fn edge_detects_step() {
        let mut img = GrayImage::new(8, 8);
        for y in 0..8 {
            for x in 4..8 {
                *img.at_mut(x, y) = 200;
            }
        }
        let e = edge(&img);
        // Edges concentrate near the x=4 boundary.
        let edge_cols: Vec<usize> = (0..8)
            .filter(|&x| (0..8).any(|y| e.at(x, y) != 0))
            .collect();
        assert!(!edge_cols.is_empty());
        assert!(edge_cols.iter().all(|&x| (3..=5).contains(&x)));
    }

    #[test]
    fn ellipse_centers_on_cloud() {
        let mut b = BinaryImage::new(20, 20);
        // Ring of points around (10, 10).
        for (dx, dy) in [(3i32, 0i32), (-3, 0), (0, 4), (0, -4), (2, 2), (-2, -2)] {
            *b.at_mut((10 + dx) as usize, (10 + dy) as usize) = 1;
        }
        let fit = ellipse(&b);
        assert!((fit.cx - 10).abs() <= 1);
        assert!((fit.cy - 10).abs() <= 1);
        assert!(fit.a >= 1 && fit.b >= 1);
        assert_eq!(fit.points, 6);
    }

    #[test]
    fn empty_edge_cloud_yields_centered_unit_fit() {
        let b = BinaryImage::new(16, 16);
        let fit = ellipse(&b);
        assert_eq!(fit.cx, 8);
        assert_eq!(fit.points, 0);
        let r = crtbord(16, 16, &fit);
        assert!(r.width() >= 1 && r.height() >= 1);
    }

    #[test]
    fn crtline_has_fixed_length() {
        let img = GrayImage::new(32, 32);
        let region = Region {
            x0: 4,
            y0: 4,
            x1: 28,
            y1: 28,
        };
        let raw = crtline(&img, &region);
        assert_eq!(raw.len(), FEATURE_LEN);
    }

    #[test]
    fn bay_averages_quads() {
        let mut raw = BayerImage::new(2, 2);
        *raw.at_mut(0, 0) = 100;
        *raw.at_mut(1, 0) = 200;
        *raw.at_mut(0, 1) = 100;
        *raw.at_mut(1, 1) = 200;
        let g = bay(&raw);
        for y in 0..2 {
            for x in 0..2 {
                assert_eq!(g.at(x, y), 150);
            }
        }
    }
}
