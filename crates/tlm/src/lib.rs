//! Transaction-level modelling: the Vista-library analog.
//!
//! Level 2 of the Symbad flow maps the functional model onto an
//! architecture: a CPU and hardware modules communicating over a shared
//! bus (AMBA in the case study), with memories behind it. The paper uses
//! the Vista TL library for "SystemC models of busses, peripherals and
//! memory elements"; this crate provides the equivalent building blocks on
//! top of the `sim` kernel:
//!
//! * [`payload`] — generic bus transactions (the TLM generic payload),
//! * [`bus`] — a shared, arbitrated bus with an address map, per-word
//!   timing, burst transfers and contention accounting (reservation-based:
//!   deterministic first-come-first-served serialization, which is what
//!   drives the level-2/3 performance numbers),
//! * [`memory`] — a word-addressed memory model with access latency.
//!
//! Components are *passive shared objects* (`Rc<RefCell<…>>` handles):
//! simulation processes call into them to reserve bus time and then block
//! with `Activation::WaitTime` until their reservation completes. This
//! mirrors how a TL bus charges time without simulating wires, which is
//! exactly the abstraction gain the paper reports between RTL and TL
//! simulation speeds.

pub mod bus;
pub mod memory;
pub mod payload;

pub use bus::{Bus, BusConfig, BusError, BusReport, Reservation, SharedBus, SlaveId};
pub use memory::{Memory, SharedMemory};
pub use payload::{AccessKind, Payload};
