//! Word-addressed memory models.
//!
//! Used for the frame buffers and — with a higher access latency — for the
//! flash device holding the face DATABASE in the case study.

use std::cell::RefCell;
use std::rc::Rc;

/// A simple word-addressed memory with uninitialized-read tracking (the
//  same memory-inspection idea the behavioural level uses).
#[derive(Debug, Clone)]
pub struct Memory {
    name: String,
    words: Vec<u64>,
    written: Vec<bool>,
    reads: u64,
    writes: u64,
    uninitialized_reads: u64,
}

/// Shared handle to a [`Memory`].
pub type SharedMemory = Rc<RefCell<Memory>>;

impl Memory {
    /// Creates a zero-filled memory of `size` words.
    pub fn new(name: &str, size: usize) -> Self {
        Memory {
            name: name.to_owned(),
            words: vec![0; size],
            written: vec![false; size],
            reads: 0,
            writes: 0,
            uninitialized_reads: 0,
        }
    }

    /// Creates a shared handle.
    pub fn shared(name: &str, size: usize) -> SharedMemory {
        Rc::new(RefCell::new(Memory::new(name, size)))
    }

    /// Memory name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Word capacity.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads a word (out-of-range reads return 0 and count as
    /// uninitialized).
    pub fn read(&mut self, index: u64) -> u64 {
        self.reads += 1;
        match self.words.get(index as usize) {
            Some(&w) => {
                if !self.written[index as usize] {
                    self.uninitialized_reads += 1;
                }
                w
            }
            None => {
                self.uninitialized_reads += 1;
                0
            }
        }
    }

    /// Writes a word (out-of-range writes are ignored).
    pub fn write(&mut self, index: u64, value: u64) {
        self.writes += 1;
        if let Some(w) = self.words.get_mut(index as usize) {
            *w = value;
            self.written[index as usize] = true;
        }
    }

    /// Bulk-initializes from a slice starting at `base`.
    pub fn load(&mut self, base: u64, data: &[u64]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(base + i as u64, v);
        }
    }

    /// `(reads, writes, uninitialized_reads)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.reads, self.writes, self.uninitialized_reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = Memory::new("ram", 16);
        m.write(3, 42);
        assert_eq!(m.read(3), 42);
        assert_eq!(m.len(), 16);
        assert!(!m.is_empty());
    }

    #[test]
    fn uninitialized_reads_are_counted() {
        let mut m = Memory::new("ram", 4);
        m.read(0);
        m.write(1, 7);
        m.read(1);
        m.read(99); // out of range
        let (r, w, u) = m.stats();
        assert_eq!(r, 3);
        assert_eq!(w, 1);
        assert_eq!(u, 2);
    }

    #[test]
    fn bulk_load_initializes() {
        let mut m = Memory::new("flash", 8);
        m.load(2, &[10, 11, 12]);
        assert_eq!(m.read(2), 10);
        assert_eq!(m.read(4), 12);
        let (_, _, u) = m.stats();
        assert_eq!(u, 0);
    }

    #[test]
    fn out_of_range_write_is_ignored() {
        let mut m = Memory::new("ram", 2);
        m.write(5, 1);
        assert_eq!(m.read(0), 0);
    }
}
