//! The shared arbitrated bus.
//!
//! Timing model: each transaction occupies the bus for
//! `arbitration + words × cycles_per_word + slave_latency` ticks, and
//! transactions serialize in reservation order (deterministic FCFS — the
//! kernel's scheduling determinism makes this reproducible run-to-run).
//! Waiting time while the bus is busy is recorded per master, giving the
//! bus-loading figures the paper's architecture exploration optimizes, and
//! making the cost of FPGA bitstream downloads (long bursts) visible at
//! level 3.

use crate::payload::{AccessKind, Payload};
use sim::faults::SharedFaultPlan;
use sim::SimTime;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use telemetry::SharedInstrument;

/// Typed bus transaction failures. The substrate never panics on a bad
/// transaction: decode misses and error responses are part of the platform
/// model (and of what the recovery machinery above it must handle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// The address maps to no slave region (decode error). Detected
    /// combinationally: consumes no bus time.
    Decode {
        /// The unroutable address.
        addr: u64,
    },
    /// The slave returned an error response (injected transfer fault). The
    /// burst still occupied the bus until `at`, when the error response
    /// arrived — retry timing starts there.
    Slave {
        /// Name of the responding slave region.
        slave: String,
        /// The faulted address.
        addr: u64,
        /// Completion time of the failed transaction.
        at: SimTime,
    },
    /// The payload names a master index never registered on this bus.
    UnknownMaster {
        /// The unknown master index.
        master: usize,
    },
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Decode { addr } => {
                write!(f, "address {addr:#x} routes to no mapped region")
            }
            BusError::Slave { slave, addr, .. } => {
                write!(f, "slave `{slave}` error response at {addr:#x}")
            }
            BusError::UnknownMaster { master } => {
                write!(f, "unknown master index {master}")
            }
        }
    }
}

impl std::error::Error for BusError {}

/// Identifier of a slave region on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlaveId(usize);

impl SlaveId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Static configuration of a bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Cycles of arbitration overhead per transaction.
    pub arbitration_cycles: u64,
    /// Cycles per transferred word.
    pub cycles_per_word: u64,
    /// Maximum beats per burst: longer transfers split into several bursts,
    /// each paying arbitration again (re-arbitration lets other masters in
    /// between — the realistic AMBA behaviour for long bitstream
    /// downloads). `u32::MAX` disables splitting.
    pub max_burst_words: u32,
}

impl Default for BusConfig {
    fn default() -> Self {
        // Single-layer bus: 1-cycle arbitration, 1 word/cycle, unlimited
        // bursts (the simplest TL abstraction).
        BusConfig {
            arbitration_cycles: 1,
            cycles_per_word: 1,
            max_burst_words: u32::MAX,
        }
    }
}

impl BusConfig {
    /// AMBA-AHB-flavoured preset: 16-beat incrementing bursts.
    pub fn ahb() -> Self {
        BusConfig {
            arbitration_cycles: 1,
            cycles_per_word: 1,
            max_burst_words: 16,
        }
    }
}

#[derive(Debug, Clone)]
struct Region {
    base: u64,
    size: u64,
    name: String,
    /// Extra access latency charged per transaction by this slave.
    latency: u64,
}

#[derive(Debug, Clone, Default)]
struct MasterStats {
    name: String,
    transactions: u64,
    words: u64,
    wait_ticks: u64,
    occupancy_ticks: u64,
    errors: u64,
}

/// A time-reservation on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the transaction starts driving the bus.
    pub start: SimTime,
    /// When the transaction completes (the caller should wait until then).
    pub end: SimTime,
    /// Ticks spent waiting for the bus before `start`.
    pub waited: u64,
}

impl Reservation {
    /// Ticks from now until completion (what the caller sleeps).
    pub fn delay_from(&self, now: SimTime) -> SimTime {
        self.end - now
    }
}

/// The shared bus. Wrap in [`SharedBus`] to hand to multiple processes.
#[derive(Debug)]
pub struct Bus {
    name: String,
    config: BusConfig,
    regions: Vec<Region>,
    masters: Vec<MasterStats>,
    busy_until: SimTime,
    total_busy_ticks: u64,
    created: SimTime,
    /// Optional deterministic fault schedule (slave errors, stalls).
    faults: Option<SharedFaultPlan>,
    instrument: SharedInstrument,
}

/// Shared handle to a [`Bus`].
pub type SharedBus = Rc<RefCell<Bus>>;

impl Bus {
    /// Creates a bus with the given configuration.
    pub fn new(name: &str, config: BusConfig) -> Self {
        Bus {
            name: name.to_owned(),
            config,
            regions: Vec::new(),
            masters: Vec::new(),
            busy_until: SimTime::ZERO,
            total_busy_ticks: 0,
            created: SimTime::ZERO,
            faults: None,
            instrument: telemetry::noop(),
        }
    }

    /// Attaches a telemetry instrument. Every reservation then emits a span
    /// on the `bus:<master>` track plus transaction/word/error counters, a
    /// wait-tick histogram and a grant gauge. The default no-op instrument
    /// keeps [`Bus::transfer`] allocation-free.
    pub fn set_instrument(&mut self, instrument: SharedInstrument) {
        self.instrument = instrument;
    }

    /// Attaches a fault schedule; transfers consult it for injected slave
    /// errors and transient stalls. A plan with all-zero rates leaves every
    /// transfer byte-for-byte identical to an unfaulted bus.
    pub fn set_fault_plan(&mut self, plan: SharedFaultPlan) {
        self.faults = Some(plan);
    }

    /// Creates a shared handle.
    pub fn shared(name: &str, config: BusConfig) -> SharedBus {
        Rc::new(RefCell::new(Bus::new(name, config)))
    }

    /// Bus name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a master; returns its index for payload attribution.
    pub fn add_master(&mut self, name: &str) -> usize {
        self.masters.push(MasterStats {
            name: name.to_owned(),
            ..MasterStats::default()
        });
        self.masters.len() - 1
    }

    /// Maps an address region to a slave with the given access latency.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing one or has zero size.
    pub fn map_region(&mut self, name: &str, base: u64, size: u64, latency: u64) -> SlaveId {
        assert!(size > 0, "region must have non-zero size");
        for r in &self.regions {
            let disjoint = base + size <= r.base || r.base + r.size <= base;
            assert!(
                disjoint,
                "region `{name}` overlaps `{}` ([{:#x}, {:#x}))",
                r.name,
                r.base,
                r.base + r.size
            );
        }
        self.regions.push(Region {
            base,
            size,
            name: name.to_owned(),
            latency,
        });
        SlaveId(self.regions.len() - 1)
    }

    /// Routes an address to its slave.
    pub fn route(&self, addr: u64) -> Option<SlaveId> {
        self.regions
            .iter()
            .position(|r| addr >= r.base && addr < r.base + r.size)
            .map(SlaveId)
    }

    /// Name of a slave region.
    pub fn slave_name(&self, slave: SlaveId) -> &str {
        &self.regions[slave.0].name
    }

    /// Reserves bus time for `payload` at simulation time `now`.
    ///
    /// The transaction starts when the bus becomes free (FCFS) and occupies
    /// it for `arbitration + words × cycles_per_word + slave_latency`
    /// ticks. The caller must sleep until [`Reservation::end`].
    ///
    /// # Errors
    ///
    /// [`BusError::Decode`] when the address routes to no mapped region and
    /// [`BusError::UnknownMaster`] for an unregistered master — both
    /// detected before any bus time is consumed. [`BusError::Slave`] when
    /// the attached fault plan injects an error response: the burst still
    /// occupies the bus until [`BusError::Slave::at`], so contention and
    /// occupancy accounting stay faithful for failed transfers.
    pub fn transfer(&mut self, now: SimTime, payload: &Payload) -> Result<Reservation, BusError> {
        let slave = self
            .route(payload.addr)
            .ok_or(BusError::Decode { addr: payload.addr })?;
        if payload.master >= self.masters.len() {
            return Err(BusError::UnknownMaster {
                master: payload.master,
            });
        }
        let latency = self.regions[slave.0].latency;
        // Injected transient stall: the slave answers, but late.
        let stall = self
            .faults
            .as_ref()
            .and_then(|p| {
                let slave_name = &self.regions[slave.0].name;
                p.borrow_mut().slave_stall(slave_name)
            })
            .unwrap_or(0);
        // Long transfers split into max_burst_words chunks, each paying
        // arbitration again; slave latency is charged once per transaction.
        let chunks = (payload.words as u64)
            .div_ceil(self.config.max_burst_words as u64)
            .max(1);
        let duration = chunks * self.config.arbitration_cycles
            + payload.words as u64 * self.config.cycles_per_word
            + latency
            + stall;
        let start = self.busy_until.max(now);
        let end = start.saturating_add_ticks(duration);
        let waited = start.ticks_since(now);
        self.busy_until = end;
        self.total_busy_ticks += duration;
        // Injected slave error: the error response arrives at burst end.
        let failed = self
            .faults
            .as_ref()
            .is_some_and(|p| p.borrow_mut().bus_error(payload.addr));
        let m = &mut self.masters[payload.master];
        m.transactions += 1;
        m.words += payload.words as u64;
        m.wait_ticks += waited;
        m.occupancy_ticks += duration;
        if failed {
            m.errors += 1;
        }
        if self.instrument.enabled() {
            let i = &self.instrument;
            let master = &self.masters[payload.master].name;
            let slave_name = &self.regions[slave.0].name;
            let kind = match payload.kind {
                AccessKind::Read => "R",
                AccessKind::Write => "W",
            };
            i.span(
                &format!("bus:{master}"),
                &format!("{slave_name}:{kind}{}w", payload.words),
                start.ticks(),
                end.ticks(),
            );
            i.counter_add("bus.transactions", 1);
            i.counter_add("bus.words", payload.words as u64);
            i.record("bus.wait_ticks", waited);
            i.gauge_set("bus.grant", start.ticks(), payload.master as i64 + 1);
            i.gauge_set("bus.grant", end.ticks(), 0);
            if failed {
                i.counter_add("bus.errors", 1);
            }
        }
        if failed {
            return Err(BusError::Slave {
                slave: self.regions[slave.0].name.clone(),
                addr: payload.addr,
                at: end,
            });
        }
        Ok(Reservation { start, end, waited })
    }

    /// Occupancy/contention report at time `now`.
    pub fn report(&self, now: SimTime) -> BusReport {
        BusReport {
            bus: self.name.clone(),
            utilization: if now.ticks() == 0 {
                0.0
            } else {
                self.total_busy_ticks as f64 / now.ticks_since(self.created) as f64
            },
            total_busy_ticks: self.total_busy_ticks,
            masters: self
                .masters
                .iter()
                .map(|m| MasterReport {
                    name: m.name.clone(),
                    transactions: m.transactions,
                    words: m.words,
                    wait_ticks: m.wait_ticks,
                    occupancy_ticks: m.occupancy_ticks,
                    errors: m.errors,
                })
                .collect(),
        }
    }
}

/// Per-master slice of a [`BusReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MasterReport {
    /// Master name.
    pub name: String,
    /// Transactions issued.
    pub transactions: u64,
    /// Words transferred.
    pub words: u64,
    /// Ticks spent waiting for the bus.
    pub wait_ticks: u64,
    /// Ticks this master occupied the bus.
    pub occupancy_ticks: u64,
    /// Transactions that ended in a slave error response.
    pub errors: u64,
}

/// Bus-loading summary — the level-2/3 optimization target of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct BusReport {
    /// Bus name.
    pub bus: String,
    /// Fraction of elapsed time the bus was busy.
    pub utilization: f64,
    /// Total busy ticks.
    pub total_busy_ticks: u64,
    /// Per-master accounting.
    pub masters: Vec<MasterReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::AccessKind;

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    #[test]
    fn routing_respects_regions() {
        let mut bus = Bus::new("amba", BusConfig::default());
        let mem = bus.map_region("mem", 0x0000, 0x1000, 2);
        let fpga = bus.map_region("fpga", 0x1000, 0x100, 0);
        assert_eq!(bus.route(0x0), Some(mem));
        assert_eq!(bus.route(0xFFF), Some(mem));
        assert_eq!(bus.route(0x1000), Some(fpga));
        assert_eq!(bus.route(0x10FF), Some(fpga));
        assert_eq!(bus.route(0x2000), None);
        assert_eq!(bus.slave_name(mem), "mem");
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_regions_panic() {
        let mut bus = Bus::new("amba", BusConfig::default());
        bus.map_region("a", 0, 0x100, 0);
        bus.map_region("b", 0x80, 0x100, 0);
    }

    #[test]
    fn transfer_timing_includes_all_components() {
        let mut bus = Bus::new(
            "amba",
            BusConfig {
                arbitration_cycles: 2,
                cycles_per_word: 3,
                ..BusConfig::default()
            },
        );
        bus.map_region("mem", 0, 0x1000, 5);
        let m = bus.add_master("cpu");
        let r = bus
            .transfer(t(10), &Payload::burst(m, 0x0, AccessKind::Read, 4))
            .expect("mapped transfer succeeds");
        assert_eq!(r.start, t(10));
        // 2 + 4*3 + 5 = 19 ticks.
        assert_eq!(r.end, t(29));
        assert_eq!(r.waited, 0);
    }

    #[test]
    fn contention_serializes_fcfs() {
        let mut bus = Bus::new("amba", BusConfig::default());
        bus.map_region("mem", 0, 0x1000, 0);
        let a = bus.add_master("a");
        let b = bus.add_master("b");
        // Both request at t=0: 1 + 8 = 9 ticks each.
        let ra = bus
            .transfer(t(0), &Payload::burst(a, 0, AccessKind::Write, 8))
            .expect("transfer");
        let rb = bus
            .transfer(t(0), &Payload::burst(b, 0, AccessKind::Write, 8))
            .expect("transfer");
        assert_eq!(ra.start, t(0));
        assert_eq!(ra.end, t(9));
        assert_eq!(rb.start, t(9));
        assert_eq!(rb.end, t(18));
        assert_eq!(rb.waited, 9);
        let report = bus.report(t(18));
        assert_eq!(report.total_busy_ticks, 18);
        assert!((report.utilization - 1.0).abs() < 1e-9);
        assert_eq!(report.masters[1].wait_ticks, 9);
    }

    #[test]
    fn idle_gaps_lower_utilization() {
        let mut bus = Bus::new("amba", BusConfig::default());
        bus.map_region("mem", 0, 0x1000, 0);
        let a = bus.add_master("a");
        bus.transfer(t(0), &Payload::read(a, 0)).expect("transfer"); // 2 ticks (1 arb + 1 word)
        bus.transfer(t(100), &Payload::read(a, 0))
            .expect("transfer"); // 2 more
        let report = bus.report(t(102));
        assert_eq!(report.total_busy_ticks, 4);
        assert!((report.utilization - 4.0 / 102.0).abs() < 1e-9);
    }

    #[test]
    fn burst_splitting_pays_arbitration_per_chunk() {
        let mut bus = Bus::new("ahb", BusConfig::ahb());
        bus.map_region("mem", 0, 0x10000, 0);
        let m = bus.add_master("dma");
        // 40 words at 16 beats/burst = 3 chunks → 3 arbitrations + 40 beats.
        let r = bus
            .transfer(t(0), &Payload::burst(m, 0, AccessKind::Write, 40))
            .expect("transfer");
        assert_eq!(r.end, t(3 + 40));
        // Unlimited bursts charge arbitration once.
        let mut bus2 = Bus::new("flat", BusConfig::default());
        bus2.map_region("mem", 0, 0x10000, 0);
        let m2 = bus2.add_master("dma");
        let r2 = bus2
            .transfer(t(0), &Payload::burst(m2, 0, AccessKind::Write, 40))
            .expect("transfer");
        assert_eq!(r2.end, t(1 + 40));
    }

    #[test]
    fn reservation_delay_helper() {
        let r = Reservation {
            start: t(5),
            end: t(12),
            waited: 5,
        };
        assert_eq!(r.delay_from(t(3)), t(9));
    }

    #[test]
    fn unmapped_address_is_a_decode_error() {
        let mut bus = Bus::new("amba", BusConfig::default());
        let m = bus.add_master("cpu");
        let err = bus
            .transfer(t(0), &Payload::read(m, 0xDEAD_0000))
            .expect_err("no region mapped");
        assert_eq!(err, BusError::Decode { addr: 0xDEAD_0000 });
        // Decode errors consume no bus time.
        assert_eq!(bus.report(t(10)).total_busy_ticks, 0);
    }

    #[test]
    fn unknown_master_is_a_typed_error() {
        let mut bus = Bus::new("amba", BusConfig::default());
        bus.map_region("mem", 0, 0x1000, 0);
        let err = bus
            .transfer(t(0), &Payload::read(7, 0x0))
            .expect_err("master 7 never registered");
        assert_eq!(err, BusError::UnknownMaster { master: 7 });
    }

    #[test]
    fn injected_slave_error_still_occupies_the_bus() {
        use sim::faults::{FaultPlan, PPM};
        let mut bus = Bus::new("amba", BusConfig::default());
        bus.map_region("mem", 0, 0x1000, 0);
        let m = bus.add_master("cpu");
        bus.set_fault_plan(FaultPlan::new(1).with_bus_errors(0, 0x100, PPM).shared());
        let err = bus
            .transfer(t(0), &Payload::burst(m, 0, AccessKind::Write, 8))
            .expect_err("rate 1e6 always fires");
        match err {
            BusError::Slave { slave, addr, at } => {
                assert_eq!(slave, "mem");
                assert_eq!(addr, 0);
                // The failed burst occupied the bus for 1 + 8 ticks.
                assert_eq!(at, t(9));
            }
            other => panic!("expected slave error, got {other:?}"),
        }
        let report = bus.report(t(9));
        assert_eq!(report.total_busy_ticks, 9);
        assert_eq!(report.masters[m].errors, 1);
        // The next transfer queues behind the failed one.
        let r = bus
            .transfer(t(0), &Payload::read(m, 0x800))
            .expect("out of fault range");
        assert_eq!(r.start, t(9));
    }

    #[test]
    fn injected_stall_delays_completion() {
        use sim::faults::{FaultPlan, PPM};
        let mut bus = Bus::new("amba", BusConfig::default());
        bus.map_region("mem", 0, 0x1000, 0);
        let m = bus.add_master("cpu");
        bus.set_fault_plan(FaultPlan::new(1).with_slave_stalls(PPM, 25).shared());
        let r = bus
            .transfer(t(0), &Payload::read(m, 0))
            .expect("stall is not an error");
        // 1 arbitration + 1 word + 25 stall ticks.
        assert_eq!(r.end, t(27));
    }

    #[test]
    fn zero_rate_plan_changes_nothing() {
        let mut plain = Bus::new("amba", BusConfig::default());
        plain.map_region("mem", 0, 0x1000, 2);
        let mp = plain.add_master("cpu");
        let mut faulted = Bus::new("amba", BusConfig::default());
        faulted.map_region("mem", 0, 0x1000, 2);
        let mf = faulted.add_master("cpu");
        faulted.set_fault_plan(sim::faults::FaultPlan::new(1234).shared());
        for i in 0..20u64 {
            let p = Payload::burst(mp, (i * 8) % 0x1000, AccessKind::Write, 4 + i as u32);
            let q = Payload::burst(mf, (i * 8) % 0x1000, AccessKind::Write, 4 + i as u32);
            let a = plain.transfer(t(i * 3), &p).expect("ok");
            let b = faulted.transfer(t(i * 3), &q).expect("ok");
            assert_eq!(a, b);
        }
        assert_eq!(plain.report(t(100)), faulted.report(t(100)));
    }

    #[test]
    fn collector_sees_spans_and_counters() {
        let collector = telemetry::Collector::shared();
        let mut bus = Bus::new("amba", BusConfig::default());
        bus.set_instrument(collector.clone());
        bus.map_region("mem", 0, 0x1000, 0);
        let m = bus.add_master("cpu");
        bus.transfer(t(0), &Payload::burst(m, 0, AccessKind::Write, 8))
            .expect("transfer");
        bus.transfer(t(0), &Payload::read(m, 0x10)).expect("queued");
        assert_eq!(collector.counter("bus.transactions"), 2);
        assert_eq!(collector.counter("bus.words"), 9);
        assert_eq!(collector.counter("bus.errors"), 0);
        let spans = collector.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].track, "bus:cpu");
        assert_eq!(spans[0].name, "mem:W8w");
        assert_eq!((spans[0].start, spans[0].end), (0, 9));
        assert_eq!(spans[1].name, "mem:R1w");
        // The queued read waited out the first burst.
        assert_eq!(collector.histogram("bus.wait_ticks").max(), 9);
        assert!(!collector.gauge_series("bus.grant").is_empty());
    }

    #[test]
    fn injected_error_counts_through_collector() {
        use sim::faults::{FaultPlan, PPM};
        let collector = telemetry::Collector::shared();
        let mut bus = Bus::new("amba", BusConfig::default());
        bus.set_instrument(collector.clone());
        bus.map_region("mem", 0, 0x1000, 0);
        let m = bus.add_master("cpu");
        bus.set_fault_plan(FaultPlan::new(1).with_bus_errors(0, 0x100, PPM).shared());
        bus.transfer(t(0), &Payload::read(m, 0))
            .expect_err("always faults");
        assert_eq!(collector.counter("bus.errors"), 1);
        // The failed burst still produced its span.
        assert_eq!(collector.spans().len(), 1);
    }

    #[test]
    fn bus_error_display() {
        assert_eq!(
            BusError::Decode { addr: 0x42 }.to_string(),
            "address 0x42 routes to no mapped region"
        );
        assert_eq!(
            BusError::Slave {
                slave: "flash".into(),
                addr: 0x100,
                at: t(9)
            }
            .to_string(),
            "slave `flash` error response at 0x100"
        );
        assert_eq!(
            BusError::UnknownMaster { master: 3 }.to_string(),
            "unknown master index 3"
        );
    }
}
