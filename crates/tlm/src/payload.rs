//! Bus transactions: the generic payload.

use std::fmt;

/// Direction of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read from a slave.
    Read,
    /// Write to a slave.
    Write,
}

/// A burst transaction on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Payload {
    /// Target byte address (word-aligned by convention).
    pub addr: u64,
    /// Direction.
    pub kind: AccessKind,
    /// Burst length in bus words.
    pub words: u32,
    /// Issuing master (index assigned by [`crate::Bus::add_master`]).
    pub master: usize,
}

impl Payload {
    /// A single-word read.
    pub fn read(master: usize, addr: u64) -> Payload {
        Payload {
            addr,
            kind: AccessKind::Read,
            words: 1,
            master,
        }
    }

    /// A single-word write.
    pub fn write(master: usize, addr: u64) -> Payload {
        Payload {
            addr,
            kind: AccessKind::Write,
            words: 1,
            master,
        }
    }

    /// A burst of `words` words.
    pub fn burst(master: usize, addr: u64, kind: AccessKind, words: u32) -> Payload {
        Payload {
            addr,
            kind,
            words,
            master,
        }
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        };
        write!(
            f,
            "{}[{:#x} x{} m{}]",
            k, self.addr, self.words, self.master
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = Payload::read(0, 0x100);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(r.words, 1);
        let w = Payload::write(1, 0x200);
        assert_eq!(w.kind, AccessKind::Write);
        let b = Payload::burst(2, 0x300, AccessKind::Write, 64);
        assert_eq!(b.words, 64);
        assert_eq!(b.master, 2);
    }

    #[test]
    fn display() {
        let b = Payload::burst(1, 0x40, AccessKind::Read, 8);
        assert_eq!(b.to_string(), "R[0x40 x8 m1]");
    }
}
