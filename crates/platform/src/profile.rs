//! Execution profiles: the bridge from level-1 profiling to level-2
//! annotation.
//!
//! "This ranking of the most demanding tasks is done by execution profiling
//! of the UT code developed at level 1. Therefore accurate profiling is of
//! key relevance" (§4.1). A [`Profile`] stores the measured per-invocation
//! [`OpMix`] of every module; the level-2 model builder prices it with a
//! [`crate::CpuModel`] for modules mapped to SW and with a hardware cost
//! for modules mapped to HW.

use crate::cpu::{CpuModel, OpMix};
use std::collections::BTreeMap;

/// Per-module operation profiles collected at level 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    mixes: BTreeMap<String, OpMix>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Records (accumulates) a module's operation mix.
    pub fn record(&mut self, module: &str, mix: OpMix) {
        let entry = self.mixes.entry(module.to_owned()).or_default();
        *entry = entry.add(mix);
    }

    /// The mix recorded for a module (zero when never recorded).
    pub fn mix(&self, module: &str) -> OpMix {
        self.mixes.get(module).copied().unwrap_or_default()
    }

    /// Modules sorted by descending total operation count — the ranking of
    /// "the heaviest computational tasks" that drives HW/SW partitioning.
    pub fn ranking(&self) -> Vec<(&str, OpMix)> {
        let mut v: Vec<(&str, OpMix)> = self.mixes.iter().map(|(k, &m)| (k.as_str(), m)).collect();
        v.sort_by(|a, b| b.1.total().cmp(&a.1.total()).then(a.0.cmp(b.0)));
        v
    }

    /// Prices a module's recorded mix on a CPU — the automatic annotation.
    pub fn annotate(&self, module: &str, cpu: &CpuModel) -> u64 {
        cpu.cycles(self.mix(module))
    }

    /// All module names.
    pub fn modules(&self) -> Vec<&str> {
        self.mixes.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut p = Profile::new();
        p.record(
            "edge",
            OpMix {
                alu: 10,
                ..OpMix::default()
            },
        );
        p.record(
            "edge",
            OpMix {
                alu: 5,
                mem: 2,
                ..OpMix::default()
            },
        );
        let m = p.mix("edge");
        assert_eq!(m.alu, 15);
        assert_eq!(m.mem, 2);
        assert_eq!(p.mix("ghost"), OpMix::default());
    }

    #[test]
    fn ranking_orders_by_total() {
        let mut p = Profile::new();
        p.record(
            "light",
            OpMix {
                alu: 10,
                ..OpMix::default()
            },
        );
        p.record(
            "heavy",
            OpMix {
                mul: 1000,
                ..OpMix::default()
            },
        );
        p.record(
            "medium",
            OpMix {
                mem: 100,
                ..OpMix::default()
            },
        );
        let names: Vec<&str> = p.ranking().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["heavy", "medium", "light"]);
    }

    #[test]
    fn annotation_prices_with_cpu_model() {
        let mut p = Profile::new();
        p.record(
            "root",
            OpMix {
                div: 10,
                ..OpMix::default()
            },
        );
        let arm = CpuModel::arm7tdmi();
        assert_eq!(p.annotate("root", &arm), 400);
        assert_eq!(p.annotate("missing", &arm), 0);
    }

    #[test]
    fn modules_listed() {
        let mut p = Profile::new();
        p.record("a", OpMix::default());
        p.record("b", OpMix::default());
        assert_eq!(p.modules(), vec!["a", "b"]);
    }
}
