//! Processor cycle models and operation mixes.

use std::fmt;

/// An operation mix: how many operations of each cost class a piece of
/// software executes. Produced by profiling (level 1) and priced by a
/// [`CpuModel`] (levels 2–3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMix {
    /// ALU operations (add/sub/logic/shift/compare/move).
    pub alu: u64,
    /// Multiplications.
    pub mul: u64,
    /// Divisions / remainders.
    pub div: u64,
    /// Memory accesses.
    pub mem: u64,
    /// Branches.
    pub branch: u64,
    /// Calls (function, resource, reconfiguration).
    pub call: u64,
}

impl OpMix {
    /// Elementwise sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: OpMix) -> OpMix {
        OpMix {
            alu: self.alu + other.alu,
            mul: self.mul + other.mul,
            div: self.div + other.div,
            mem: self.mem + other.mem,
            branch: self.branch + other.branch,
            call: self.call + other.call,
        }
    }

    /// Scales every class by `n` (e.g. per-pixel mix × pixel count).
    pub fn scale(self, n: u64) -> OpMix {
        OpMix {
            alu: self.alu * n,
            mul: self.mul * n,
            div: self.div * n,
            mem: self.mem * n,
            branch: self.branch * n,
            call: self.call * n,
        }
    }

    /// Total operation count.
    pub fn total(self) -> u64 {
        self.alu + self.mul + self.div + self.mem + self.branch + self.call
    }
}

impl From<behav::interp::OpCounts> for OpMix {
    fn from(c: behav::interp::OpCounts) -> OpMix {
        OpMix {
            alu: c.alu,
            mul: c.mul,
            div: c.div,
            mem: c.mem,
            branch: c.branch,
            call: c.call,
        }
    }
}

/// A processor timing model: cycles charged per operation class.
///
/// # Example
///
/// ```
/// use platform::{CpuModel, OpMix};
/// let cpu = CpuModel::arm7tdmi();
/// let mix = OpMix { alu: 100, mul: 10, mem: 20, ..OpMix::default() };
/// assert!(cpu.cycles(mix) > 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuModel {
    name: String,
    /// Cycles per ALU op.
    pub alu_cycles: u64,
    /// Cycles per multiplication.
    pub mul_cycles: u64,
    /// Cycles per division (SW routine on cores without a divider).
    pub div_cycles: u64,
    /// Cycles per memory access.
    pub mem_cycles: u64,
    /// Cycles per branch (pipeline refill).
    pub branch_cycles: u64,
    /// Cycles per call (save/restore + branch).
    pub call_cycles: u64,
    /// Clock divisor relative to the bus clock (1 = same clock).
    pub clock_divisor: u64,
}

impl CpuModel {
    /// The case study's processor: an ARM7TDMI-class 32-bit core.
    /// Three-stage pipeline: 1-cycle ALU, early-terminating multiplier
    /// (~4 cycles average), no divider (software division ~40 cycles),
    /// 3-cycle loads/branches.
    pub fn arm7tdmi() -> Self {
        CpuModel {
            name: "ARM7TDMI-class".to_owned(),
            alu_cycles: 1,
            mul_cycles: 4,
            div_cycles: 40,
            mem_cycles: 3,
            branch_cycles: 3,
            call_cycles: 6,
            clock_divisor: 1,
        }
    }

    /// A faster hypothetical core for exploration sweeps (single-cycle
    /// memory, hardware divider).
    pub fn fast_riscv_class() -> Self {
        CpuModel {
            name: "fast-RISC-class".to_owned(),
            alu_cycles: 1,
            mul_cycles: 2,
            div_cycles: 8,
            mem_cycles: 1,
            branch_cycles: 2,
            call_cycles: 3,
            clock_divisor: 1,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Prices an operation mix in bus-clock ticks — the automatic SW
    /// annotation of the flow.
    pub fn cycles(&self, mix: OpMix) -> u64 {
        let core = mix.alu * self.alu_cycles
            + mix.mul * self.mul_cycles
            + mix.div * self.div_cycles
            + mix.mem * self.mem_cycles
            + mix.branch * self.branch_cycles
            + mix.call * self.call_cycles;
        core * self.clock_divisor
    }
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opmix_arithmetic() {
        let a = OpMix {
            alu: 1,
            mul: 2,
            ..OpMix::default()
        };
        let b = OpMix {
            alu: 10,
            mem: 5,
            ..OpMix::default()
        };
        let s = a.add(b);
        assert_eq!(s.alu, 11);
        assert_eq!(s.mul, 2);
        assert_eq!(s.mem, 5);
        assert_eq!(s.total(), 18);
        let sc = a.scale(3);
        assert_eq!(sc.alu, 3);
        assert_eq!(sc.mul, 6);
    }

    #[test]
    fn arm7_pricing() {
        let cpu = CpuModel::arm7tdmi();
        let mix = OpMix {
            alu: 10,
            mul: 1,
            div: 1,
            mem: 2,
            branch: 1,
            call: 1,
        };
        // 10 + 4 + 40 + 6 + 3 + 6 = 69
        assert_eq!(cpu.cycles(mix), 69);
    }

    #[test]
    fn division_dominates_on_arm7() {
        let cpu = CpuModel::arm7tdmi();
        let divs = OpMix {
            div: 10,
            ..OpMix::default()
        };
        let alus = OpMix {
            alu: 100,
            ..OpMix::default()
        };
        assert!(cpu.cycles(divs) > cpu.cycles(alus));
    }

    #[test]
    fn faster_core_is_faster() {
        let mix = OpMix {
            alu: 100,
            mul: 20,
            div: 5,
            mem: 50,
            branch: 25,
            call: 10,
        };
        assert!(CpuModel::fast_riscv_class().cycles(mix) < CpuModel::arm7tdmi().cycles(mix));
    }

    #[test]
    fn conversion_from_behav_counts() {
        let counts = behav::interp::OpCounts {
            alu: 5,
            mul: 1,
            div: 2,
            mem: 3,
            branch: 4,
            call: 6,
        };
        let mix: OpMix = counts.into();
        assert_eq!(mix.alu, 5);
        assert_eq!(mix.call, 6);
    }
}
