//! Platform models: CPU timing, FPGA contexts, profiling/annotation.
//!
//! Levels 2 and 3 of the Symbad flow need architecture models on top of the
//! TL bus:
//!
//! * [`cpu`] — the processor cycle model (ARM7TDMI-class default). The
//!   paper's key speed trick is that embedded SW is *not* run on an ISS:
//!   it executes natively, and simulated time advances by a cycle count
//!   computed from the SW's operation profile and the CPU's cycle table —
//!   "cycle accurate timing of SW can be automatically extracted … based on
//!   a library of models of available processors". [`cpu::CpuModel`] is
//!   that library entry; [`profile`] carries the per-task operation mixes.
//! * [`fpga`] — the reconfigurable device: a set of contexts
//!   (configurations), each holding a set of functions and a bitstream
//!   size. Loading a context issues a burst on the bus (the level-3 cost
//!   the paper highlights); calling a function not currently loaded is the
//!   runtime error SymbC proves absent.
//!
//! Everything is a passive shared object: simulation processes (built by
//! `symbad-core`) call in and then sleep for the returned number of ticks.

pub mod cpu;
pub mod fpga;
pub mod profile;

pub use cpu::{CpuModel, OpMix};
pub use fpga::{
    crc32_words, Context, ContextId, Fpga, FpgaError, FpgaReport, LoadFault, SharedFpga,
};
pub use profile::Profile;
