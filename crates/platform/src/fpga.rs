//! The reconfigurable device: contexts, bitstream downloads, calls.
//!
//! The case study maps DISTANCE and ROOT into an embedded FPGA, split over
//! two contexts (`config1`, `config2`). "Downloading bit-streams is costly
//! in terms of bus loading" (§3.3): loading a context issues a burst
//! transaction of `bitstream_words` on the bus, and the per-run report
//! exposes reconfiguration counts and download traffic — the quantities
//! experiments E3/E9/E10 sweep.

use sim::SimTime;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use tlm::{AccessKind, Payload, Reservation, SharedBus};

/// Identifier of a context (configuration) of an [`Fpga`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextId(pub usize);

impl ContextId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One FPGA configuration: a set of resident functions plus its bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    /// Context name (e.g. `config1`).
    pub name: String,
    /// Functions resident when this context is loaded, with their
    /// hardware execution cost in cycles per invocation.
    pub functions: Vec<(String, u64)>,
    /// Bitstream size in bus words (download cost driver).
    pub bitstream_words: u32,
}

/// Runtime errors of the reconfigurable device — exactly the class of bug
/// SymbC proves absent before this model ever runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpgaError {
    /// A function was called while not resident in the loaded context.
    FunctionNotLoaded {
        /// The requested function.
        func: String,
        /// The currently loaded context, if any.
        loaded: Option<ContextId>,
    },
    /// The named function exists in no context.
    UnknownFunction {
        /// The requested function.
        func: String,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::FunctionNotLoaded { func, loaded } => write!(
                f,
                "function `{func}` called while context {loaded:?} is loaded"
            ),
            FpgaError::UnknownFunction { func } => {
                write!(f, "function `{func}` exists in no context")
            }
        }
    }
}

impl std::error::Error for FpgaError {}

/// The embedded FPGA model.
#[derive(Debug)]
pub struct Fpga {
    name: String,
    contexts: Vec<Context>,
    loaded: Option<ContextId>,
    /// Bus address of the configuration port (bitstreams are written here).
    config_port_addr: u64,
    /// Extra context-switch latency on top of the bus transfer.
    switch_cycles: u64,
    reconfigurations: u64,
    download_words: u64,
    calls: u64,
    busy_cycles: u64,
}

/// Shared handle to an [`Fpga`].
pub type SharedFpga = Rc<RefCell<Fpga>>;

impl Fpga {
    /// Creates an FPGA with no contexts loaded.
    pub fn new(name: &str, config_port_addr: u64, switch_cycles: u64) -> Self {
        Fpga {
            name: name.to_owned(),
            contexts: Vec::new(),
            loaded: None,
            config_port_addr,
            switch_cycles,
            reconfigurations: 0,
            download_words: 0,
            calls: 0,
            busy_cycles: 0,
        }
    }

    /// Creates a shared handle.
    pub fn shared(name: &str, config_port_addr: u64, switch_cycles: u64) -> SharedFpga {
        Rc::new(RefCell::new(Fpga::new(name, config_port_addr, switch_cycles)))
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a context.
    pub fn add_context(&mut self, context: Context) -> ContextId {
        self.contexts.push(context);
        ContextId(self.contexts.len() - 1)
    }

    /// The currently loaded context.
    pub fn loaded(&self) -> Option<ContextId> {
        self.loaded
    }

    /// All contexts.
    pub fn contexts(&self) -> &[Context] {
        &self.contexts
    }

    /// The context providing `func`, if any.
    pub fn context_of(&self, func: &str) -> Option<ContextId> {
        self.contexts
            .iter()
            .position(|c| c.functions.iter().any(|(n, _)| n == func))
            .map(ContextId)
    }

    /// Loads `context`: reserves a bitstream-download burst on `bus` at
    /// time `now` and returns the reservation (caller sleeps until
    /// `reservation.end + switch_cycles`). Loading the already-loaded
    /// context is a no-op costing nothing.
    ///
    /// # Panics
    ///
    /// Panics if `context` is out of range.
    pub fn load(
        &mut self,
        context: ContextId,
        now: SimTime,
        bus: &SharedBus,
        master: usize,
    ) -> Option<Reservation> {
        assert!(context.0 < self.contexts.len(), "unknown context");
        if self.loaded == Some(context) {
            return None;
        }
        let words = self.contexts[context.0].bitstream_words;
        let reservation = bus.borrow_mut().transfer(
            now,
            &Payload::burst(master, self.config_port_addr, AccessKind::Write, words),
        );
        self.loaded = Some(context);
        self.reconfigurations += 1;
        self.download_words += words as u64;
        Some(Reservation {
            start: reservation.start,
            end: reservation.end.saturating_add_ticks(self.switch_cycles),
            waited: reservation.waited,
        })
    }

    /// Invokes `func` on the currently loaded context; returns the
    /// execution cycles the caller must wait.
    ///
    /// # Errors
    ///
    /// [`FpgaError::FunctionNotLoaded`] when the function is not resident —
    /// the consistency violation SymbC exists to rule out — and
    /// [`FpgaError::UnknownFunction`] when no context provides it.
    pub fn call(&mut self, func: &str) -> Result<u64, FpgaError> {
        if self.context_of(func).is_none() {
            return Err(FpgaError::UnknownFunction {
                func: func.to_owned(),
            });
        }
        let loaded = self.loaded;
        let cycles = loaded
            .and_then(|c| {
                self.contexts[c.0]
                    .functions
                    .iter()
                    .find(|(n, _)| n == func)
                    .map(|&(_, cyc)| cyc)
            })
            .ok_or(FpgaError::FunctionNotLoaded {
                func: func.to_owned(),
                loaded,
            })?;
        self.calls += 1;
        self.busy_cycles += cycles;
        Ok(cycles)
    }

    /// Activity report.
    pub fn report(&self) -> FpgaReport {
        FpgaReport {
            fpga: self.name.clone(),
            reconfigurations: self.reconfigurations,
            download_words: self.download_words,
            calls: self.calls,
            busy_cycles: self.busy_cycles,
        }
    }
}

/// Reconfiguration activity summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpgaReport {
    /// Device name.
    pub fpga: String,
    /// Context switches performed.
    pub reconfigurations: u64,
    /// Total bitstream words downloaded over the bus.
    pub download_words: u64,
    /// Function invocations served.
    pub calls: u64,
    /// Cycles spent computing.
    pub busy_cycles: u64,
}

/// Hardware cost table: cycles a module takes per invocation when
/// implemented in FPGA fabric vs. as a software [`crate::OpMix`] on the CPU. Used
/// by the exploration step to decide the mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplCost {
    /// Cycles per invocation in hardware.
    pub hw_cycles: u64,
    /// Operation mix per invocation in software.
    pub sw_mix_total: u64,
}

impl ImplCost {
    /// Hardware speed-up factor over a CPU pricing the mix at ~1
    /// cycle/op (coarse screening metric for partitioning).
    pub fn speedup(&self) -> f64 {
        if self.hw_cycles == 0 {
            f64::INFINITY
        } else {
            self.sw_mix_total as f64 / self.hw_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlm::{Bus, BusConfig};

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn device() -> (Fpga, SharedBus, usize) {
        let bus = Bus::shared("amba", BusConfig::default());
        let master = {
            let mut b = bus.borrow_mut();
            b.map_region("fpga_cfg", 0x1000, 0x100, 0);
            b.add_master("cpu")
        };
        let mut fpga = Fpga::new("efpga", 0x1000, 8);
        fpga.add_context(Context {
            name: "config1".to_owned(),
            functions: vec![("distance".to_owned(), 16)],
            bitstream_words: 256,
        });
        fpga.add_context(Context {
            name: "config2".to_owned(),
            functions: vec![("root".to_owned(), 24)],
            bitstream_words: 128,
        });
        (fpga, bus, master)
    }

    #[test]
    fn context_lookup() {
        let (fpga, _, _) = device();
        assert_eq!(fpga.context_of("distance"), Some(ContextId(0)));
        assert_eq!(fpga.context_of("root"), Some(ContextId(1)));
        assert_eq!(fpga.context_of("ghost"), None);
    }

    #[test]
    fn loading_charges_the_bus() {
        let (mut fpga, bus, m) = device();
        let r = fpga.load(ContextId(0), t(0), &bus, m).expect("first load");
        // 1 arbitration + 256 words + 8 switch cycles.
        assert_eq!(r.end, t(1 + 256 + 8));
        assert_eq!(fpga.loaded(), Some(ContextId(0)));
        let report = bus.borrow().report(r.end);
        assert_eq!(report.masters[m].words, 256);
    }

    #[test]
    fn reloading_same_context_is_free() {
        let (mut fpga, bus, m) = device();
        fpga.load(ContextId(1), t(0), &bus, m);
        assert!(fpga.load(ContextId(1), t(500), &bus, m).is_none());
        assert_eq!(fpga.report().reconfigurations, 1);
        assert_eq!(fpga.report().download_words, 128);
    }

    #[test]
    fn calls_respect_residency() {
        let (mut fpga, bus, m) = device();
        // Nothing loaded yet.
        assert_eq!(
            fpga.call("distance"),
            Err(FpgaError::FunctionNotLoaded {
                func: "distance".to_owned(),
                loaded: None
            })
        );
        fpga.load(ContextId(0), t(0), &bus, m);
        assert_eq!(fpga.call("distance"), Ok(16));
        // root lives in config2: calling it now is the SymbC-class error.
        assert_eq!(
            fpga.call("root"),
            Err(FpgaError::FunctionNotLoaded {
                func: "root".to_owned(),
                loaded: Some(ContextId(0))
            })
        );
        fpga.load(ContextId(1), t(100), &bus, m);
        assert_eq!(fpga.call("root"), Ok(24));
        let report = fpga.report();
        assert_eq!(report.calls, 2);
        assert_eq!(report.busy_cycles, 40);
        assert_eq!(report.reconfigurations, 2);
    }

    #[test]
    fn unknown_function_is_distinguished() {
        let (mut fpga, _, _) = device();
        assert_eq!(
            fpga.call("fft"),
            Err(FpgaError::UnknownFunction {
                func: "fft".to_owned()
            })
        );
    }

    #[test]
    fn impl_cost_speedup() {
        let c = ImplCost {
            hw_cycles: 10,
            sw_mix_total: 500,
        };
        assert!((c.speedup() - 50.0).abs() < 1e-9);
    }
}
