//! The reconfigurable device: contexts, bitstream downloads, calls.
//!
//! The case study maps DISTANCE and ROOT into an embedded FPGA, split over
//! two contexts (`config1`, `config2`). "Downloading bit-streams is costly
//! in terms of bus loading" (§3.3): loading a context issues a burst
//! transaction of `bitstream_words` on the bus, and the per-run report
//! exposes reconfiguration counts and download traffic — the quantities
//! experiments E3/E9/E10 sweep.

use sim::faults::SharedFaultPlan;
use sim::SimTime;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use telemetry::SharedInstrument;
use tlm::{AccessKind, BusError, Payload, Reservation, SharedBus};

/// CRC-32 (reflected, polynomial `0xEDB88320`) over a stream of words,
/// little-endian byte order. This is the checksum the FPGA verifies after
/// every bitstream download: a single corrupted word always changes it.
pub fn crc32_words(words: impl Iterator<Item = u32>) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for word in words {
        for byte in word.to_le_bytes() {
            crc ^= byte as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    !crc
}

/// Identifier of a context (configuration) of an [`Fpga`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextId(pub usize);

impl ContextId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One FPGA configuration: a set of resident functions plus its bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    /// Context name (e.g. `config1`).
    pub name: String,
    /// Functions resident when this context is loaded, with their
    /// hardware execution cost in cycles per invocation.
    pub functions: Vec<(String, u64)>,
    /// Bitstream size in bus words (download cost driver).
    pub bitstream_words: u32,
}

impl Context {
    /// Word `i` of this context's pseudo-bitstream. The stream content is
    /// synthesized deterministically from the context name so the model
    /// carries no real configuration data yet still has a well-defined
    /// CRC that corruption faults can break.
    pub fn bitstream_word(&self, i: u32) -> u32 {
        sim::faults::mix64(sim::faults::fnv1a(self.name.as_bytes()) ^ u64::from(i)) as u32
    }

    /// Reference CRC-32 of the full bitstream, as recorded at "design
    /// time". Downloads are verified against this value.
    pub fn crc(&self) -> u32 {
        crc32_words((0..self.bitstream_words).map(|i| self.bitstream_word(i)))
    }
}

/// Runtime errors of the reconfigurable device — exactly the class of bug
/// SymbC proves absent before this model ever runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpgaError {
    /// A function was called while not resident in the loaded context.
    FunctionNotLoaded {
        /// The requested function.
        func: String,
        /// The currently loaded context, if any.
        loaded: Option<ContextId>,
    },
    /// The named function exists in no context.
    UnknownFunction {
        /// The requested function.
        func: String,
    },
    /// A downloaded bitstream failed the post-download CRC check.
    BitstreamCorrupted {
        /// The context whose download was corrupted.
        context: String,
        /// CRC recorded at design time.
        expected_crc: u32,
        /// CRC computed over the received stream.
        got_crc: u32,
    },
    /// A context download did not complete within the watchdog window.
    LoadTimeout {
        /// The context being downloaded.
        context: String,
    },
    /// The bitstream download transaction failed on the bus.
    Bus(BusError),
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::FunctionNotLoaded { func, loaded } => write!(
                f,
                "function `{func}` called while context {loaded:?} is loaded"
            ),
            FpgaError::UnknownFunction { func } => {
                write!(f, "function `{func}` exists in no context")
            }
            FpgaError::BitstreamCorrupted {
                context,
                expected_crc,
                got_crc,
            } => write!(
                f,
                "bitstream for context `{context}` corrupted: \
                 expected CRC {expected_crc:#010x}, got {got_crc:#010x}"
            ),
            FpgaError::LoadTimeout { context } => {
                write!(f, "download of context `{context}` timed out")
            }
            FpgaError::Bus(e) => write!(f, "bitstream download failed on the bus: {e}"),
        }
    }
}

impl std::error::Error for FpgaError {}

impl From<BusError> for FpgaError {
    fn from(e: BusError) -> Self {
        FpgaError::Bus(e)
    }
}

/// A failed [`Fpga::load`]: the error plus the simulation time at which
/// the device (and bus) are free again, so the caller can schedule a retry
/// deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadFault {
    /// What went wrong.
    pub error: FpgaError,
    /// When the failed attempt's bus/device occupancy ends. Retries must
    /// not start before this time.
    pub busy_until: SimTime,
}

impl fmt::Display for LoadFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (device busy until {})", self.error, self.busy_until)
    }
}

impl std::error::Error for LoadFault {}

/// The embedded FPGA model.
#[derive(Debug)]
pub struct Fpga {
    name: String,
    contexts: Vec<Context>,
    loaded: Option<ContextId>,
    /// Bus address of the configuration port (bitstreams are written here).
    config_port_addr: u64,
    /// Extra context-switch latency on top of the bus transfer.
    switch_cycles: u64,
    reconfigurations: u64,
    download_words: u64,
    failed_loads: u64,
    calls: u64,
    busy_cycles: u64,
    faults: Option<SharedFaultPlan>,
    instrument: SharedInstrument,
}

/// Watchdog budget for a context download, in multiples of
/// `switch_cycles`: a timed-out load occupies the device this much longer
/// than a clean context switch before the CPU gives up.
const LOAD_TIMEOUT_WATCHDOG_FACTOR: u64 = 4;

/// Shared handle to an [`Fpga`].
pub type SharedFpga = Rc<RefCell<Fpga>>;

impl Fpga {
    /// Creates an FPGA with no contexts loaded.
    pub fn new(name: &str, config_port_addr: u64, switch_cycles: u64) -> Self {
        Fpga {
            name: name.to_owned(),
            contexts: Vec::new(),
            loaded: None,
            config_port_addr,
            switch_cycles,
            reconfigurations: 0,
            download_words: 0,
            failed_loads: 0,
            calls: 0,
            busy_cycles: 0,
            faults: None,
            instrument: telemetry::noop(),
        }
    }

    /// Attaches a telemetry instrument: context downloads then emit spans
    /// on the `fpga` track, reconfiguration-latency histogram samples and
    /// a loaded-context gauge (0 = nothing loaded, `i + 1` = context `i`).
    pub fn set_instrument(&mut self, instrument: SharedInstrument) {
        self.instrument = instrument;
    }

    /// Installs a fault plan; bitstream downloads consult it for injected
    /// corruption and timeouts. Without a plan (or with a zero-rate plan)
    /// every download succeeds.
    pub fn set_fault_plan(&mut self, plan: SharedFaultPlan) {
        self.faults = Some(plan);
    }

    /// Creates a shared handle.
    pub fn shared(name: &str, config_port_addr: u64, switch_cycles: u64) -> SharedFpga {
        Rc::new(RefCell::new(Fpga::new(
            name,
            config_port_addr,
            switch_cycles,
        )))
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a context.
    pub fn add_context(&mut self, context: Context) -> ContextId {
        self.contexts.push(context);
        ContextId(self.contexts.len() - 1)
    }

    /// The currently loaded context.
    pub fn loaded(&self) -> Option<ContextId> {
        self.loaded
    }

    /// All contexts.
    pub fn contexts(&self) -> &[Context] {
        &self.contexts
    }

    /// The context providing `func`, if any.
    pub fn context_of(&self, func: &str) -> Option<ContextId> {
        self.contexts
            .iter()
            .position(|c| c.functions.iter().any(|(n, _)| n == func))
            .map(ContextId)
    }

    /// Loads `context`: reserves a bitstream-download burst on `bus` at
    /// time `now`, verifies the received stream's CRC against the
    /// design-time reference, and returns the reservation (caller sleeps
    /// until `reservation.end`, which already includes `switch_cycles`).
    /// Loading the already-loaded context is a no-op costing nothing
    /// (`Ok(None)`).
    ///
    /// # Errors
    ///
    /// Any failed download leaves the device with **no** loaded context —
    /// a partially written configuration memory is never trusted — so a
    /// subsequent `call` surfaces as [`FpgaError::FunctionNotLoaded`]
    /// rather than a silent wrong answer. The returned [`LoadFault`]
    /// carries the time at which the failed attempt's occupancy ends.
    ///
    /// # Panics
    ///
    /// Panics if `context` is out of range.
    pub fn load(
        &mut self,
        context: ContextId,
        now: SimTime,
        bus: &SharedBus,
        master: usize,
    ) -> Result<Option<Reservation>, LoadFault> {
        assert!(context.0 < self.contexts.len(), "unknown context");
        if self.loaded == Some(context) {
            return Ok(None);
        }
        let (ctx_name, words, expected_crc) = {
            let ctx = &self.contexts[context.0];
            (ctx.name.clone(), ctx.bitstream_words, ctx.crc())
        };
        let reservation = match bus.borrow_mut().transfer(
            now,
            &Payload::burst(master, self.config_port_addr, AccessKind::Write, words),
        ) {
            Ok(r) => r,
            Err(e) => {
                // The burst aborted mid-flight: configuration memory is in
                // an undefined state, so drop whatever was loaded.
                self.loaded = None;
                self.failed_loads += 1;
                let busy_until = match &e {
                    BusError::Slave { at, .. } => *at,
                    _ => now,
                };
                self.note_failed_load(&ctx_name, now, busy_until);
                return Err(LoadFault {
                    error: FpgaError::Bus(e),
                    busy_until,
                });
            }
        };
        self.download_words += words as u64;
        if self
            .faults
            .as_ref()
            .is_some_and(|p| p.borrow_mut().load_timeout(&ctx_name))
        {
            self.loaded = None;
            self.failed_loads += 1;
            let busy_until = reservation
                .end
                .saturating_add_ticks(self.switch_cycles * LOAD_TIMEOUT_WATCHDOG_FACTOR);
            self.note_failed_load(&ctx_name, now, busy_until);
            return Err(LoadFault {
                error: FpgaError::LoadTimeout { context: ctx_name },
                busy_until,
            });
        }
        let got_crc = match self
            .faults
            .as_ref()
            .and_then(|p| p.borrow_mut().bitstream_corruption(&ctx_name, words))
        {
            Some((index, mask)) => {
                let ctx = &self.contexts[context.0];
                crc32_words((0..words).map(|i| {
                    let w = ctx.bitstream_word(i);
                    if i == index {
                        w ^ mask
                    } else {
                        w
                    }
                }))
            }
            None => expected_crc,
        };
        if got_crc != expected_crc {
            self.loaded = None;
            self.failed_loads += 1;
            let busy_until = reservation.end.saturating_add_ticks(self.switch_cycles);
            self.note_failed_load(&ctx_name, now, busy_until);
            return Err(LoadFault {
                error: FpgaError::BitstreamCorrupted {
                    context: ctx_name,
                    expected_crc,
                    got_crc,
                },
                busy_until,
            });
        }
        self.loaded = Some(context);
        self.reconfigurations += 1;
        let end = reservation.end.saturating_add_ticks(self.switch_cycles);
        if self.instrument.enabled() {
            let i = &self.instrument;
            i.span(
                "fpga",
                &format!("load {ctx_name}"),
                now.ticks(),
                end.ticks(),
            );
            i.counter_add("fpga.reconfigurations", 1);
            i.counter_add("fpga.download_words", words as u64);
            i.record("fpga.reconfig_latency", end.ticks_since(now));
            i.gauge_set("fpga.context", end.ticks(), context.0 as i64 + 1);
        }
        Ok(Some(Reservation {
            start: reservation.start,
            end,
            waited: reservation.waited,
        }))
    }

    /// Telemetry for a failed download: a span covering the occupied
    /// window, a failure counter and the context gauge dropping to 0
    /// (nothing loaded).
    fn note_failed_load(&self, ctx_name: &str, now: SimTime, busy_until: SimTime) {
        if self.instrument.enabled() {
            let i = &self.instrument;
            i.span(
                "fpga",
                &format!("load {ctx_name} (failed)"),
                now.ticks(),
                busy_until.ticks(),
            );
            i.counter_add("fpga.failed_loads", 1);
            i.gauge_set("fpga.context", busy_until.ticks(), 0);
        }
    }

    /// Invokes `func` on the currently loaded context; returns the
    /// execution cycles the caller must wait.
    ///
    /// # Errors
    ///
    /// [`FpgaError::FunctionNotLoaded`] when the function is not resident —
    /// the consistency violation SymbC exists to rule out — and
    /// [`FpgaError::UnknownFunction`] when no context provides it.
    pub fn call(&mut self, func: &str) -> Result<u64, FpgaError> {
        if self.context_of(func).is_none() {
            return Err(FpgaError::UnknownFunction {
                func: func.to_owned(),
            });
        }
        let loaded = self.loaded;
        let cycles = loaded
            .and_then(|c| {
                self.contexts[c.0]
                    .functions
                    .iter()
                    .find(|(n, _)| n == func)
                    .map(|&(_, cyc)| cyc)
            })
            .ok_or(FpgaError::FunctionNotLoaded {
                func: func.to_owned(),
                loaded,
            })?;
        self.calls += 1;
        self.busy_cycles += cycles;
        if self.instrument.enabled() {
            self.instrument.counter_add("fpga.calls", 1);
        }
        Ok(cycles)
    }

    /// Activity report.
    pub fn report(&self) -> FpgaReport {
        FpgaReport {
            fpga: self.name.clone(),
            reconfigurations: self.reconfigurations,
            download_words: self.download_words,
            failed_loads: self.failed_loads,
            calls: self.calls,
            busy_cycles: self.busy_cycles,
        }
    }
}

/// Reconfiguration activity summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpgaReport {
    /// Device name.
    pub fpga: String,
    /// Context switches performed.
    pub reconfigurations: u64,
    /// Total bitstream words downloaded over the bus (including words of
    /// downloads that subsequently failed verification).
    pub download_words: u64,
    /// Downloads that failed (bus error, timeout, or CRC mismatch).
    pub failed_loads: u64,
    /// Function invocations served.
    pub calls: u64,
    /// Cycles spent computing.
    pub busy_cycles: u64,
}

/// Hardware cost table: cycles a module takes per invocation when
/// implemented in FPGA fabric vs. as a software [`crate::OpMix`] on the CPU. Used
/// by the exploration step to decide the mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplCost {
    /// Cycles per invocation in hardware.
    pub hw_cycles: u64,
    /// Operation mix per invocation in software.
    pub sw_mix_total: u64,
}

impl ImplCost {
    /// Hardware speed-up factor over a CPU pricing the mix at ~1
    /// cycle/op (coarse screening metric for partitioning).
    pub fn speedup(&self) -> f64 {
        if self.hw_cycles == 0 {
            f64::INFINITY
        } else {
            self.sw_mix_total as f64 / self.hw_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlm::{Bus, BusConfig};

    fn t(x: u64) -> SimTime {
        SimTime::from_ticks(x)
    }

    fn device() -> (Fpga, SharedBus, usize) {
        let bus = Bus::shared("amba", BusConfig::default());
        let master = {
            let mut b = bus.borrow_mut();
            b.map_region("fpga_cfg", 0x1000, 0x100, 0);
            b.add_master("cpu")
        };
        let mut fpga = Fpga::new("efpga", 0x1000, 8);
        fpga.add_context(Context {
            name: "config1".to_owned(),
            functions: vec![("distance".to_owned(), 16)],
            bitstream_words: 256,
        });
        fpga.add_context(Context {
            name: "config2".to_owned(),
            functions: vec![("root".to_owned(), 24)],
            bitstream_words: 128,
        });
        (fpga, bus, master)
    }

    #[test]
    fn context_lookup() {
        let (fpga, _, _) = device();
        assert_eq!(fpga.context_of("distance"), Some(ContextId(0)));
        assert_eq!(fpga.context_of("root"), Some(ContextId(1)));
        assert_eq!(fpga.context_of("ghost"), None);
    }

    #[test]
    fn loading_charges_the_bus() {
        let (mut fpga, bus, m) = device();
        let r = fpga
            .load(ContextId(0), t(0), &bus, m)
            .expect("load succeeds")
            .expect("first load is not a no-op");
        // 1 arbitration + 256 words + 8 switch cycles.
        assert_eq!(r.end, t(1 + 256 + 8));
        assert_eq!(fpga.loaded(), Some(ContextId(0)));
        let report = bus.borrow().report(r.end);
        assert_eq!(report.masters[m].words, 256);
    }

    #[test]
    fn reloading_same_context_is_free() {
        let (mut fpga, bus, m) = device();
        fpga.load(ContextId(1), t(0), &bus, m).expect("load");
        assert!(fpga
            .load(ContextId(1), t(500), &bus, m)
            .expect("reload")
            .is_none());
        assert_eq!(fpga.report().reconfigurations, 1);
        assert_eq!(fpga.report().download_words, 128);
    }

    #[test]
    fn calls_respect_residency() {
        let (mut fpga, bus, m) = device();
        // Nothing loaded yet.
        assert_eq!(
            fpga.call("distance"),
            Err(FpgaError::FunctionNotLoaded {
                func: "distance".to_owned(),
                loaded: None
            })
        );
        fpga.load(ContextId(0), t(0), &bus, m).expect("load");
        assert_eq!(fpga.call("distance"), Ok(16));
        // root lives in config2: calling it now is the SymbC-class error.
        assert_eq!(
            fpga.call("root"),
            Err(FpgaError::FunctionNotLoaded {
                func: "root".to_owned(),
                loaded: Some(ContextId(0))
            })
        );
        fpga.load(ContextId(1), t(100), &bus, m).expect("load");
        assert_eq!(fpga.call("root"), Ok(24));
        let report = fpga.report();
        assert_eq!(report.calls, 2);
        assert_eq!(report.busy_cycles, 40);
        assert_eq!(report.reconfigurations, 2);
    }

    #[test]
    fn unknown_function_is_distinguished() {
        let (mut fpga, _, _) = device();
        assert_eq!(
            fpga.call("fft"),
            Err(FpgaError::UnknownFunction {
                func: "fft".to_owned()
            })
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC-32 of the bytes 01 00 00 00 02 00 00 00 (words 1, 2 LE),
        // cross-checked against zlib.crc32.
        assert_eq!(crc32_words([1u32, 2u32].into_iter()), 0x0381_177C);
        // Flipping a single bit changes the checksum.
        assert_ne!(
            crc32_words([1u32 ^ 0x8000, 2u32].into_iter()),
            crc32_words([1u32, 2u32].into_iter())
        );
    }

    #[test]
    fn corrupted_download_fails_crc_and_unloads() {
        use sim::FaultPlan;
        let (mut fpga, bus, m) = device();
        fpga.load(ContextId(1), t(0), &bus, m).expect("clean load");
        let plan = FaultPlan::new(7)
            .with_bitstream_corruption(sim::faults::PPM)
            .shared();
        fpga.set_fault_plan(plan);
        let fault = fpga
            .load(ContextId(0), t(500), &bus, m)
            .expect_err("corrupted load must fail");
        assert!(
            matches!(fault.error, FpgaError::BitstreamCorrupted { ref context, expected_crc, got_crc }
                if context == "config1" && expected_crc != got_crc),
            "unexpected fault: {fault}"
        );
        // Partially configured device trusts nothing: even the previously
        // loaded context is gone, so calls fail loudly instead of silently.
        assert_eq!(fpga.loaded(), None);
        assert!(matches!(
            fpga.call("root"),
            Err(FpgaError::FunctionNotLoaded { .. })
        ));
        assert_eq!(fpga.report().failed_loads, 1);
        assert_eq!(fpga.report().reconfigurations, 1);
    }

    #[test]
    fn load_timeout_charges_watchdog_window() {
        use sim::FaultPlan;
        let (mut fpga, bus, m) = device();
        fpga.set_fault_plan(
            FaultPlan::new(3)
                .with_load_timeouts(sim::faults::PPM)
                .shared(),
        );
        let fault = fpga
            .load(ContextId(0), t(0), &bus, m)
            .expect_err("timed-out load must fail");
        assert!(matches!(fault.error, FpgaError::LoadTimeout { .. }));
        // 1 arbitration + 256 words, then 4 watchdog windows of 8 cycles.
        assert_eq!(fault.busy_until, t(1 + 256 + 4 * 8));
        assert_eq!(fpga.loaded(), None);
    }

    #[test]
    fn zero_rate_plan_loads_normally() {
        use sim::FaultPlan;
        let (mut fpga, bus, m) = device();
        fpga.set_fault_plan(FaultPlan::new(99).shared());
        let r = fpga
            .load(ContextId(0), t(0), &bus, m)
            .expect("inert plan never fires")
            .expect("first load");
        assert_eq!(r.end, t(1 + 256 + 8));
        assert_eq!(fpga.report().failed_loads, 0);
    }

    #[test]
    fn collector_tracks_reconfigurations_and_failures() {
        use sim::FaultPlan;
        let collector = telemetry::Collector::shared();
        let (mut fpga, bus, m) = device();
        fpga.set_instrument(collector.clone());
        fpga.load(ContextId(0), t(0), &bus, m).expect("load 1");
        fpga.load(ContextId(1), t(500), &bus, m).expect("load 2");
        fpga.call("root").expect("resident");
        assert_eq!(collector.counter("fpga.reconfigurations"), 2);
        assert_eq!(collector.counter("fpga.download_words"), 256 + 128);
        assert_eq!(collector.counter("fpga.calls"), 1);
        // First load: 1 arbitration + 256 words + 8 switch cycles.
        assert_eq!(collector.histogram("fpga.reconfig_latency").min(), 137);
        assert_eq!(
            collector.gauge_series("fpga.context"),
            vec![(265, 1), (500 + 137, 2)]
        );
        let spans = collector.spans();
        assert_eq!(spans[0].track, "fpga");
        assert_eq!(spans[0].name, "load config1");

        // A corrupted download shows up as a failure and gauge drop.
        fpga.set_fault_plan(
            FaultPlan::new(7)
                .with_bitstream_corruption(sim::faults::PPM)
                .shared(),
        );
        fpga.load(ContextId(0), t(1000), &bus, m)
            .expect_err("corrupted");
        assert_eq!(collector.counter("fpga.failed_loads"), 1);
        assert_eq!(collector.gauge_series("fpga.context").last().unwrap().1, 0);
        assert!(collector
            .spans()
            .iter()
            .any(|s| s.name == "load config1 (failed)"));
    }

    #[test]
    fn impl_cost_speedup() {
        let c = ImplCost {
            hw_cycles: 10,
            sw_mix_total: 500,
        };
        assert!((c.speedup() - 50.0).abs() < 1e-9);
    }
}
