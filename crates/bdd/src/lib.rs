//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! The Symbad flow's level-4 verification uses symbolic model checking in
//! the RuleBase/SMV tradition; this crate provides the underlying BDD
//! engine: hash-consed nodes, the `ite` operator with memoization, boolean
//! connectives, quantification, the relational product
//! ([`Manager::and_exists`]) used for image computation, variable renaming
//! for current/next-state frames, model extraction and model counting.
//!
//! # Example
//!
//! ```
//! use bdd::Manager;
//!
//! let mut m = Manager::new();
//! let x = m.var(0);
//! let y = m.var(1);
//! let f = m.and(x, y);
//! let g = m.or(x, y);
//! assert!(m.implies_check(f, g));      // x∧y ⇒ x∨y
//! assert_eq!(m.sat_count(f, 2), 1);    // only (1,1)
//! assert_eq!(m.sat_count(g, 2), 3);
//! ```

use std::collections::HashMap;

/// Index of a BDD node inside a [`Manager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ref(u32);

impl Ref {
    /// The constant-false terminal.
    pub const FALSE: Ref = Ref(0);
    /// The constant-true terminal.
    pub const TRUE: Ref = Ref(1);

    /// Whether this is a terminal node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: Ref,
    high: Ref,
}

/// A BDD manager: node storage, unique table, operation caches.
///
/// Variables are identified by `u32` indices; the variable order is the
/// numeric order (lower index = closer to the root).
#[derive(Debug, Default)]
pub struct Manager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    /// Soft node-allocation ceiling (see [`Manager::set_node_budget`]).
    /// `None` means unbounded — the default.
    node_budget: Option<usize>,
}

impl Manager {
    /// Creates a manager containing only the two terminals.
    pub fn new() -> Self {
        let mut m = Manager::default();
        // Terminals occupy slots 0 and 1 with a sentinel variable index.
        m.nodes.push(Node {
            var: u32::MAX,
            low: Ref::FALSE,
            high: Ref::FALSE,
        });
        m.nodes.push(Node {
            var: u32::MAX,
            low: Ref::TRUE,
            high: Ref::TRUE,
        });
        m
    }

    /// Number of allocated nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Installs a *soft* node-allocation ceiling: once [`Manager::node_count`]
    /// reaches `budget`, [`Manager::node_budget_exhausted`] turns true.
    /// Operations are never interrupted mid-way (a half-built BDD would be
    /// unusable); instead, effort-bounded clients (the `mc::reach` engine)
    /// poll the flag between operations and abandon the computation with a
    /// deterministic `Unknown(BudgetExhausted)` verdict. The ceiling counts
    /// allocated nodes — a machine-independent progress axis — so
    /// exhaustion is bit-reproducible, unlike wall-clock limits.
    pub fn set_node_budget(&mut self, budget: Option<usize>) {
        self.node_budget = budget;
    }

    /// Whether the node budget (if any) has been reached.
    pub fn node_budget_exhausted(&self) -> bool {
        self.node_budget
            .is_some_and(|budget| self.nodes.len() >= budget)
    }

    /// The BDD for the single variable `v`.
    pub fn var(&mut self, v: u32) -> Ref {
        self.mk(v, Ref::FALSE, Ref::TRUE)
    }

    /// The BDD for the negation of variable `v`.
    pub fn nvar(&mut self, v: u32) -> Ref {
        self.mk(v, Ref::TRUE, Ref::FALSE)
    }

    /// The constant BDD for `value`.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::TRUE
        } else {
            Ref::FALSE
        }
    }

    fn mk(&mut self, var: u32, low: Ref, high: Ref) -> Ref {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn top_var(&self, r: Ref) -> u32 {
        self.nodes[r.0 as usize].var
    }

    fn cofactors(&self, r: Ref, var: u32) -> (Ref, Ref) {
        let node = self.nodes[r.0 as usize];
        if r.is_const() || node.var != var {
            (r, r)
        } else {
            (node.low, node.high)
        }
    }

    /// If-then-else: the core ROBDD operator.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal cases.
        if f == Ref::TRUE {
            return g;
        }
        if f == Ref::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top = [f, g, h]
            .iter()
            .filter(|r| !r.is_const())
            .map(|&r| self.top_var(r))
            .min()
            .expect("at least one non-terminal");
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let r = self.mk(top, low, high);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Negation.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, Ref::FALSE, Ref::TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::TRUE)
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Checks `f → g` is a tautology without building the implication BDD
    /// for the caller.
    pub fn implies_check(&mut self, f: Ref, g: Ref) -> bool {
        self.implies(f, g) == Ref::TRUE
    }

    /// Existential quantification of one variable.
    pub fn exists(&mut self, f: Ref, var: u32) -> Ref {
        let (f0, f1) = self.restrict_pair(f, var);
        self.or(f0, f1)
    }

    /// Universal quantification of one variable.
    pub fn forall(&mut self, f: Ref, var: u32) -> Ref {
        let (f0, f1) = self.restrict_pair(f, var);
        self.and(f0, f1)
    }

    /// Existential quantification of a set of variables.
    pub fn exists_many(&mut self, mut f: Ref, vars: &[u32]) -> Ref {
        for &v in vars {
            f = self.exists(f, v);
        }
        f
    }

    fn restrict_pair(&mut self, f: Ref, var: u32) -> (Ref, Ref) {
        (self.restrict(f, var, false), self.restrict(f, var, true))
    }

    /// Cofactor: `f` with `var` fixed to `value`.
    pub fn restrict(&mut self, f: Ref, var: u32, value: bool) -> Ref {
        if f.is_const() {
            return f;
        }
        let node = self.nodes[f.0 as usize];
        if node.var > var {
            return f; // var does not appear (below in order)
        }
        if node.var == var {
            return if value { node.high } else { node.low };
        }
        let low = self.restrict(node.low, var, value);
        let high = self.restrict(node.high, var, value);
        self.mk(node.var, low, high)
    }

    /// Relational product: `∃ vars. f ∧ g`, the workhorse of symbolic image
    /// computation. (Computed pairwise; adequate for the model sizes in this
    /// reproduction.)
    pub fn and_exists(&mut self, f: Ref, g: Ref, vars: &[u32]) -> Ref {
        let conj = self.and(f, g);
        self.exists_many(conj, vars)
    }

    /// Renames variables according to `map` (pairs `(from, to)`).
    ///
    /// Used to swap current-state and next-state frames during reachability.
    /// The mapping must be order-compatible (it is, for the interleaved
    /// frame convention used by the `mc` crate, where `from`/`to` differ by
    /// a fixed offset of adjacent indices).
    pub fn rename(&mut self, f: Ref, map: &[(u32, u32)]) -> Ref {
        if f.is_const() {
            return f;
        }
        let node = self.nodes[f.0 as usize];
        let low = self.rename(node.low, map);
        let high = self.rename(node.high, map);
        let var = map
            .iter()
            .find(|(from, _)| *from == node.var)
            .map(|&(_, to)| to)
            .unwrap_or(node.var);
        // Rebuild via ite on the renamed variable to restore ordering.
        let v = self.var(var);
        self.ite(v, high, low)
    }

    /// Evaluates `f` under a total assignment (index = variable).
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let node = self.nodes[cur.0 as usize];
            cur = if assignment[node.var as usize] {
                node.high
            } else {
                node.low
            };
        }
        cur == Ref::TRUE
    }

    /// Number of satisfying assignments over `num_vars` variables
    /// (variables indexed `0..num_vars`).
    pub fn sat_count(&self, f: Ref, num_vars: u32) -> u64 {
        let mut memo: HashMap<Ref, f64> = HashMap::new();
        let frac = self.sat_fraction(f, &mut memo);
        (frac * 2f64.powi(num_vars as i32)).round() as u64
    }

    fn sat_fraction(&self, f: Ref, memo: &mut HashMap<Ref, f64>) -> f64 {
        if f == Ref::FALSE {
            return 0.0;
        }
        if f == Ref::TRUE {
            return 1.0;
        }
        if let Some(&v) = memo.get(&f) {
            return v;
        }
        let node = self.nodes[f.0 as usize];
        let v = 0.5 * self.sat_fraction(node.low, memo) + 0.5 * self.sat_fraction(node.high, memo);
        memo.insert(f, v);
        v
    }

    /// Extracts one satisfying assignment as `(var, value)` pairs, or `None`
    /// when `f` is unsatisfiable. Variables not mentioned are don't-cares.
    pub fn any_sat(&self, f: Ref) -> Option<Vec<(u32, bool)>> {
        if f == Ref::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_const() {
            let node = self.nodes[cur.0 as usize];
            if node.low != Ref::FALSE {
                path.push((node.var, false));
                cur = node.low;
            } else {
                path.push((node.var, true));
                cur = node.high;
            }
        }
        Some(path)
    }

    /// The set of variables `f` depends on, ascending.
    pub fn support(&self, f: Ref) -> Vec<u32> {
        let mut seen = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        let mut visited = std::collections::HashSet::new();
        while let Some(r) = stack.pop() {
            if r.is_const() || !visited.insert(r) {
                continue;
            }
            let node = self.nodes[r.0 as usize];
            seen.insert(node.var);
            stack.push(node.low);
            stack.push(node.high);
        }
        seen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_behave() {
        let mut m = Manager::new();
        assert_eq!(m.constant(true), Ref::TRUE);
        assert_eq!(m.constant(false), Ref::FALSE);
        let t = m.not(Ref::FALSE);
        assert_eq!(t, Ref::TRUE);
    }

    #[test]
    fn variables_are_hash_consed() {
        let mut m = Manager::new();
        let a1 = m.var(3);
        let a2 = m.var(3);
        assert_eq!(a1, a2);
        let n = m.node_count();
        let _a3 = m.var(3);
        assert_eq!(m.node_count(), n);
    }

    #[test]
    fn basic_laws() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        // Idempotence, complement, absorption.
        assert_eq!(m.and(x, x), x);
        assert_eq!(m.or(x, x), x);
        let nx = m.not(x);
        assert_eq!(m.and(x, nx), Ref::FALSE);
        assert_eq!(m.or(x, nx), Ref::TRUE);
        let xy = m.and(x, y);
        assert_eq!(m.or(x, xy), x);
        // De Morgan.
        let lhs = {
            let a = m.and(x, y);
            m.not(a)
        };
        let rhs = {
            let nx = m.not(x);
            let ny = m.not(y);
            m.or(nx, ny)
        };
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_matches_truth_table_for_random_exprs() {
        // Build f = (x0 ⊕ x1) ∨ (x2 ∧ ¬x0) and compare against direct eval.
        let mut m = Manager::new();
        let x0 = m.var(0);
        let x1 = m.var(1);
        let x2 = m.var(2);
        let a = m.xor(x0, x1);
        let nx0 = m.not(x0);
        let b = m.and(x2, nx0);
        let f = m.or(a, b);
        for bits in 0..8u32 {
            let asn = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expected = (asn[0] ^ asn[1]) || (asn[2] && !asn[0]);
            assert_eq!(m.eval(f, &asn), expected, "assignment {asn:?}");
        }
    }

    #[test]
    fn quantification() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        // ∃x. x∧y  =  y ;  ∀x. x∧y  =  false
        assert_eq!(m.exists(f, 0), y);
        assert_eq!(m.forall(f, 0), Ref::FALSE);
        let g = m.or(x, y);
        // ∀x. x∨y  =  y
        assert_eq!(m.forall(g, 0), y);
        // ∃ over both vars of something satisfiable = true.
        assert_eq!(m.exists_many(f, &[0, 1]), Ref::TRUE);
    }

    #[test]
    fn restrict_is_cofactor() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(x, y);
        let f_x1 = m.restrict(f, 0, true);
        let ny = m.not(y);
        assert_eq!(f_x1, ny);
        let f_x0 = m.restrict(f, 0, false);
        assert_eq!(f_x0, y);
    }

    #[test]
    fn sat_count_known_functions() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let f = m.and(x, y);
        assert_eq!(m.sat_count(f, 3), 2); // x∧y with z free
        let g = m.or(x, y);
        assert_eq!(m.sat_count(g, 2), 3);
        let xyz = m.and(f, z);
        assert_eq!(m.sat_count(xyz, 3), 1);
        assert_eq!(m.sat_count(Ref::TRUE, 4), 16);
        assert_eq!(m.sat_count(Ref::FALSE, 4), 0);
    }

    #[test]
    fn any_sat_finds_model() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let nx = m.not(x);
        let f = m.and(nx, y);
        let model = m.any_sat(f).expect("satisfiable");
        let mut asn = [false; 2];
        for (v, b) in model {
            asn[v as usize] = b;
        }
        assert!(m.eval(f, &asn));
        assert!(m.any_sat(Ref::FALSE).is_none());
    }

    #[test]
    fn rename_swaps_frames() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(2);
        let f = m.and(x, y);
        // Rename 0→1, 2→3.
        let g = m.rename(f, &[(0, 1), (2, 3)]);
        let x1 = m.var(1);
        let y1 = m.var(3);
        let expected = m.and(x1, y1);
        assert_eq!(g, expected);
    }

    #[test]
    fn and_exists_is_relational_product() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        // ∃x. (x ∨ y) ∧ (¬x ∨ y)  =  y
        let a = m.or(x, y);
        let nx = m.not(x);
        let b = m.or(nx, y);
        let r = m.and_exists(a, b, &[0]);
        assert_eq!(r, y);
    }

    #[test]
    fn support_lists_dependencies() {
        let mut m = Manager::new();
        let x = m.var(0);
        let z = m.var(5);
        let f = m.and(x, z);
        assert_eq!(m.support(f), vec![0, 5]);
        assert!(m.support(Ref::TRUE).is_empty());
    }

    #[test]
    fn node_budget_is_a_soft_polled_ceiling() {
        let mut m = Manager::new();
        assert!(!m.node_budget_exhausted()); // unbounded by default
        m.set_node_budget(Some(4));
        assert!(!m.node_budget_exhausted()); // only the two terminals yet
        let x = m.var(0);
        let y = m.var(1);
        assert!(m.node_count() >= 4);
        assert!(m.node_budget_exhausted());
        // Soft: operations past the ceiling still complete correctly.
        let f = m.and(x, y);
        assert_eq!(m.sat_count(f, 2), 1);
        m.set_node_budget(None);
        assert!(!m.node_budget_exhausted());
    }
}
