//! Versioned on-disk persistence under `target/symbad-cache/`.
//!
//! Two hand-rolled JSON files, mirroring the `telemetry` crate's
//! zero-dependency writer, plus the minimal parser needed to read them
//! back: `obligations-v1.json` (verdict payloads) and `lemmas-v1.json`
//! (the lemma pool's learnt clauses, stored as arrays of unsigned packed
//! literal codes — see [`sat::Lit::code`]). Entries are written sorted
//! by fingerprint, so both files are byte-deterministic for a given
//! cache content. Anything unreadable — missing file, wrong version,
//! malformed JSON, out-of-range literal codes — loads as empty:
//! persistence can make reruns faster, never wrong.

use crate::{Fingerprint, ObligationCache};
use sat::Lit;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Bump when the payload encodings or fingerprint recipe change: old
/// files then load as empty instead of resurrecting stale verdicts.
pub const FORMAT_VERSION: u64 = 1;

const FILE_NAME: &str = "obligations-v1.json";
const FORMAT_TAG: &str = "symbad-obligation-cache";

const LEMMA_FILE_NAME: &str = "lemmas-v1.json";
const LEMMA_FORMAT_TAG: &str = "symbad-lemma-pool";
/// Upper bound accepted for a persisted literal code (2 × 16M
/// variables): a corrupted or hand-edited lemma file cannot make the
/// loader build absurd clauses. (Imports are additionally range-checked
/// against the importing solver's variable count.)
const MAX_LIT_CODE: u64 = 1 << 25;

impl ObligationCache {
    /// Serialises every entry to `<dir>/obligations-v1.json`, creating
    /// `dir` if needed. Disabled caches write nothing.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (directory creation, file write).
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        if !self.is_enabled() {
            return Ok(());
        }
        fs::create_dir_all(dir)?;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"format\": \"{FORMAT_TAG}\",");
        let _ = writeln!(out, "  \"version\": {FORMAT_VERSION},");
        let _ = write!(out, "  \"entries\": [");
        let entries = self.entries_sorted();
        for (i, (fp, payload)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{ \"fp\": \"{}\", \"payload\": ", fp.to_hex());
            write_json_string(&mut out, payload);
            out.push_str(" }");
        }
        if !entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        // Write-then-rename so a reader (or a crash) never sees a
        // truncated file — load_or_empty would treat it as a cold start.
        let tmp = dir.join(format!("{FILE_NAME}.tmp"));
        fs::write(&tmp, out)?;
        fs::rename(tmp, dir.join(FILE_NAME))?;
        self.save_lemmas(dir)
    }

    /// Serialises the lemma pool to `<dir>/lemmas-v1.json` (clauses as
    /// arrays of unsigned packed literal codes, entries sorted by
    /// fingerprint — byte-deterministic like the verdict file).
    fn save_lemmas(&self, dir: &Path) -> io::Result<()> {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"format\": \"{LEMMA_FORMAT_TAG}\",");
        let _ = writeln!(out, "  \"version\": {FORMAT_VERSION},");
        let _ = write!(out, "  \"entries\": [");
        let entries = self.lemmas().entries_sorted();
        for (i, (fp, clauses)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{ \"fp\": \"{}\", \"clauses\": [", fp.to_hex());
            for (j, clause) in clauses.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                for (k, lit) in clause.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}", lit.code());
                }
                out.push(']');
            }
            out.push_str("] }");
        }
        if !entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        let tmp = dir.join(format!("{LEMMA_FILE_NAME}.tmp"));
        fs::write(&tmp, out)?;
        fs::rename(tmp, dir.join(LEMMA_FILE_NAME))
    }

    /// Loads the cache persisted in `dir`, or an empty cache when there
    /// is none (first run), the version does not match, or the file is
    /// malformed — a cold start is always a safe answer.
    pub fn load_or_empty(dir: &Path) -> ObligationCache {
        let cache = ObligationCache::new();
        let Ok(text) = fs::read_to_string(dir.join(FILE_NAME)) else {
            return cache;
        };
        let Some(Value::Obj(members)) = Parser::new(&text).parse() else {
            return cache;
        };
        let field = |name: &str| members.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        if field("format") != Some(&Value::Str(FORMAT_TAG.to_owned()))
            || field("version") != Some(&Value::Num(FORMAT_VERSION))
        {
            return cache;
        }
        let Some(Value::Arr(entries)) = field("entries") else {
            return cache;
        };
        for entry in entries {
            let Value::Obj(fields) = entry else { continue };
            let get = |name: &str| {
                fields.iter().find_map(|(k, v)| match v {
                    Value::Str(s) if k == name => Some(s.as_str()),
                    _ => None,
                })
            };
            if let (Some(fp), Some(payload)) = (get("fp"), get("payload")) {
                if let Some(fp) = Fingerprint::from_hex(fp) {
                    cache.insert(fp, payload.to_owned());
                }
            }
        }
        cache.load_lemmas(dir);
        cache
    }

    /// Loads `<dir>/lemmas-v1.json` into the lemma pool. Any departure
    /// from the expected shape — wrong tag/version, malformed JSON,
    /// non-numeric or out-of-range literal codes — drops the offending
    /// entry or the whole file: a cold pool is always a safe answer.
    fn load_lemmas(&self, dir: &Path) {
        let Ok(text) = fs::read_to_string(dir.join(LEMMA_FILE_NAME)) else {
            return;
        };
        let Some(Value::Obj(members)) = Parser::new(&text).parse() else {
            return;
        };
        let field = |name: &str| members.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        if field("format") != Some(&Value::Str(LEMMA_FORMAT_TAG.to_owned()))
            || field("version") != Some(&Value::Num(FORMAT_VERSION))
        {
            return;
        }
        let Some(Value::Arr(entries)) = field("entries") else {
            return;
        };
        for entry in entries {
            let Value::Obj(fields) = entry else { continue };
            let fp = fields.iter().find_map(|(k, v)| match v {
                Value::Str(s) if k == "fp" => Fingerprint::from_hex(s),
                _ => None,
            });
            let clause_values = fields.iter().find_map(|(k, v)| match v {
                Value::Arr(cs) if k == "clauses" => Some(cs),
                _ => None,
            });
            let (Some(fp), Some(clause_values)) = (fp, clause_values) else {
                continue;
            };
            let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(clause_values.len());
            let mut well_formed = true;
            'clauses: for clause_value in clause_values {
                let Value::Arr(codes) = clause_value else {
                    well_formed = false;
                    break;
                };
                let mut clause = Vec::with_capacity(codes.len());
                for code in codes {
                    match code {
                        Value::Num(n) if *n < MAX_LIT_CODE => {
                            clause.push(Lit::from_code(*n as usize));
                        }
                        _ => {
                            well_formed = false;
                            break 'clauses;
                        }
                    }
                }
                clauses.push(clause);
            }
            if well_formed {
                self.lemmas().insert(fp, &clauses);
            }
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The JSON subset the loader understands: objects, arrays, strings with
/// the escapes the writer emits, unsigned integers, `true`/`false`/`null`.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(u64),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
    Bool(bool),
    Null,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Option<Value> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos)? {
            b'"' => self.string().map(Value::Str),
            b'{' => self.object(),
            b'[' => self.array(),
            b'0'..=b'9' => self.number(),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => None,
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Option<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Some(value)
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
            .map(Value::Num)
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match *self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match *self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                b => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let len = utf8_len(b)?;
                    let slice = self.bytes.get(self.pos..self.pos + len)?;
                    out.push_str(std::str::from_utf8(slice).ok()?);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Option<Value> {
        if !self.eat(b'[') {
            return None;
        }
        let mut items = Vec::new();
        if self.eat(b']') {
            return Some(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            if self.eat(b']') {
                return Some(Value::Arr(items));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }

    fn object(&mut self) -> Option<Value> {
        if !self.eat(b'{') {
            return None;
        }
        let mut members = Vec::new();
        if self.eat(b'}') {
            return Some(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if !self.eat(b':') {
                return None;
            }
            members.push((key, self.value()?));
            if self.eat(b'}') {
                return Some(Value::Obj(members));
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FingerprintBuilder;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("symbad-cache-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips_entries() {
        let dir = tmp_dir("roundtrip");
        let c = ObligationCache::new();
        for i in 0..20u64 {
            let fp = FingerprintBuilder::new("t").param(i).finish();
            c.insert(fp, format!("payload \"{i}\"\nline2\ttab"));
        }
        c.save(&dir).expect("save");
        let loaded = ObligationCache::load_or_empty(&dir);
        assert_eq!(loaded.entries_sorted(), c.entries_sorted());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_is_byte_deterministic() {
        let dir_a = tmp_dir("det-a");
        let dir_b = tmp_dir("det-b");
        for dir in [&dir_a, &dir_b] {
            let c = ObligationCache::new();
            // Insertion order differs; the files must not.
            let range: Vec<u64> = if dir == &dir_a {
                (0..10).collect()
            } else {
                (0..10).rev().collect()
            };
            for i in range {
                c.insert(FingerprintBuilder::new("t").param(i).finish(), "P".into());
            }
            c.save(dir).expect("save");
        }
        let a = fs::read(dir_a.join(FILE_NAME)).unwrap();
        let b = fs::read(dir_b.join(FILE_NAME)).unwrap();
        assert_eq!(a, b);
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn missing_or_malformed_files_load_empty() {
        let dir = tmp_dir("missing");
        assert!(ObligationCache::load_or_empty(&dir).is_empty());
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(FILE_NAME), "{ not json").unwrap();
        assert!(ObligationCache::load_or_empty(&dir).is_empty());
        // Wrong version: also empty.
        fs::write(
            dir.join(FILE_NAME),
            format!("{{\"format\": \"{FORMAT_TAG}\", \"version\": 999, \"entries\": []}}"),
        )
        .unwrap();
        assert!(ObligationCache::load_or_empty(&dir).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_cache_saves_and_loads() {
        let dir = tmp_dir("empty");
        let c = ObligationCache::new();
        c.save(&dir).expect("save");
        assert!(ObligationCache::load_or_empty(&dir).is_empty());
        assert!(ObligationCache::load_or_empty(&dir).lemmas().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    fn lit(code: usize) -> Lit {
        Lit::from_code(code)
    }

    #[test]
    fn lemma_pool_round_trips() {
        let dir = tmp_dir("lemmas-roundtrip");
        let c = ObligationCache::new();
        for i in 0..8u64 {
            let fp = FingerprintBuilder::new("t").param(i).finish();
            c.lemmas().insert(
                fp,
                &[vec![lit(2), lit(5)], vec![lit(7)], vec![lit(1), lit(9)]],
            );
        }
        c.save(&dir).expect("save");
        let loaded = ObligationCache::load_or_empty(&dir);
        assert_eq!(
            loaded.lemmas().entries_sorted(),
            c.lemmas().entries_sorted()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lemma_file_is_byte_deterministic() {
        let dir_a = tmp_dir("lemmas-det-a");
        let dir_b = tmp_dir("lemmas-det-b");
        for dir in [&dir_a, &dir_b] {
            let c = ObligationCache::new();
            let range: Vec<u64> = if dir == &dir_a {
                (0..10).collect()
            } else {
                (0..10).rev().collect()
            };
            for i in range {
                let fp = FingerprintBuilder::new("t").param(i).finish();
                // Clause order differs too; the normal form must not.
                c.lemmas().insert(fp, &[vec![lit(4), lit(2)], vec![lit(8)]]);
                c.lemmas().insert(fp, &[vec![lit(2), lit(4)]]);
            }
            c.save(dir).expect("save");
        }
        let a = fs::read(dir_a.join(LEMMA_FILE_NAME)).unwrap();
        let b = fs::read(dir_b.join(LEMMA_FILE_NAME)).unwrap();
        assert_eq!(a, b);
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn corrupted_lemma_file_loads_an_empty_pool() {
        let dir = tmp_dir("lemmas-corrupt");
        let c = ObligationCache::new();
        c.insert(FingerprintBuilder::new("t").param(1).finish(), "t".into());
        c.save(&dir).expect("save");
        for garbage in [
            "{ not json",
            "",
            "\u{0}\u{1}<<<not json>>>",
            // Wrong tag and wrong version.
            &format!("{{\"format\": \"something-else\", \"version\": {FORMAT_VERSION}, \"entries\": []}}"),
            &format!("{{\"format\": \"{LEMMA_FORMAT_TAG}\", \"version\": 999, \"entries\": []}}"),
            // Right envelope, garbage clause payloads (string literal,
            // negative-looking code, oversized code).
            &format!(
                "{{\"format\": \"{LEMMA_FORMAT_TAG}\", \"version\": {FORMAT_VERSION}, \"entries\": [{{ \"fp\": \"{}\", \"clauses\": [[\"x\"]] }}] }}",
                FingerprintBuilder::new("t").param(1).finish().to_hex()
            ),
            &format!(
                "{{\"format\": \"{LEMMA_FORMAT_TAG}\", \"version\": {FORMAT_VERSION}, \"entries\": [{{ \"fp\": \"{}\", \"clauses\": [[99999999999]] }}] }}",
                FingerprintBuilder::new("t").param(1).finish().to_hex()
            ),
        ] {
            fs::write(dir.join(LEMMA_FILE_NAME), garbage).unwrap();
            let loaded = ObligationCache::load_or_empty(&dir);
            // Verdict entries still load; the pool comes back empty.
            assert_eq!(loaded.len(), 1, "verdicts survive lemma corruption");
            assert!(
                loaded.lemmas().is_empty(),
                "corrupted lemma file must load empty: {garbage:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_lemma_file_loads_an_empty_pool() {
        let dir = tmp_dir("lemmas-torn");
        let c = ObligationCache::new();
        let fp = FingerprintBuilder::new("t").param(1).finish();
        c.lemmas().insert(fp, &[vec![lit(2), lit(5)], vec![lit(7)]]);
        c.save(&dir).expect("save");
        let full = fs::read_to_string(dir.join(LEMMA_FILE_NAME)).unwrap();
        for cut in [0, 1, full.len() / 4, full.len() / 2, full.len() - 3] {
            fs::write(dir.join(LEMMA_FILE_NAME), &full[..cut]).unwrap();
            assert!(
                ObligationCache::load_or_empty(&dir).lemmas().is_empty(),
                "cut at {cut} must load empty"
            );
        }
        // The intact file still round-trips after all that.
        fs::write(dir.join(LEMMA_FILE_NAME), &full).unwrap();
        assert_eq!(
            ObligationCache::load_or_empty(&dir)
                .lemmas()
                .entries_sorted(),
            c.lemmas().entries_sorted()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retained_lemmas_survive_without_verdicts() {
        let c = ObligationCache::new();
        let fp = FingerprintBuilder::new("t").param(1).finish();
        c.insert(fp, "t".into());
        c.lemmas().insert(fp, &[vec![lit(2), lit(5)]]);
        let warm_pool = c.retain_lemmas();
        assert!(warm_pool.is_empty(), "verdicts dropped");
        assert_eq!(
            warm_pool.lemmas().entries_sorted(),
            c.lemmas().entries_sorted()
        );
    }
}
