//! Cross-obligation lemma pool: learnt clauses keyed by CNF fingerprint.
//!
//! PR 4's [`crate::ObligationCache`] reuses *verdicts*: an obligation
//! whose fingerprint was already decided skips its solver entirely. The
//! [`LemmaPool`] extends that reuse to *lemma level*: when an obligation
//! does have to solve, the short/low-glue clauses its solver learns are
//! stored under the same 128-bit canonical-CNF fingerprint, and the next
//! solver over a fingerprint-identical formula imports them at decision
//! level 0 before searching.
//!
//! Soundness is inherited from the fingerprint: pool entries only ever
//! reach a solver whose canonicalised CNF (plus asserted root) is
//! byte-identical to the exporter's, and every stored clause is a learnt
//! clause of that CNF — i.e. entailed by it. Imports can therefore
//! change *effort* (fewer conflicts on a warm pool), never *answers*.
//!
//! Like the verdict store, the pool is lock-striped (16 shards on the
//! fingerprint's top bits) so parallel obligations populate it
//! concurrently, and it persists alongside the verdict file (see
//! `persist`) so warm process restarts keep their lemmas too.

use crate::fingerprint::Fingerprint;
use sat::Lit;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of lock stripes (same layout as the verdict store).
const SHARDS: usize = 16;

/// Hard cap on stored clauses per fingerprint. Inserts beyond the cap
/// keep the shortest clauses (ties broken lexicographically), which are
/// the cheapest to import and the strongest per literal.
pub const MAX_CLAUSES_PER_ENTRY: usize = 256;

/// Counter snapshot of a [`LemmaPool`] (see [`LemmaPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Lookups that found a non-empty clause list.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Insert calls that stored at least one new clause.
    pub inserts: u64,
    /// Distinct fingerprints currently in the pool.
    pub entries: u64,
    /// Total clauses currently stored across all entries.
    pub clauses: u64,
}

/// A sharded, content-addressed pool of learnt clauses. Disabled pools
/// (the [`crate::noop`] cache's) drop every insert and miss every
/// lookup without counting, keeping uncached paths byte-identical.
#[derive(Debug)]
pub struct LemmaPool {
    enabled: bool,
    shards: Vec<Mutex<HashMap<u128, Vec<Vec<Lit>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl LemmaPool {
    /// Creates an empty, enabled pool.
    pub fn new() -> Self {
        LemmaPool {
            enabled: true,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Creates a disabled pool (all operations are no-ops).
    pub fn disabled() -> Self {
        LemmaPool {
            enabled: false,
            ..LemmaPool::new()
        }
    }

    /// Whether this pool stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<HashMap<u128, Vec<Vec<Lit>>>> {
        &self.shards[((fp.0 >> 124) as usize) % SHARDS]
    }

    /// The clauses stored under `fp` (empty when absent). Counts a hit
    /// when non-empty, a miss otherwise.
    pub fn lookup(&self, fp: Fingerprint) -> Vec<Vec<Lit>> {
        if !self.enabled {
            return Vec::new();
        }
        let shard = self.shard(fp).lock().expect("lemma shard poisoned");
        match shard.get(&fp.0) {
            Some(clauses) if !clauses.is_empty() => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                clauses.clone()
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Merges `clauses` into the entry for `fp`: literals are sorted
    /// within each clause, duplicates (and empty clauses) dropped, and
    /// the merged list re-sorted by (length, literals) and truncated to
    /// [`MAX_CLAUSES_PER_ENTRY`] — a deterministic normal form for any
    /// given insert history.
    pub fn insert(&self, fp: Fingerprint, clauses: &[Vec<Lit>]) {
        if !self.enabled || clauses.is_empty() {
            return;
        }
        let mut incoming: Vec<Vec<Lit>> = clauses
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c.dedup();
                c
            })
            .collect();
        if incoming.is_empty() {
            return;
        }
        let mut shard = self.shard(fp).lock().expect("lemma shard poisoned");
        let entry = shard.entry(fp.0).or_default();
        let before = entry.len();
        entry.append(&mut incoming);
        entry.sort_unstable_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        entry.dedup();
        entry.truncate(MAX_CLAUSES_PER_ENTRY);
        if entry.len() != before {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counter snapshot plus current entry/clause totals.
    pub fn stats(&self) -> PoolStats {
        let (mut entries, mut clauses) = (0u64, 0u64);
        for shard in &self.shards {
            let shard = shard.lock().expect("lemma shard poisoned");
            entries += shard.len() as u64;
            clauses += shard.values().map(|v| v.len() as u64).sum::<u64>();
        }
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries,
            clauses,
        }
    }

    /// Distinct fingerprints stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lemma shard poisoned").len())
            .sum()
    }

    /// Whether the pool holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries sorted by fingerprint (clause lists are already in
    /// their deterministic normal form) — the persistence order.
    pub fn entries_sorted(&self) -> Vec<(Fingerprint, Vec<Vec<Lit>>)> {
        let mut all: Vec<(Fingerprint, Vec<Vec<Lit>>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("lemma shard poisoned");
            all.extend(
                shard
                    .iter()
                    .map(|(&fp, clauses)| (Fingerprint(fp), clauses.clone())),
            );
        }
        all.sort_unstable_by_key(|(fp, _)| fp.0);
        all
    }

    /// Copies every entry of `self` into `other` (used to carry lemmas
    /// into a fresh cache — see `ObligationCache::retain_lemmas`).
    pub(crate) fn copy_into(&self, other: &LemmaPool) {
        for (fp, clauses) in self.entries_sorted() {
            other.insert(fp, &clauses);
        }
    }
}

impl Default for LemmaPool {
    fn default() -> Self {
        LemmaPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintBuilder;
    use sat::Var;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_polarity(Var::from_index(i), pos)
    }

    fn fp(tag: &str) -> Fingerprint {
        FingerprintBuilder::new(tag).finish()
    }

    #[test]
    fn lookup_miss_then_hit() {
        let pool = LemmaPool::new();
        let f = fp("a");
        assert!(pool.lookup(f).is_empty());
        pool.insert(f, &[vec![lit(0, true), lit(1, false)]]);
        let got = pool.lookup(f);
        assert_eq!(got, vec![vec![lit(0, true), lit(1, false)]]);
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!((stats.entries, stats.clauses), (1, 1));
    }

    #[test]
    fn insert_normalises_and_dedups() {
        let pool = LemmaPool::new();
        let f = fp("a");
        pool.insert(f, &[vec![lit(1, false), lit(0, true)]]);
        pool.insert(f, &[vec![lit(0, true), lit(1, false)], vec![lit(2, true)]]);
        let got = pool.lookup(f);
        // Normal form: sorted by (len, lits); the duplicate collapsed.
        assert_eq!(
            got,
            vec![vec![lit(2, true)], vec![lit(0, true), lit(1, false)]]
        );
    }

    #[test]
    fn empty_clauses_are_dropped() {
        let pool = LemmaPool::new();
        let f = fp("a");
        pool.insert(f, &[Vec::new()]);
        assert!(pool.is_empty());
        assert!(pool.lookup(f).is_empty());
    }

    #[test]
    fn cap_keeps_the_shortest_clauses() {
        let pool = LemmaPool::new();
        let f = fp("a");
        // Insert MAX+10 distinct two-literal clauses and one unit.
        let mut clauses: Vec<Vec<Lit>> = (0..MAX_CLAUSES_PER_ENTRY + 10)
            .map(|i| vec![lit(i, true), lit(i + 1, false)])
            .collect();
        clauses.push(vec![lit(0, false)]);
        pool.insert(f, &clauses);
        let got = pool.lookup(f);
        assert_eq!(got.len(), MAX_CLAUSES_PER_ENTRY);
        // The unit survived the truncation (shortest first).
        assert_eq!(got[0], vec![lit(0, false)]);
    }

    #[test]
    fn disabled_pool_is_inert() {
        let pool = LemmaPool::disabled();
        let f = fp("a");
        pool.insert(f, &[vec![lit(0, true)]]);
        assert!(pool.lookup(f).is_empty());
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn entries_sort_by_fingerprint() {
        let pool = LemmaPool::new();
        for tag in ["a", "b", "c", "d"] {
            pool.insert(fp(tag), &[vec![lit(0, true)]]);
        }
        let entries = pool.entries_sorted();
        assert_eq!(entries.len(), 4);
        assert!(entries.windows(2).all(|w| w[0].0 .0 < w[1].0 .0));
    }

    #[test]
    fn copy_into_carries_everything() {
        let pool = LemmaPool::new();
        pool.insert(fp("a"), &[vec![lit(0, true)], vec![lit(1, false)]]);
        pool.insert(fp("b"), &[vec![lit(2, true)]]);
        let fresh = LemmaPool::new();
        pool.copy_into(&fresh);
        assert_eq!(fresh.entries_sorted(), pool.entries_sorted());
    }
}
