//! The in-memory obligation store: lock-striped, shared across worker
//! threads, with hit/miss accounting.

use crate::pool::LemmaPool;
use crate::Fingerprint;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards. Obligations hash uniformly
/// across shards, so contention between [`exec`-style] worker pools stays
/// negligible at the workspace's worker counts (≤ 16).
const SHARDS: usize = 16;

/// Cache traffic counters, snapshot by [`ObligationCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a payload.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Payloads stored (re-insertions under the same fingerprint count
    /// too, but do not grow `entries`).
    pub inserts: u64,
    /// Distinct fingerprints currently stored.
    pub entries: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-engine-tag traffic counters, snapshot by
/// [`ObligationCache::stats_by_tag`]. The tag is the engine label a
/// caller passes to [`ObligationCache::lookup_tagged`] — normally the
/// same string the engine feeds to `FingerprintBuilder::new`, so the
/// breakdown matches the fingerprint domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TagStats {
    /// Lookups under this tag that found a payload.
    pub hits: u64,
    /// Lookups under this tag that found nothing.
    pub misses: u64,
    /// Payloads stored under this tag.
    pub inserts: u64,
}

impl TagStats {
    /// Fraction of this tag's lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent map from obligation [`Fingerprint`]s to engine-encoded
/// verdict payloads.
///
/// Lookups and inserts take one shard lock each; the instance is shared
/// by reference across `exec::map` workers and SAT-portfolio winners.
/// A [`ObligationCache::disabled`] instance (see [`crate::noop`]) ignores
/// all traffic, keeping un-cached entry points byte-identical to the
/// pre-cache code paths.
#[derive(Debug)]
pub struct ObligationCache {
    enabled: bool,
    shards: Vec<Mutex<HashMap<u128, String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    /// Per-tag traffic. One coarse lock: tagged traffic is a few dozen
    /// probes per flow (the hot sharded path above is untouched), and the
    /// `BTreeMap` keeps [`ObligationCache::stats_by_tag`] deterministic.
    tags: Mutex<BTreeMap<String, TagStats>>,
    /// Fast gate for tenant attribution: `false` (the default) keeps
    /// every legacy code path at one relaxed atomic load of overhead.
    tenancy_on: AtomicBool,
    /// Tenant attribution state (service mode); see
    /// [`ObligationCache::set_tenant`].
    tenancy: Mutex<Tenancy>,
    /// Lemma-level reuse companion to the verdict entries: learnt
    /// clauses keyed by the same fingerprints (see [`crate::pool`]).
    /// Enabled exactly when the verdict store is, so the [`crate::noop`]
    /// cache's pool is inert too.
    lemmas: LemmaPool,
}

/// Per-tenant attribution state, active only while a batch service has
/// declared a current tenant via [`ObligationCache::set_tenant`].
#[derive(Debug, Default)]
struct Tenancy {
    /// Tenant charged for current traffic (`None` = unattributed).
    current: Option<String>,
    /// Per-tenant traffic, keyed by tenant label.
    traffic: BTreeMap<String, TagStats>,
    /// Hits on entries first inserted by a *different* tenant — the
    /// cross-tenant sharing the content-addressed fingerprints make
    /// sound, counted per benefiting tenant.
    cross_hits: BTreeMap<String, u64>,
    /// First inserting tenant per fingerprint (first writer wins;
    /// concurrent writers within one job share one tenant, and equal
    /// fingerprints carry equal payloads anyway).
    owners: HashMap<u128, String>,
}

impl Default for ObligationCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ObligationCache {
    /// An empty, enabled cache.
    pub fn new() -> Self {
        ObligationCache {
            enabled: true,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            tags: Mutex::new(BTreeMap::new()),
            tenancy_on: AtomicBool::new(false),
            tenancy: Mutex::new(Tenancy::default()),
            lemmas: LemmaPool::new(),
        }
    }

    /// A cache that ignores all traffic (see [`crate::noop`]).
    pub fn disabled() -> Self {
        ObligationCache {
            enabled: false,
            lemmas: LemmaPool::disabled(),
            ..ObligationCache::new()
        }
    }

    /// The lemma pool riding alongside the verdict entries — learnt
    /// clauses keyed by the same obligation fingerprints, enabled (and
    /// persisted) together with them.
    pub fn lemmas(&self) -> &LemmaPool {
        &self.lemmas
    }

    /// A fresh, enabled cache holding *only* this cache's lemma pool —
    /// no verdicts, no counters. This is the "warm pool, cold verdicts"
    /// configuration the BENCH warm-pool run and the equivalence tests
    /// use to isolate lemma-level reuse from verdict-level reuse.
    pub fn retain_lemmas(&self) -> ObligationCache {
        let fresh = ObligationCache::new();
        self.lemmas.copy_into(&fresh.lemmas);
        fresh
    }

    /// Whether lookups/inserts are live (false only for [`crate::noop`]).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<HashMap<u128, String>> {
        // High bits select the shard; the full value keys the map.
        &self.shards[(fp.0 >> 124) as usize % SHARDS]
    }

    /// Returns the payload stored for `fp`, counting a hit or miss.
    /// Disabled caches always return `None` without counting.
    pub fn lookup(&self, fp: Fingerprint) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let found = self.shard(fp).lock().unwrap().get(&fp.0).cloned();
        if self.tenancy_on.load(Ordering::Relaxed) {
            self.attribute_lookup(fp, found.is_some());
        }
        match found {
            Some(p) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `payload` under `fp` (last writer wins — callers only ever
    /// race identical payloads, since equal fingerprints mean equal
    /// obligations decided by a deterministic engine).
    pub fn insert(&self, fp: Fingerprint, payload: String) {
        if !self.enabled {
            return;
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.shard(fp).lock().unwrap().insert(fp.0, payload);
        if self.tenancy_on.load(Ordering::Relaxed) {
            self.attribute_insert(fp);
        }
    }

    /// [`ObligationCache::lookup`] that also attributes the probe to an
    /// engine `tag` for the per-engine breakdown. Disabled caches return
    /// `None` without counting, exactly like the untagged path.
    pub fn lookup_tagged(&self, tag: &str, fp: Fingerprint) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let found = self.lookup(fp);
        let mut tags = self.tags.lock().unwrap_or_else(|p| p.into_inner());
        let t = tags.entry(tag.to_owned()).or_default();
        if found.is_some() {
            t.hits += 1;
        } else {
            t.misses += 1;
        }
        found
    }

    /// [`ObligationCache::insert`] that also attributes the store to an
    /// engine `tag`.
    pub fn insert_tagged(&self, tag: &str, fp: Fingerprint, payload: String) {
        if !self.enabled {
            return;
        }
        self.insert(fp, payload);
        let mut tags = self.tags.lock().unwrap_or_else(|p| p.into_inner());
        tags.entry(tag.to_owned()).or_default().inserts += 1;
    }

    /// Per-tag traffic snapshot, sorted by tag name (deterministic).
    /// Only traffic routed through the `_tagged` entry points appears.
    pub fn stats_by_tag(&self) -> Vec<(String, TagStats)> {
        let tags = self.tags.lock().unwrap_or_else(|p| p.into_inner());
        tags.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Declares the tenant to charge for subsequent traffic (`None`
    /// stops attribution). A batch service brackets each job with
    /// `set_tenant(Some(label))` / `set_tenant(None)` from its
    /// coordinator thread; the job's worker threads then share the label
    /// because they all run inside the bracket. With no tenant declared
    /// (the default), every legacy path pays one relaxed atomic load and
    /// nothing else — the accumulated per-tenant breakdown is untouched.
    /// No-op on disabled caches, which stay observationally inert.
    pub fn set_tenant(&self, tenant: Option<&str>) {
        if !self.enabled {
            return;
        }
        let mut t = self.tenancy.lock().unwrap_or_else(|p| p.into_inner());
        t.current = tenant.map(str::to_owned);
        self.tenancy_on
            .store(t.current.is_some(), Ordering::Relaxed);
    }

    /// Per-tenant traffic snapshot, sorted by tenant label
    /// (deterministic). Only traffic that ran inside a
    /// [`ObligationCache::set_tenant`] bracket appears.
    pub fn stats_by_tenant(&self) -> Vec<(String, TagStats)> {
        let t = self.tenancy.lock().unwrap_or_else(|p| p.into_inner());
        t.traffic.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Cross-tenant sharing snapshot, sorted by tenant label: for each
    /// tenant, how many of its hits were served by entries another
    /// tenant inserted first. Tenants whose hits were all self-inserted
    /// do not appear.
    pub fn cross_tenant_hits(&self) -> Vec<(String, u64)> {
        let t = self.tenancy.lock().unwrap_or_else(|p| p.into_inner());
        t.cross_hits.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Charges one lookup to the current tenant (and, on a hit against
    /// another tenant's entry, counts the cross-tenant share).
    fn attribute_lookup(&self, fp: Fingerprint, hit: bool) {
        let mut t = self.tenancy.lock().unwrap_or_else(|p| p.into_inner());
        let Some(cur) = t.current.clone() else { return };
        let stats = t.traffic.entry(cur.clone()).or_default();
        if hit {
            stats.hits += 1;
            if t.owners.get(&fp.0).is_some_and(|owner| *owner != cur) {
                *t.cross_hits.entry(cur).or_insert(0) += 1;
            }
        } else {
            stats.misses += 1;
        }
    }

    /// Charges one insert to the current tenant and records it as the
    /// entry's owner if the fingerprint is new.
    fn attribute_insert(&self, fp: Fingerprint) {
        let mut t = self.tenancy.lock().unwrap_or_else(|p| p.into_inner());
        let Some(cur) = t.current.clone() else { return };
        t.traffic.entry(cur.clone()).or_default().inserts += 1;
        t.owners.entry(fp.0).or_insert(cur);
    }

    /// Number of distinct entries stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the traffic counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// All entries as `(fingerprint, payload)` pairs, sorted by
    /// fingerprint — the deterministic order used by persistence.
    pub fn entries_sorted(&self) -> Vec<(Fingerprint, String)> {
        let mut out: Vec<(Fingerprint, String)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for (&fp, payload) in shard.lock().unwrap().iter() {
                out.push((Fingerprint(fp), payload.clone()));
            }
        }
        out.sort_unstable_by_key(|(fp, _)| *fp);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FingerprintBuilder;

    fn fp(i: u64) -> Fingerprint {
        FingerprintBuilder::new("t").param(i).finish()
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let c = ObligationCache::new();
        assert_eq!(c.lookup(fp(1)), None);
        c.insert(fp(1), "P".into());
        assert_eq!(c.lookup(fp(1)), Some("P".into()));
        assert_eq!(c.lookup(fp(2)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 2, 1, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn entries_sorted_is_deterministic() {
        let c = ObligationCache::new();
        for i in (0..50).rev() {
            c.insert(fp(i), format!("v{i}"));
        }
        let e = c.entries_sorted();
        assert_eq!(e.len(), 50);
        assert!(e.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn tagged_traffic_splits_by_engine() {
        let c = ObligationCache::new();
        assert_eq!(c.lookup_tagged("bmc", fp(1)), None);
        c.insert_tagged("bmc", fp(1), "V".into());
        assert_eq!(c.lookup_tagged("bmc", fp(1)), Some("V".into()));
        assert_eq!(c.lookup_tagged("reach", fp(2)), None);
        let by_tag = c.stats_by_tag();
        assert_eq!(by_tag.len(), 2);
        assert_eq!(by_tag[0].0, "bmc");
        assert_eq!(
            (by_tag[0].1.hits, by_tag[0].1.misses, by_tag[0].1.inserts),
            (1, 1, 1)
        );
        assert_eq!(by_tag[1].0, "reach");
        assert_eq!((by_tag[1].1.hits, by_tag[1].1.misses), (0, 1));
        assert_eq!(by_tag[0].1.hit_rate(), 0.5);
        assert_eq!(TagStats::default().hit_rate(), 0.0);
        // Tagged traffic still feeds the aggregate counters.
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
        // Disabled caches ignore tagged traffic entirely.
        let d = ObligationCache::disabled();
        assert_eq!(d.lookup_tagged("bmc", fp(1)), None);
        d.insert_tagged("bmc", fp(1), "V".into());
        assert!(d.stats_by_tag().is_empty());
    }

    #[test]
    fn tenant_attribution_counts_cross_tenant_hits() {
        let c = ObligationCache::new();
        // Unattributed traffic never appears in the tenant breakdown.
        c.insert(fp(0), "warm".into());
        assert_eq!(c.lookup(fp(0)), Some("warm".into()));
        assert!(c.stats_by_tenant().is_empty());

        c.set_tenant(Some("alpha"));
        assert_eq!(c.lookup(fp(1)), None);
        c.insert(fp(1), "V".into());
        assert_eq!(c.lookup(fp(1)), Some("V".into()));

        c.set_tenant(Some("beta"));
        // beta hits alpha's entry: a cross-tenant hit.
        assert_eq!(c.lookup(fp(1)), Some("V".into()));
        // beta hits its own entry: not cross-tenant.
        c.insert(fp(2), "W".into());
        assert_eq!(c.lookup(fp(2)), Some("W".into()));
        // beta hits the pre-tenancy entry: unowned, not cross-tenant.
        assert_eq!(c.lookup(fp(0)), Some("warm".into()));
        c.set_tenant(None);
        // Attribution off again: traffic no longer charged.
        assert_eq!(c.lookup(fp(1)), Some("V".into()));

        let by_tenant = c.stats_by_tenant();
        assert_eq!(by_tenant.len(), 2);
        assert_eq!(by_tenant[0].0, "alpha");
        assert_eq!(
            (
                by_tenant[0].1.hits,
                by_tenant[0].1.misses,
                by_tenant[0].1.inserts
            ),
            (1, 1, 1)
        );
        assert_eq!(by_tenant[1].0, "beta");
        assert_eq!(
            (
                by_tenant[1].1.hits,
                by_tenant[1].1.misses,
                by_tenant[1].1.inserts
            ),
            (3, 0, 1)
        );
        assert_eq!(c.cross_tenant_hits(), vec![("beta".to_owned(), 1)]);

        // Disabled caches ignore tenancy entirely.
        let d = ObligationCache::disabled();
        d.set_tenant(Some("alpha"));
        d.insert(fp(1), "V".into());
        assert_eq!(d.lookup(fp(1)), None);
        assert!(d.stats_by_tenant().is_empty());
        assert!(d.cross_tenant_hits().is_empty());
    }

    #[test]
    fn concurrent_traffic_is_safe_and_complete() {
        let c = ObligationCache::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..100 {
                        let k = fp(t * 1000 + i);
                        c.insert(k, "x".into());
                        assert_eq!(c.lookup(k), Some("x".into()));
                    }
                });
            }
        });
        assert_eq!(c.len(), 800);
        assert_eq!(c.stats().hits, 800);
    }
}
