//! Obligation fingerprints: 128-bit content hashes of (engine, formula,
//! parameters).

use sat::{Cnf, Lit};

/// FNV-1a offset bases for the two independent 64-bit lanes. The second
/// lane perturbs the offset so the lanes decorrelate; together they give
/// a 128-bit fingerprint, making accidental collisions across the few
/// thousand obligations of a flow run negligible.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_2: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 128-bit content address for one verification obligation.
///
/// Built by [`FingerprintBuilder`]; equal fingerprints mean the same
/// engine sees the same canonical formula and parameters, so the cached
/// verdict is interchangeable with a fresh run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Renders as 32 lowercase hex digits (the persisted key format).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`Fingerprint::to_hex`] rendering.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

/// Incremental fingerprint builder.
///
/// Feed the engine tag (at construction), the formula
/// ([`FingerprintBuilder::cnf`] canonicalises it), the interface literals
/// that anchor how the model is read back, and any engine parameters;
/// then [`FingerprintBuilder::finish`]. Input order matters — callers
/// must feed fields in a fixed order, which every engine in the workspace
/// does by construction.
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    h1: u64,
    h2: u64,
}

impl FingerprintBuilder {
    /// Starts a fingerprint for the given engine tag (e.g. `"bmc"`,
    /// `"level4.miter"`). Distinct engines never share entries even on
    /// identical formulas: their verdict encodings differ.
    pub fn new(engine: &str) -> Self {
        let mut b = FingerprintBuilder {
            h1: FNV_OFFSET,
            h2: FNV_OFFSET_2,
        };
        b.feed_str(engine);
        b
    }

    fn feed(&mut self, byte: u8) {
        self.h1 = (self.h1 ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        self.h2 = (self.h2 ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        // Decorrelate the lanes beyond the differing offsets.
        self.h2 = self.h2.rotate_left(1);
    }

    fn feed_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.feed(b);
        }
    }

    fn feed_str(&mut self, s: &str) {
        self.feed_u64(s.len() as u64);
        for b in s.bytes() {
            self.feed(b);
        }
    }

    /// Mixes in one numeric engine parameter (bound, k, mode tag, …).
    pub fn param(mut self, v: u64) -> Self {
        self.feed(0xB1);
        self.feed_u64(v);
        self
    }

    /// Mixes in a slice of numeric parameters (e.g. reset values).
    pub fn params(mut self, vs: &[u64]) -> Self {
        self.feed(0xA5);
        self.feed_u64(vs.len() as u64);
        for &v in vs {
            self.feed_u64(v);
        }
        self
    }

    /// Mixes in a string parameter (length-prefixed).
    pub fn text(mut self, s: &str) -> Self {
        self.feed(0x5A);
        self.feed_str(s);
        self
    }

    /// Mixes in interface literals verbatim (input/output/state vectors,
    /// property roots). These anchor how a cached model or trace is read
    /// back, and distinguish mutants whose stuck bits simplify to
    /// constants without adding clauses.
    pub fn lits(mut self, lits: &[Lit]) -> Self {
        self.feed(0x3C);
        self.feed_u64(lits.len() as u64);
        for &l in lits {
            self.feed_u64(l.code() as u64);
        }
        self
    }

    /// Mixes in a CNF in canonical form: literals sorted within each
    /// clause, clauses sorted lexicographically, so clause insertion
    /// order (which varies with structural-hash warm-up) cannot split
    /// semantically identical formulas into distinct entries.
    pub fn cnf(mut self, cnf: &Cnf) -> Self {
        let mut clauses: Vec<Vec<usize>> = cnf
            .clauses
            .iter()
            .map(|c| {
                let mut lits: Vec<usize> = c.iter().map(|l| l.code()).collect();
                lits.sort_unstable();
                lits
            })
            .collect();
        clauses.sort_unstable();
        self.feed(0xC7);
        self.feed_u64(cnf.num_vars as u64);
        self.feed_u64(clauses.len() as u64);
        for clause in &clauses {
            self.feed_u64(clause.len() as u64);
            for &code in clause {
                self.feed_u64(code as u64);
            }
        }
        self
    }

    /// Finalises the 128-bit fingerprint.
    pub fn finish(self) -> Fingerprint {
        Fingerprint((u128::from(self.h1) << 64) | u128::from(self.h2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::{Solver, Var};

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_polarity(Var::from_index(i), pos)
    }

    #[test]
    fn hex_round_trips() {
        let fp = FingerprintBuilder::new("e").param(7).finish();
        assert_eq!(Fingerprint::from_hex(&fp.to_hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
        assert_eq!(Fingerprint::from_hex(""), None);
    }

    #[test]
    fn engine_and_params_separate_entries() {
        let base = FingerprintBuilder::new("bmc").param(10).finish();
        assert_ne!(FingerprintBuilder::new("bmc").param(11).finish(), base);
        assert_ne!(FingerprintBuilder::new("ind").param(10).finish(), base);
        assert_eq!(FingerprintBuilder::new("bmc").param(10).finish(), base);
    }

    #[test]
    fn cnf_hash_is_order_invariant() {
        let c1 = Cnf {
            num_vars: 3,
            clauses: vec![vec![lit(0, true), lit(1, false)], vec![lit(2, true)]],
        };
        let c2 = Cnf {
            num_vars: 3,
            clauses: vec![vec![lit(2, true)], vec![lit(1, false), lit(0, true)]],
        };
        assert_eq!(
            FingerprintBuilder::new("e").cnf(&c1).finish(),
            FingerprintBuilder::new("e").cnf(&c2).finish()
        );
        // But a genuinely different formula separates.
        let c3 = Cnf {
            num_vars: 3,
            clauses: vec![vec![lit(2, false)], vec![lit(1, false), lit(0, true)]],
        };
        assert_ne!(
            FingerprintBuilder::new("e").cnf(&c1).finish(),
            FingerprintBuilder::new("e").cnf(&c3).finish()
        );
    }

    #[test]
    fn solver_export_fingerprints_deterministically() {
        let build = || {
            let mut s = Solver::new();
            let a = s.new_var();
            let b = s.new_var();
            s.add_clause([Lit::pos(a), Lit::pos(b)]);
            s.add_clause([Lit::neg(a)]);
            s.export_cnf()
        };
        assert_eq!(
            FingerprintBuilder::new("e").cnf(&build()).finish(),
            FingerprintBuilder::new("e").cnf(&build()).finish()
        );
    }

    #[test]
    fn interface_lits_distinguish_constant_folded_mutants() {
        // Same clause set, different output literal vector — the mutant
        // whose stuck bit folded to a constant.
        let cnf = Cnf {
            num_vars: 2,
            clauses: vec![vec![lit(0, true), lit(1, true)]],
        };
        let good = FingerprintBuilder::new("e")
            .cnf(&cnf)
            .lits(&[lit(0, true), lit(1, true)])
            .finish();
        let mutant = FingerprintBuilder::new("e")
            .cnf(&cnf)
            .lits(&[lit(0, true), lit(0, true)])
            .finish();
        assert_ne!(good, mutant);
    }
}
