//! Content-addressed verification-obligation cache.
//!
//! The Symbad flow discharges many near-identical SAT/BDD obligations:
//! every BMC property, every equivalence miter, every PCC fault mutant,
//! and every ATPG target builds a formula, solves it, and throws the
//! verdict away. This crate keeps those verdicts. An obligation is
//! *content-addressed*: its [`Fingerprint`] hashes the canonicalised CNF
//! (clause literals sorted, clauses sorted), the engine that will decide
//! it, and the engine parameters (bounds, init modes, reset values), so
//! two obligations share a cache entry exactly when the same engine would
//! see the same formula — in which case the verdicts are interchangeable
//! by construction.
//!
//! In the paper's terms this serves the level-4 "model checking and SAT
//! solving" stage and the PCC refinement loop (§3.4), where the extended
//! property set re-checks every mutant the initial set already visited:
//! the [`ObligationCache`] is shared across the per-config LP/ATPG/PCC
//! fan-out (lock-striped, so `exec::ExecMode::Parallel` workers and SAT
//! portfolio winners populate it concurrently) and persisted to
//! `target/symbad-cache/` as versioned, hand-rolled JSON (the build is
//! offline — no serde), so a warm rerun of `flow::run_full_flow` skips
//! already-proved obligations entirely.
//!
//! Payloads are plain strings encoded by the engine that owns the entry
//! (`mc` encodes verdicts and counterexample traces, `atpg` encodes test
//! vectors, `pcc`/`level4` booleans via [`encode_bool`]); a payload that
//! fails to decode is treated as a miss, never as an error.
//!
//! ```
//! use cache::{FingerprintBuilder, ObligationCache};
//!
//! let cache = ObligationCache::new();
//! let fp = FingerprintBuilder::new("demo").param(42).finish();
//! assert_eq!(cache.lookup(fp), None); // cold
//! cache.insert(fp, "t".to_owned());
//! assert_eq!(cache.lookup(fp), Some("t".to_owned())); // warm
//! assert_eq!(cache.stats().hits, 1);
//! ```

#![warn(missing_docs)]

mod fingerprint;
mod persist;
pub mod pool;
mod store;

pub use fingerprint::{Fingerprint, FingerprintBuilder};
pub use pool::{LemmaPool, PoolStats};
pub use store::{CacheStats, ObligationCache, TagStats};

use std::sync::OnceLock;

/// A process-wide disabled cache: every lookup misses (uncounted), every
/// insert is dropped. Entry points that do not thread an explicit cache
/// pass this, keeping their behaviour byte-identical to the pre-cache
/// code paths (mirrors `telemetry::noop`).
pub fn noop() -> &'static ObligationCache {
    static NOOP: OnceLock<ObligationCache> = OnceLock::new();
    NOOP.get_or_init(ObligationCache::disabled)
}

/// Encodes a boolean verdict payload (`"t"` / `"f"`).
pub fn encode_bool(value: bool) -> String {
    if value { "t" } else { "f" }.to_owned()
}

/// Decodes a boolean verdict payload; anything unrecognised is `None`
/// (treated by callers as a cache miss).
pub fn decode_bool(payload: &str) -> Option<bool> {
    match payload {
        "t" => Some(true),
        "f" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_cache_never_stores_and_never_counts() {
        let fp = FingerprintBuilder::new("x").finish();
        let c = noop();
        assert_eq!(c.lookup(fp), None);
        c.insert(fp, "t".into());
        assert_eq!(c.lookup(fp), None);
        let stats = c.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn bool_payloads_round_trip() {
        assert_eq!(decode_bool(&encode_bool(true)), Some(true));
        assert_eq!(decode_bool(&encode_bool(false)), Some(false));
        assert_eq!(decode_bool("garbage"), None);
    }
}
