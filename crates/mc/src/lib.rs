//! Model checking for level-4 RTL verification.
//!
//! The paper applies "model checking and SAT solving" (references
//! RuleBase/SMV) to the generated RTL and its HW/SW interfaces. This crate
//! provides the corresponding engines over the `hdl` netlist IR:
//!
//! * [`bmc`] — bounded model checking by SAT: time-frame unrolling through
//!   the shared `hdl::lower` bit-blaster, counterexample traces extracted
//!   from the model,
//! * [`induction`] — k-induction, turning bounded results into full safety
//!   proofs when the invariant is inductive,
//! * [`reach`] — exact symbolic reachability with BDDs (the "symbolic model
//!   checking" of reference \[8\]), used both as a proof engine and as a
//!   cross-check of the SAT path,
//! * [`monitor`] — compiles bounded-response properties into monitor
//!   automata + invariants, so the exact engines can decide them too,
//! * [`simcheck`] — deterministic random simulation, the cross-check the
//!   supervision layer routes budget-exhausted obligations to,
//! * [`prop`] — the property language: boolean formulas over named RTL
//!   outputs, with invariant (`G φ`) and bounded-response
//!   (`G (a → F≤k b)`) templates, plus concrete-trace evaluation reused by
//!   the property-coverage checker (`pcc`).
//!
//! # Example: prove a counter never exceeds its modulus
//!
//! ```
//! use behav::BinOp;
//! use hdl::Rtl;
//! use mc::prop::{BoolExpr, Property};
//! use mc::{reach, Verdict};
//!
//! // 3-bit counter that wraps at 5.
//! let mut rtl = Rtl::new("mod5");
//! let q = rtl.reg("q", 3, 0);
//! let one = rtl.constant(1, 3);
//! let four = rtl.constant(4, 3);
//! let zero = rtl.constant(0, 3);
//! let inc = rtl.binary(BinOp::Add, q, one);
//! let at_max = rtl.binary(BinOp::Eq, q, four);
//! let next = rtl.mux(at_max, zero, inc);
//! rtl.set_next(q, next);
//! rtl.output("q", q);
//!
//! let prop = Property::invariant("bounded", BoolExpr::le("q", 4));
//! assert_eq!(reach::check(&rtl, &prop), Verdict::Proven);
//! ```

#![warn(missing_docs)]

pub mod bmc;
mod cachefmt;
pub mod induction;
pub mod monitor;
pub mod obligation;
pub mod prop;
pub mod reach;
pub mod simcheck;
mod unrolling;

pub use prop::{Atom, BoolExpr, Cmp, Property};

/// A concrete counterexample: one frame per clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CexFrame {
    /// Primary input values for the cycle (in declaration order).
    pub inputs: Vec<u64>,
    /// Register state at the start of the cycle (in registration order).
    pub state: Vec<u64>,
    /// Output values during the cycle, `(name, value)`.
    pub outputs: Vec<(String, u64)>,
}

/// A counterexample trace from reset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CexTrace {
    /// Frames from cycle 0 (reset) to the violating cycle.
    pub frames: Vec<CexFrame>,
}

impl CexTrace {
    /// Number of cycles in the trace.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

impl std::fmt::Display for CexTrace {
    /// One line per cycle: inputs, register state, then outputs — the
    /// format verification engineers paste into bug reports.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.frames.is_empty() {
            return writeln!(f, "(no trace — violation reported symbolically)");
        }
        for (cycle, frame) in self.frames.iter().enumerate() {
            write!(
                f,
                "cycle {cycle}: in={:?} state={:?}",
                frame.inputs, frame.state
            )?;
            for (name, value) in &frame.outputs {
                write!(f, " {name}={value}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Outcome of a model-checking run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds on all reachable states (a full proof).
    Proven,
    /// No violation exists within the explored bound (BMC only — not a
    /// proof beyond the bound).
    NoViolationUpTo(u32),
    /// A violation was found; the trace witnesses it (BDD reachability
    /// reports violations without a trace, using an empty frame list).
    Violated(CexTrace),
    /// The engine could not decide; the reason says why.
    Unknown(UnknownReason),
}

/// Why an engine returned [`Verdict::Unknown`]. The distinction matters
/// for routing: a not-inductive invariant wants a different engine (or a
/// larger k), while an exhausted budget wants a retry with more effort or
/// a simulation cross-check (the supervision layer's fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownReason {
    /// The invariant is not k-inductive at the attempted depth — an
    /// intrinsic property of the query, independent of effort spent.
    NotInductive,
    /// A deterministic effort budget ([`exec::Effort`]) ran out before a
    /// verdict. Same query + same budget ⇒ same exhaustion point, so this
    /// outcome is bit-reproducible and safe to report in degraded
    /// `FlowReport`s. Never cached: a bigger budget may decide it.
    BudgetExhausted,
}

impl Verdict {
    /// Whether the property was fully proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, Verdict::Proven)
    }

    /// Whether a violation was found.
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// Whether the engine could not decide.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown(_))
    }

    /// Whether the engine gave up because an effort budget ran out.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, Verdict::Unknown(UnknownReason::BudgetExhausted))
    }
}
