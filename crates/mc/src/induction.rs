//! k-induction: full safety proofs from bounded reasoning.
//!
//! `G φ` is proven if (base) no violation exists within `k` cycles of
//! reset, and (step) any `k` consecutive φ-states are followed by another
//! φ-state. The step case starts from an unconstrained state, so failure of
//! the step is *not* a refutation — the verdict is then
//! [`Verdict::Unknown`] and a larger `k` (or the exact BDD engine) is
//! needed.

use crate::bmc;
use crate::prop::Property;
use crate::unrolling::{InitMode, Unroller};
use crate::Verdict;
use hdl::Rtl;

/// Attempts to prove the invariant `property` by k-induction.
///
/// # Panics
///
/// Panics if called with a response property (only invariants are
/// inductively checkable here; compile response properties to monitors
/// first).
pub fn check(rtl: &Rtl, property: &Property, k: u32) -> Verdict {
    let expr = match property {
        Property::Invariant { expr, .. } => expr,
        Property::Response { .. } => {
            panic!("k-induction expects an invariant property")
        }
    };

    assert!(k >= 1, "k-induction requires k >= 1");
    // Base case: no violation in the first k cycles from reset.
    match bmc::check(rtl, property, k - 1) {
        Verdict::Violated(trace) => return Verdict::Violated(trace),
        Verdict::NoViolationUpTo(_) => {}
        other => return other,
    }

    // Step case: φ(s_0) ∧ … ∧ φ(s_{k-1}) ∧ ¬φ(s_k) unsatisfiable?
    let mut unroller = Unroller::new(rtl, InitMode::Free);
    unroller.ensure_frames(k as usize);
    let mut assumptions = Vec::new();
    for i in 0..k as usize {
        let phi = unroller.compile_expr(expr, i);
        assumptions.push(phi);
    }
    let bad = unroller.compile_expr(expr, k as usize);
    assumptions.push(!bad);
    if unroller
        .ctx
        .builder_mut()
        .solve_with(&assumptions)
        .is_unsat()
    {
        Verdict::Proven
    } else {
        Verdict::Unknown
    }
}

/// Attempts each invariant as an independent k-induction obligation,
/// optionally across worker threads. Verdicts are bit-identical to
/// mapping [`check`] over the slice sequentially (each obligation builds
/// its own unroller and solver).
pub fn check_many(
    rtl: &Rtl,
    properties: &[Property],
    k: u32,
    mode: exec::ExecMode,
) -> Vec<Verdict> {
    let jobs: Vec<usize> = (0..properties.len()).collect();
    exec::map(mode, jobs, |_, pi| check(rtl, &properties[pi], k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::BoolExpr;
    use behav::BinOp;
    use hdl::Rtl;

    /// Counter that wraps at `modulus` (stays in 0..modulus).
    fn mod_counter(width: u32, modulus: u64) -> Rtl {
        let mut rtl = Rtl::new("modc");
        let q = rtl.reg("q", width, 0);
        let one = rtl.constant(1, width);
        let maxc = rtl.constant(modulus - 1, width);
        let zero = rtl.constant(0, width);
        let inc = rtl.binary(BinOp::Add, q, one);
        let at_max = rtl.binary(BinOp::Eq, q, maxc);
        let next = rtl.mux(at_max, zero, inc);
        rtl.set_next(q, next);
        rtl.output("q", q);
        rtl
    }

    #[test]
    fn inductive_invariant_is_proven() {
        // q < 5 is 1-inductive for the mod-5 counter.
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("lt5", BoolExpr::lt("q", 5));
        assert_eq!(check(&rtl, &p, 1), Verdict::Proven);
    }

    #[test]
    fn non_inductive_invariant_is_unknown_at_k1_but_proven_at_k2() {
        // q != 6 holds (6 unreachable) but is not 1-inductive: from the
        // unreachable state q=5 the next state is 6. It *is* 2-inductive
        // because q=5 itself has no predecessor.
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("ne6", BoolExpr::ne("q", 6));
        assert_eq!(check(&rtl, &p, 1), Verdict::Unknown);
        assert_eq!(check(&rtl, &p, 2), Verdict::Proven);
    }

    #[test]
    fn false_invariant_is_refuted_in_base_case() {
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("lt3", BoolExpr::lt("q", 3));
        assert!(check(&rtl, &p, 4).is_violated());
    }

    #[test]
    fn stronger_invariant_proves_at_higher_k_or_stays_unknown() {
        // With larger k the path constraint-free induction may still fail;
        // the verdict must never be wrong, only Unknown.
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("ne6", BoolExpr::ne("q", 6));
        for k in 1..=4 {
            let v = check(&rtl, &p, k);
            assert!(
                v == Verdict::Proven || v == Verdict::Unknown,
                "unsound verdict {v:?} at k={k}"
            );
        }
    }

    #[test]
    fn check_many_agrees_with_sequential() {
        let rtl = mod_counter(3, 5);
        let properties = vec![
            Property::invariant("lt5", BoolExpr::lt("q", 5)),
            Property::invariant("ne6", BoolExpr::ne("q", 6)),
            Property::invariant("lt3", BoolExpr::lt("q", 3)),
        ];
        let reference: Vec<Verdict> = properties.iter().map(|p| check(&rtl, p, 2)).collect();
        for mode in [
            exec::ExecMode::Sequential,
            exec::ExecMode::Parallel { workers: 2 },
            exec::ExecMode::Parallel { workers: 8 },
        ] {
            assert_eq!(check_many(&rtl, &properties, 2, mode), reference);
        }
    }

    #[test]
    #[should_panic(expected = "expects an invariant")]
    fn response_properties_are_rejected() {
        let rtl = mod_counter(3, 5);
        let p = Property::response("r", BoolExpr::Const(true), BoolExpr::Const(true), 1);
        let _ = check(&rtl, &p, 1);
    }
}
