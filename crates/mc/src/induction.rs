//! k-induction: full safety proofs from bounded reasoning.
//!
//! `G φ` is proven if (base) no violation exists within `k` cycles of
//! reset, and (step) any `k` consecutive φ-states are followed by another
//! φ-state. The step case starts from an unconstrained state, so failure of
//! the step is *not* a refutation — the verdict is then
//! [`Verdict::Unknown`] and a larger `k` (or the exact BDD engine) is
//! needed.

use crate::prop::Property;
use crate::unrolling::{InitMode, Unroller};
use crate::{UnknownReason, Verdict};
use hdl::Rtl;

/// Attempts to prove the invariant `property` by k-induction.
///
/// # Panics
///
/// Panics if called with a response property (only invariants are
/// inductively checkable here; compile response properties to monitors
/// first).
pub fn check(rtl: &Rtl, property: &Property, k: u32) -> Verdict {
    check_instrumented(rtl, property, k, &telemetry::noop())
}

/// [`check`] with telemetry: `induction.sat_calls`, one
/// `induction.solver_constructions` per obligation, and the underlying
/// SAT solver's per-call statistics.
///
/// Base and step cases share one solver over one `InitMode::Free`
/// unrolling: the base case pins frame 0 to the reset state with
/// assumption literals (see `Unroller::reset_assumptions`), the step case
/// drops them and assumes φ on frames `0..k` instead. The
/// transition-relation clauses — and every clause learnt from them while
/// discharging the base case — carry over to the step query, because
/// assumptions are scoped decisions and never contaminate the learnt
/// clause database.
///
/// # Panics
///
/// Panics if called with a response property or `k == 0`.
pub fn check_instrumented(
    rtl: &Rtl,
    property: &Property,
    k: u32,
    instrument: &telemetry::SharedInstrument,
) -> Verdict {
    check_effort(rtl, property, k, &exec::Effort::unbounded(), instrument)
}

/// The shared base/step body, with every SAT query routed through
/// [`sat::Solver::solve_budgeted`] under `effort`. An exhausted query
/// short-circuits the whole obligation to
/// [`Verdict::Unknown`]`(`[`UnknownReason::BudgetExhausted`]`)` — partial
/// base-case progress is not a verdict. With an unbounded effort this is
/// exactly the historical [`check_instrumented`] behaviour.
fn check_effort(
    rtl: &Rtl,
    property: &Property,
    k: u32,
    effort: &exec::Effort,
    instrument: &telemetry::SharedInstrument,
) -> Verdict {
    let expr = match property {
        Property::Invariant { expr, .. } => expr,
        Property::Response { .. } => {
            panic!("k-induction expects an invariant property")
        }
    };
    assert!(k >= 1, "k-induction requires k >= 1");

    instrument.counter_add("induction.solver_constructions", 1);
    let mut unroller = Unroller::new(rtl, InitMode::Free);
    if instrument.enabled() {
        unroller
            .ctx
            .builder_mut()
            .set_instrument(instrument.clone());
    }
    unroller.ensure_frames(k as usize);
    let phis: Vec<sat::Lit> = (0..=k as usize)
        .map(|i| unroller.compile_expr(expr, i))
        .collect();
    let reset = unroller.reset_assumptions();

    // Base case: no violation in the first k cycles from reset.
    for (d, &phi) in phis.iter().enumerate().take(k as usize) {
        let mut assumptions = reset.clone();
        assumptions.push(!phi);
        instrument.counter_add("induction.sat_calls", 1);
        match unroller
            .ctx
            .builder_mut()
            .solve_budgeted(&assumptions, effort)
            .decided()
        {
            None => return Verdict::Unknown(UnknownReason::BudgetExhausted),
            Some(r) if r.is_sat() => {
                let trace = unroller.extract_trace(d);
                return Verdict::Violated(trace);
            }
            Some(_) => {}
        }
    }

    // Step case: φ(s_0) ∧ … ∧ φ(s_{k-1}) ∧ ¬φ(s_k) unsatisfiable?
    let mut assumptions: Vec<sat::Lit> = phis[..k as usize].to_vec();
    assumptions.push(!phis[k as usize]);
    instrument.counter_add("induction.sat_calls", 1);
    match unroller
        .ctx
        .builder_mut()
        .solve_budgeted(&assumptions, effort)
        .decided()
    {
        None => Verdict::Unknown(UnknownReason::BudgetExhausted),
        Some(r) if r.is_unsat() => Verdict::Proven,
        Some(_) => Verdict::Unknown(UnknownReason::NotInductive),
    }
}

/// [`check_instrumented`] backed by the obligation cache (engine tag
/// `"induction"`, parameter `k`). A hit replays the stored verdict —
/// including a base-case counterexample trace — without constructing a
/// solver; [`cache::noop()`] short-circuits to the uncached path.
pub fn check_cached(
    rtl: &Rtl,
    property: &Property,
    k: u32,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Verdict {
    if !cache.is_enabled() {
        return check_instrumented(rtl, property, k, instrument);
    }
    let fp = crate::obligation::fingerprint("induction", rtl, property, &[u64::from(k)]);
    if let Some(payload) = cache.lookup_tagged("induction", fp) {
        if let Some(verdict) = crate::cachefmt::decode_verdict(rtl, &payload) {
            instrument.counter_add("cache.hits", 1);
            return verdict;
        }
    }
    instrument.counter_add("cache.misses", 1);
    let verdict = check_instrumented(rtl, property, k, instrument);
    cache.insert_tagged("induction", fp, crate::cachefmt::encode_verdict(&verdict));
    verdict
}

/// [`check_cached`] under a deterministic SAT effort budget. Cache
/// fingerprints are the *standard* ones (engine `"induction"`, parameter
/// `k` — no budget axis), so a conclusive verdict computed here is shared
/// with unbudgeted callers and vice versa. Budget-exhausted verdicts are
/// never inserted: they describe the budget, not the obligation, and a
/// retry with more effort may decide them.
pub fn check_budgeted(
    rtl: &Rtl,
    property: &Property,
    k: u32,
    effort: &exec::Effort,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Verdict {
    if !effort.bounds_sat() {
        return check_cached(rtl, property, k, instrument, cache);
    }
    if !cache.is_enabled() {
        return check_effort(rtl, property, k, effort, instrument);
    }
    let fp = crate::obligation::fingerprint("induction", rtl, property, &[u64::from(k)]);
    if let Some(payload) = cache.lookup_tagged("induction", fp) {
        if let Some(verdict) = crate::cachefmt::decode_verdict(rtl, &payload) {
            instrument.counter_add("cache.hits", 1);
            return verdict;
        }
    }
    instrument.counter_add("cache.misses", 1);
    let verdict = check_effort(rtl, property, k, effort, instrument);
    if !verdict.is_budget_exhausted() {
        cache.insert_tagged("induction", fp, crate::cachefmt::encode_verdict(&verdict));
    }
    verdict
}

/// Attempts each invariant as an independent k-induction obligation,
/// optionally across worker threads. Verdicts are bit-identical to
/// mapping [`check`] over the slice sequentially (each obligation builds
/// its own unroller and solver).
pub fn check_many(
    rtl: &Rtl,
    properties: &[Property],
    k: u32,
    mode: exec::ExecMode,
) -> Vec<Verdict> {
    let jobs: Vec<usize> = (0..properties.len()).collect();
    exec::map(mode, jobs, |_, pi| check(rtl, &properties[pi], k))
}

/// [`check_many`] with a shared obligation cache and per-obligation
/// telemetry collectors replayed in property order (the same merging
/// discipline as [`bmc::check_many_cached`](crate::bmc::check_many_cached)).
pub fn check_many_cached(
    rtl: &Rtl,
    properties: &[Property],
    k: u32,
    mode: exec::ExecMode,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Vec<Verdict> {
    let enabled = instrument.enabled();
    let jobs: Vec<usize> = (0..properties.len()).collect();
    let results = exec::map(mode, jobs, |_, pi| {
        let property = &properties[pi];
        if !enabled {
            return (
                check_cached(rtl, property, k, &telemetry::noop(), cache),
                None,
            );
        }
        let local = std::rc::Rc::new(telemetry::Collector::new());
        let shared: telemetry::SharedInstrument = local.clone();
        let verdict = check_cached(rtl, property, k, &shared, cache);
        drop(shared);
        let collector =
            std::rc::Rc::try_unwrap(local).expect("obligation dropped every instrument handle");
        (verdict, Some(collector))
    });
    results
        .into_iter()
        .map(|(verdict, collector)| {
            if let Some(c) = collector {
                c.replay_into(instrument.as_ref());
            }
            verdict
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::BoolExpr;
    use behav::BinOp;
    use hdl::Rtl;

    /// Counter that wraps at `modulus` (stays in 0..modulus).
    fn mod_counter(width: u32, modulus: u64) -> Rtl {
        let mut rtl = Rtl::new("modc");
        let q = rtl.reg("q", width, 0);
        let one = rtl.constant(1, width);
        let maxc = rtl.constant(modulus - 1, width);
        let zero = rtl.constant(0, width);
        let inc = rtl.binary(BinOp::Add, q, one);
        let at_max = rtl.binary(BinOp::Eq, q, maxc);
        let next = rtl.mux(at_max, zero, inc);
        rtl.set_next(q, next);
        rtl.output("q", q);
        rtl
    }

    #[test]
    fn inductive_invariant_is_proven() {
        // q < 5 is 1-inductive for the mod-5 counter.
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("lt5", BoolExpr::lt("q", 5));
        assert_eq!(check(&rtl, &p, 1), Verdict::Proven);
    }

    #[test]
    fn non_inductive_invariant_is_unknown_at_k1_but_proven_at_k2() {
        // q != 6 holds (6 unreachable) but is not 1-inductive: from the
        // unreachable state q=5 the next state is 6. It *is* 2-inductive
        // because q=5 itself has no predecessor.
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("ne6", BoolExpr::ne("q", 6));
        assert_eq!(
            check(&rtl, &p, 1),
            Verdict::Unknown(UnknownReason::NotInductive)
        );
        assert_eq!(check(&rtl, &p, 2), Verdict::Proven);
    }

    #[test]
    fn false_invariant_is_refuted_in_base_case() {
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("lt3", BoolExpr::lt("q", 3));
        assert!(check(&rtl, &p, 4).is_violated());
    }

    #[test]
    fn stronger_invariant_proves_at_higher_k_or_stays_unknown() {
        // With larger k the path constraint-free induction may still fail;
        // the verdict must never be wrong, only Unknown.
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("ne6", BoolExpr::ne("q", 6));
        for k in 1..=4 {
            let v = check(&rtl, &p, k);
            assert!(
                v == Verdict::Proven || v == Verdict::Unknown(UnknownReason::NotInductive),
                "unsound verdict {v:?} at k={k}"
            );
        }
    }

    #[test]
    fn check_many_agrees_with_sequential() {
        let rtl = mod_counter(3, 5);
        let properties = vec![
            Property::invariant("lt5", BoolExpr::lt("q", 5)),
            Property::invariant("ne6", BoolExpr::ne("q", 6)),
            Property::invariant("lt3", BoolExpr::lt("q", 3)),
        ];
        let reference: Vec<Verdict> = properties.iter().map(|p| check(&rtl, p, 2)).collect();
        for mode in [
            exec::ExecMode::Sequential,
            exec::ExecMode::Parallel { workers: 2 },
            exec::ExecMode::Parallel { workers: 8 },
        ] {
            assert_eq!(check_many(&rtl, &properties, 2, mode), reference);
        }
    }

    #[test]
    fn base_and_step_share_one_solver() {
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("ne6", BoolExpr::ne("q", 6));
        let collector = telemetry::Collector::shared();
        let instr: telemetry::SharedInstrument = collector.clone();
        assert_eq!(check_instrumented(&rtl, &p, 2, &instr), Verdict::Proven);
        // One solver serves two base-case queries and the step query.
        assert_eq!(collector.counter("induction.solver_constructions"), 1);
        assert_eq!(collector.counter("induction.sat_calls"), 3);
        assert_eq!(collector.counter("sat.solve_calls"), 3);
        // Calls after the first on the same solver are incremental.
        assert_eq!(collector.counter("sat.incremental_solve_calls"), 2);
    }

    #[test]
    fn cached_verdicts_replay_without_solving() {
        let rtl = mod_counter(3, 5);
        let properties = [
            Property::invariant("ne6", BoolExpr::ne("q", 6)),
            Property::invariant("lt3", BoolExpr::lt("q", 3)),
        ];
        let cache = cache::ObligationCache::new();
        let cold: Vec<Verdict> = properties
            .iter()
            .map(|p| check_cached(&rtl, p, 2, &telemetry::noop(), &cache))
            .collect();
        assert_eq!(cache.stats().misses, 2);

        let collector = telemetry::Collector::shared();
        let instr: telemetry::SharedInstrument = collector.clone();
        let warm: Vec<Verdict> = properties
            .iter()
            .map(|p| check_cached(&rtl, p, 2, &instr, &cache))
            .collect();
        assert_eq!(warm, cold);
        assert_eq!(cache.stats().hits, 2);
        // No solver was built for the warm pass.
        assert_eq!(collector.counter("induction.solver_constructions"), 0);
        assert_eq!(collector.counter("cache.hits"), 2);
    }

    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    #[test]
    fn budgeted_check_degrades_and_never_caches_exhaustion() {
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("ne6", BoolExpr::ne("q", 6));
        let cache = cache::ObligationCache::new();
        let starve = exec::Effort {
            sat_conflicts: None,
            sat_decisions: Some(0),
            bdd_nodes: None,
        };
        assert_eq!(
            check_budgeted(&rtl, &p, 2, &starve, &telemetry::noop(), &cache),
            Verdict::Unknown(UnknownReason::BudgetExhausted)
        );
        // Exhaustion was not cached: the generous retry re-solves and
        // reaches the real verdict, then shares it with unbudgeted calls.
        let generous = exec::Effort::bounded(10_000);
        assert_eq!(
            check_budgeted(&rtl, &p, 2, &generous, &telemetry::noop(), &cache),
            Verdict::Proven
        );
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(
            check_cached(&rtl, &p, 2, &telemetry::noop(), &cache),
            Verdict::Proven
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    #[should_panic(expected = "expects an invariant")]
    fn response_properties_are_rejected() {
        let rtl = mod_counter(3, 5);
        let p = Property::response("r", BoolExpr::Const(true), BoolExpr::Const(true), 1);
        let _ = check(&rtl, &p, 1);
    }
}
