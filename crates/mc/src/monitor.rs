//! Monitor compilation: bounded-response properties as invariants.
//!
//! BMC refutes response properties but cannot prove them; the exact BDD
//! engine ([`crate::reach`]) only decides invariants. This module closes
//! the gap the classic way: `G (trigger → F≤k response)` is compiled into
//! a *monitor* — a saturating counter of cycles since the oldest
//! undischarged trigger, synthesized into a copy of the design — and the
//! property becomes the invariant "the counter never exceeds `k`", which
//! every engine (BMC, k-induction, reachability) can handle.
//!
//! Monitor transition, evaluated on the design's own outputs:
//!
//! ```text
//! c' = 0                 if response holds this cycle
//! c' = min(c+1, k+1)     if trigger holds or c > 0
//! c' = c (= 0)           otherwise
//! ```
//!
//! `c > k` witnesses a trigger that waited more than `k` cycles.

use crate::prop::{BoolExpr, Cmp, Property};
use behav::BinOp;
use hdl::{Rtl, SigId};

/// Compiles a [`Property::Response`] into `(augmented design, invariant)`.
///
/// The augmented design contains the original netlist unchanged plus the
/// monitor register; the returned property is an invariant over the new
/// `__monitor_violation` output.
///
/// # Panics
///
/// Panics when given an invariant property (nothing to compile) or when an
/// atom references a missing output.
pub fn compile_response_monitor(rtl: &Rtl, property: &Property) -> (Rtl, Property) {
    let (name, trigger, response, within) = match property {
        Property::Response {
            name,
            trigger,
            response,
            within,
        } => (name, trigger, response, *within),
        Property::Invariant { .. } => {
            panic!("monitor compilation expects a response property")
        }
    };

    let mut aug = rtl.clone();
    let trig = compile_bool(&mut aug, trigger);
    let resp = compile_bool(&mut aug, response);

    // Counter wide enough for 0..=within+1.
    let width = (u64::BITS - (within as u64 + 1).leading_zeros()).max(1);
    let c = aug.reg("__monitor_count", width, 0);
    let zero = aug.constant(0, width);
    let one = aug.constant(1, width);
    let cap = aug.constant(within as u64 + 1, width);

    let pending = aug.binary(BinOp::Ne, c, zero);
    let active = aug.binary(BinOp::Or, trig, pending);
    let inc = aug.binary(BinOp::Add, c, one);
    // Saturate at within+1 (the violated value latches).
    let at_cap = aug.binary(BinOp::Ge, c, cap);
    let inc_sat = aug.mux(at_cap, c, inc);
    let advanced = aug.mux(active, inc_sat, c);
    let next = aug.mux(resp, zero, advanced);
    aug.set_next(c, next);

    let within_const = aug.constant(within as u64, width);
    let violated = aug.binary(BinOp::Gt, c, within_const);
    aug.output("__monitor_violation", violated);

    let invariant = Property::invariant(
        &format!("{name}_monitor"),
        BoolExpr::eq("__monitor_violation", 0),
    );
    (aug, invariant)
}

/// Compiles a [`BoolExpr`] over the design's named outputs into a 1-bit
/// signal of the netlist.
fn compile_bool(rtl: &mut Rtl, expr: &BoolExpr) -> SigId {
    match expr {
        BoolExpr::Const(b) => rtl.constant(*b as u64, 1),
        BoolExpr::Atom(a) => {
            let sig = rtl
                .outputs()
                .iter()
                .find(|(n, _)| n == &a.output)
                .map(|&(_, s)| s)
                .unwrap_or_else(|| panic!("no output named `{}`", a.output));
            let w = rtl.width(sig);
            let m = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            let cst = rtl.constant(a.value & m, w);
            let op = match a.cmp {
                Cmp::Eq => BinOp::Eq,
                Cmp::Ne => BinOp::Ne,
                Cmp::Lt => BinOp::Lt,
                Cmp::Le => BinOp::Le,
                Cmp::Gt => BinOp::Gt,
                Cmp::Ge => BinOp::Ge,
            };
            rtl.binary(op, sig, cst)
        }
        BoolExpr::Not(e) => {
            let x = compile_bool(rtl, e);
            rtl.not(x)
        }
        BoolExpr::And(a, b) => {
            let x = compile_bool(rtl, a);
            let y = compile_bool(rtl, b);
            rtl.binary(BinOp::And, x, y)
        }
        BoolExpr::Or(a, b) => {
            let x = compile_bool(rtl, a);
            let y = compile_bool(rtl, b);
            rtl.binary(BinOp::Or, x, y)
        }
        BoolExpr::Implies(a, b) => {
            let x = compile_bool(rtl, a);
            let y = compile_bool(rtl, b);
            let nx = rtl.not(x);
            rtl.binary(BinOp::Or, nx, y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bmc, induction, reach, Verdict};
    use hdl::fsm::FsmBuilder;

    /// Closed FSM: busy (state 1) always reaches done (state 2) in one step.
    fn closed_fsm() -> Rtl {
        let mut b = FsmBuilder::new("closed");
        let idle = b.state("IDLE");
        let busy = b.state("BUSY");
        let done = b.state("DONE");
        let start = b.input("start");
        b.transition(idle, vec![(start, true)], busy);
        b.transition(busy, vec![], done);
        b.transition(done, vec![], idle);
        b.moore_output("busy", 1, &[0, 1, 0]);
        b.moore_output("done", 1, &[0, 0, 1]);
        b.build()
    }

    fn busy_done(within: u32) -> Property {
        Property::response(
            "busy_done",
            BoolExpr::eq("busy", 1),
            BoolExpr::eq("done", 1),
            within,
        )
    }

    #[test]
    fn monitor_enables_exact_proof_of_response() {
        let rtl = closed_fsm();
        let p = busy_done(1);
        // BMC alone can only bound-check…
        assert!(matches!(
            bmc::check(&rtl, &p, 10),
            Verdict::NoViolationUpTo(_)
        ));
        // …the monitor turns it into a full reachability proof.
        let (aug, inv) = compile_response_monitor(&rtl, &p);
        assert_eq!(reach::check(&aug, &inv), Verdict::Proven);
    }

    #[test]
    fn monitor_refutes_too_tight_window() {
        let rtl = closed_fsm();
        // done arrives exactly 1 cycle after busy; within=0 demands the
        // same cycle → violated.
        let p = busy_done(0);
        let (aug, inv) = compile_response_monitor(&rtl, &p);
        assert!(reach::check(&aug, &inv).is_violated());
        // BMC agrees on the unmonitored property.
        assert!(bmc::check(&rtl, &p, 10).is_violated());
    }

    #[test]
    fn monitor_agrees_with_bmc_on_open_wrapper() {
        // The open bus wrapper (free ack) cannot guarantee done: both
        // engines must refute.
        let rtl = hdl::fsm::bus_wrapper_fsm("w");
        let p = Property::response(
            "req_done",
            BoolExpr::eq("bus_req", 1),
            BoolExpr::eq("done", 1),
            3,
        );
        assert!(bmc::check(&rtl, &p, 10).is_violated());
        let (aug, inv) = compile_response_monitor(&rtl, &p);
        assert!(reach::check(&aug, &inv).is_violated());
    }

    #[test]
    fn monitor_invariant_is_k_inductive_for_simple_cases() {
        let rtl = closed_fsm();
        let (aug, inv) = compile_response_monitor(&rtl, &busy_done(2));
        // k-induction on the monitored invariant must never be unsound.
        for k in 1..=4 {
            let v = induction::check(&aug, &inv, k);
            assert!(
                matches!(v, Verdict::Proven | Verdict::Unknown(_)),
                "unsound induction verdict {v:?} at k={k}"
            );
        }
        // And the exact engine settles it.
        assert_eq!(reach::check(&aug, &inv), Verdict::Proven);
    }

    #[test]
    fn augmentation_preserves_original_behaviour() {
        let rtl = closed_fsm();
        let (aug, _) = compile_response_monitor(&rtl, &busy_done(1));
        // Original outputs simulate identically on the augmented design.
        let inputs: Vec<Vec<u64>> = vec![vec![1], vec![0], vec![0], vec![1], vec![0], vec![0]];
        let orig = rtl.simulate(&inputs);
        let augd = aug.simulate(&inputs);
        for (o, a) in orig.iter().zip(&augd) {
            assert_eq!(&a[..o.len()], &o[..], "original outputs unchanged");
        }
    }

    #[test]
    #[should_panic(expected = "expects a response property")]
    fn invariant_input_is_rejected() {
        let rtl = closed_fsm();
        let p = Property::invariant("inv", BoolExpr::Const(true));
        let _ = compile_response_monitor(&rtl, &p);
    }
}
