//! Deterministic simulation cross-check for inconclusive obligations.
//!
//! When a formal engine returns `Unknown(BudgetExhausted)`, the
//! supervision layer routes the obligation to this complementary engine —
//! the semiformal pattern of Grimm et al. and Kumar et al. (PAPERS.md):
//! bounded-effort formal results are cross-checked by directed
//! simulation. A violation found here upgrades the outcome to *Refuted*
//! (simulation witnesses are sound); finding none leaves it *Unknown*
//! (simulation is incomplete).
//!
//! Inputs come from a fixed-seed xorshift64 stream, so the cross-check is
//! bit-reproducible across runs and worker counts — the same determinism
//! contract as the budgets themselves.

use crate::prop::Property;
use hdl::Rtl;

/// Seed of the deterministic input stream. Fixed: the cross-check is part
/// of the flow's reproducibility contract, not a statistical sampler.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Simulates `vectors` random input sequences of `cycles` cycles each
/// from reset and reports whether any of them violates `property`
/// (judged by [`Property::holds_on_trace`], so response properties are
/// only blamed on complete windows).
///
/// `true` means a concrete violation was witnessed — a sound refutation.
/// `false` means nothing was found within the simulation budget, which
/// proves nothing.
pub fn simulate_violates(rtl: &Rtl, property: &Property, vectors: u32, cycles: u32) -> bool {
    let widths: Vec<u32> = rtl.inputs().iter().map(|&i| rtl.width(i)).collect();
    let mut rng = SEED;
    for _ in 0..vectors {
        let mut state = rtl.reset_state();
        let mut trace: Vec<Vec<(String, u64)>> = Vec::with_capacity(cycles as usize);
        for _ in 0..cycles {
            let inputs: Vec<u64> = widths
                .iter()
                .map(|&w| {
                    let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                    next_rand(&mut rng) & mask
                })
                .collect();
            let (outputs, next) = rtl.step(&inputs, &state);
            trace.push(
                rtl.outputs()
                    .iter()
                    .map(|(name, _)| name.clone())
                    .zip(outputs)
                    .collect(),
            );
            state = next;
        }
        if !property.holds_on_trace(&trace) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::BoolExpr;
    use behav::BinOp;

    fn counter() -> Rtl {
        let mut rtl = Rtl::new("counter");
        let q = rtl.reg("q", 3, 0);
        let one = rtl.constant(1, 3);
        let inc = rtl.binary(BinOp::Add, q, one);
        rtl.set_next(q, inc);
        rtl.output("q", q);
        rtl
    }

    #[test]
    fn witnesses_a_real_violation() {
        // The free-running counter reaches 5 at cycle 5 on every input
        // sequence — one vector of 16 cycles suffices.
        let p = Property::invariant("never5", BoolExpr::ne("q", 5));
        assert!(simulate_violates(&counter(), &p, 1, 16));
    }

    #[test]
    fn finds_nothing_on_a_true_invariant() {
        let p = Property::invariant("in_range", BoolExpr::le("q", 7));
        assert!(!simulate_violates(&counter(), &p, 8, 16));
    }

    #[test]
    fn is_deterministic() {
        let rtl = hdl::fsm::bus_wrapper_fsm("w");
        let p = Property::response(
            "req_done",
            BoolExpr::eq("bus_req", 1),
            BoolExpr::eq("done", 1),
            3,
        );
        let a = simulate_violates(&rtl, &p, 16, 24);
        let b = simulate_violates(&rtl, &p, 16, 24);
        assert_eq!(a, b);
    }
}
