//! Exact symbolic model checking by BDD reachability.
//!
//! Variable layout: current-state bits occupy BDD variables `0..n`,
//! next-state bits `n..2n`, primary-input bits `2n..`. The reachable-state
//! set is computed by iterated image computation (`∃ current, inputs.
//! R ∧ T` renamed back to the current frame); the invariant is checked
//! against every reachable state under every input valuation. Unlike BMC
//! this is a decision procedure — it either proves the invariant or reports
//! a violation (without a trace; re-run BMC to extract one).

use crate::prop::{BoolExpr, Cmp, Property};
use crate::{CexTrace, UnknownReason, Verdict};
use hdl::lower::{bv, lower, BddBackend, BitCtx};
use hdl::Rtl;

/// Decides the invariant `property` on `rtl` by exact reachability.
///
/// # Panics
///
/// Panics if called with a response property (compile those to monitor
/// FSMs first) or if the state space is too wide (> 28 state bits) to
/// enumerate symbolically with the naive variable order used here.
pub fn check(rtl: &Rtl, property: &Property) -> Verdict {
    check_with_budget(rtl, property, None)
}

/// [`check`] under a soft BDD node budget. The manager's node ceiling
/// ([`bdd::Manager::set_node_budget`]) is polled after each construction
/// stage and at the top of every fixpoint iteration; once allocation
/// crosses it the engine abandons the computation with
/// [`Verdict::Unknown`]`(`[`UnknownReason::BudgetExhausted`]`)`. Node
/// allocation is a deterministic progress axis, so exhaustion happens at
/// the same iteration on every run. `None` is exactly [`check`].
pub fn check_with_budget(rtl: &Rtl, property: &Property, node_budget: Option<usize>) -> Verdict {
    check_counting(rtl, property, node_budget).0
}

/// The engine body, also reporting how many BDD nodes the run allocated
/// (the `bdd_nodes` effort axis — a deterministic progress measure the
/// observability layer attributes per obligation).
fn check_counting(rtl: &Rtl, property: &Property, node_budget: Option<usize>) -> (Verdict, u64) {
    let expr = match property {
        Property::Invariant { expr, .. } => expr,
        Property::Response { .. } => panic!("reachability expects an invariant property"),
    };
    let n = rtl.state_bits() as usize;
    assert!(
        n <= 28,
        "state space too wide for the naive BDD order ({n} bits)"
    );

    let mut mgr = bdd::Manager::new();
    mgr.set_node_budget(node_budget);
    // Current-state bits per register.
    let mut reg_bits: Vec<Vec<bdd::Ref>> = Vec::new();
    let mut var = 0u32;
    for &(r, _) in &rtl.registers() {
        let w = rtl.width(r);
        let bits: Vec<bdd::Ref> = (0..w).map(|i| mgr.var(var + i)).collect();
        var += w;
        reg_bits.push(bits);
    }
    debug_assert_eq!(var as usize, n);

    // Lower with inputs allocated from 2n.
    let (outputs, next_state, input_var_count) = {
        let mut ctx = BddBackend::new(&mut mgr, 2 * n as u32);
        let input_bits: Vec<Vec<bdd::Ref>> = rtl
            .inputs()
            .iter()
            .map(|&i| {
                let w = rtl.width(i) as usize;
                (0..w).map(|_| ctx.bit_fresh()).collect()
            })
            .collect();
        let lowered = lower(rtl, &mut ctx, &input_bits, &reg_bits);
        let outputs = lowered.outputs(rtl);
        let next_state = lowered.next_state(rtl);
        let count = ctx.next_var() - 2 * n as u32;
        (outputs, next_state, count)
    };

    let input_vars: Vec<u32> = (0..input_var_count).map(|i| 2 * n as u32 + i).collect();
    let current_vars: Vec<u32> = (0..n as u32).collect();

    // Transition relation T(current, input, next).
    let mut trans = mgr.constant(true);
    let mut bit_idx = 0u32;
    for reg_next in &next_state {
        for &next_bit in reg_next {
            let next_var = mgr.var(n as u32 + bit_idx);
            let iff = mgr.iff(next_var, next_bit);
            trans = mgr.and(trans, iff);
            bit_idx += 1;
        }
    }

    // The ceiling is polled between stages, never mid-operation — a
    // half-built BDD is unusable, so each construction step runs to
    // completion and exhaustion is detected at the next seam.
    if mgr.node_budget_exhausted() {
        let nodes = mgr.node_count() as u64;
        return (Verdict::Unknown(UnknownReason::BudgetExhausted), nodes);
    }

    // Bad states: ∃ inputs. ¬φ(outputs(current, inputs)).
    let phi = compile_expr(&mut mgr, n, &outputs, expr);
    let not_phi = mgr.not(phi);
    let bad_states = mgr.exists_many(not_phi, &input_vars);

    // Initial state cube.
    let reset = rtl.reset_state();
    let mut init = mgr.constant(true);
    let mut bit = 0u32;
    for (ri, &(r, _)) in rtl.registers().iter().enumerate() {
        let w = rtl.width(r);
        for i in 0..w {
            let v = if reset[ri] >> i & 1 == 1 {
                mgr.var(bit)
            } else {
                mgr.nvar(bit)
            };
            init = mgr.and(init, v);
            bit += 1;
        }
    }

    // Fixpoint reachability.
    let quantify: Vec<u32> = current_vars
        .iter()
        .copied()
        .chain(input_vars.iter().copied())
        .collect();
    let rename_map: Vec<(u32, u32)> = (0..n as u32).map(|i| (n as u32 + i, i)).collect();
    let mut reached = init;
    loop {
        if mgr.node_budget_exhausted() {
            let nodes = mgr.node_count() as u64;
            return (Verdict::Unknown(UnknownReason::BudgetExhausted), nodes);
        }
        let overlap = mgr.and(reached, bad_states);
        if overlap != bdd::Ref::FALSE {
            let nodes = mgr.node_count() as u64;
            return (Verdict::Violated(CexTrace { frames: Vec::new() }), nodes);
        }
        let img_next = mgr.and_exists(reached, trans, &quantify);
        let img = mgr.rename(img_next, &rename_map);
        let new_reached = mgr.or(reached, img);
        if new_reached == reached {
            let nodes = mgr.node_count() as u64;
            return (Verdict::Proven, nodes);
        }
        reached = new_reached;
    }
}

/// [`check`] backed by the obligation cache (engine tag `"reach"`, no
/// numeric parameters — the engine is exact). A hit replays the stored
/// verdict without building a BDD manager; [`cache::noop()`]
/// short-circuits to the uncached path. Hits and misses are surfaced as
/// `cache.hits` / `cache.misses` counters on `instrument`; engine runs
/// additionally report their BDD allocation as `bdd.nodes_allocated`
/// (the effort axis the observability journal attributes per
/// obligation).
///
/// # Panics
///
/// As [`check`]: response properties and state spaces wider than 28 bits
/// are rejected (before any cache lookup, so cached and uncached paths
/// reject identically).
pub fn check_cached(
    rtl: &Rtl,
    property: &Property,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Verdict {
    assert!(
        matches!(property, Property::Invariant { .. }),
        "reachability expects an invariant property"
    );
    assert!(
        rtl.state_bits() <= 28,
        "state space too wide for the naive BDD order ({} bits)",
        rtl.state_bits()
    );
    if !cache.is_enabled() {
        let (verdict, nodes) = check_counting(rtl, property, None);
        instrument.counter_add("bdd.nodes_allocated", nodes);
        return verdict;
    }
    let fp = crate::obligation::fingerprint("reach", rtl, property, &[]);
    if let Some(payload) = cache.lookup_tagged("reach", fp) {
        if let Some(verdict) = crate::cachefmt::decode_verdict(rtl, &payload) {
            instrument.counter_add("cache.hits", 1);
            return verdict;
        }
    }
    instrument.counter_add("cache.misses", 1);
    let (verdict, nodes) = check_counting(rtl, property, None);
    instrument.counter_add("bdd.nodes_allocated", nodes);
    cache.insert_tagged("reach", fp, crate::cachefmt::encode_verdict(&verdict));
    verdict
}

/// [`check_cached`] under a BDD node budget taken from
/// `effort.bdd_nodes`. The cache fingerprint is the *standard* one
/// (engine `"reach"`, no parameters), so conclusive verdicts are shared
/// with unbudgeted callers; budget-exhausted verdicts are never inserted.
/// An effort with no `bdd_nodes` axis delegates to [`check_cached`].
///
/// # Panics
///
/// As [`check`].
pub fn check_budgeted(
    rtl: &Rtl,
    property: &Property,
    effort: &exec::Effort,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Verdict {
    let Some(nodes) = effort.bdd_nodes else {
        return check_cached(rtl, property, instrument, cache);
    };
    let budget = Some(usize::try_from(nodes).unwrap_or(usize::MAX));
    assert!(
        matches!(property, Property::Invariant { .. }),
        "reachability expects an invariant property"
    );
    assert!(
        rtl.state_bits() <= 28,
        "state space too wide for the naive BDD order ({} bits)",
        rtl.state_bits()
    );
    if !cache.is_enabled() {
        let (verdict, nodes) = check_counting(rtl, property, budget);
        instrument.counter_add("bdd.nodes_allocated", nodes);
        return verdict;
    }
    let fp = crate::obligation::fingerprint("reach", rtl, property, &[]);
    if let Some(payload) = cache.lookup_tagged("reach", fp) {
        if let Some(verdict) = crate::cachefmt::decode_verdict(rtl, &payload) {
            instrument.counter_add("cache.hits", 1);
            return verdict;
        }
    }
    instrument.counter_add("cache.misses", 1);
    let (verdict, nodes) = check_counting(rtl, property, budget);
    instrument.counter_add("bdd.nodes_allocated", nodes);
    if !verdict.is_budget_exhausted() {
        cache.insert_tagged("reach", fp, crate::cachefmt::encode_verdict(&verdict));
    }
    verdict
}

#[allow(clippy::only_used_in_recursion)]
fn compile_expr(
    mgr: &mut bdd::Manager,
    n: usize,
    outputs: &[(String, Vec<bdd::Ref>)],
    expr: &BoolExpr,
) -> bdd::Ref {
    match expr {
        BoolExpr::Const(b) => mgr.constant(*b),
        BoolExpr::Atom(a) => {
            let bits = &outputs
                .iter()
                .find(|(nm, _)| nm == &a.output)
                .unwrap_or_else(|| panic!("no output named `{}`", a.output))
                .1;
            // Fresh vars are never needed for constants/comparisons, so the
            // backend's starting index is irrelevant here.
            let mut ctx = BddBackend::new(mgr, u32::MAX - 1024);
            let w = bits.len();
            let m = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            let cst = bv::constant(&mut ctx, a.value & m, w);
            match a.cmp {
                Cmp::Eq => bv::eq(&mut ctx, bits, &cst),
                Cmp::Ne => {
                    let e = bv::eq(&mut ctx, bits, &cst);
                    ctx.bit_not(e)
                }
                Cmp::Lt => bv::lt(&mut ctx, bits, &cst),
                Cmp::Le => bv::le(&mut ctx, bits, &cst),
                Cmp::Gt => {
                    let le = bv::le(&mut ctx, bits, &cst);
                    ctx.bit_not(le)
                }
                Cmp::Ge => {
                    let lt = bv::lt(&mut ctx, bits, &cst);
                    ctx.bit_not(lt)
                }
            }
        }
        BoolExpr::Not(e) => {
            let x = compile_expr(mgr, n, outputs, e);
            mgr.not(x)
        }
        BoolExpr::And(a, b) => {
            let x = compile_expr(mgr, n, outputs, a);
            let y = compile_expr(mgr, n, outputs, b);
            mgr.and(x, y)
        }
        BoolExpr::Or(a, b) => {
            let x = compile_expr(mgr, n, outputs, a);
            let y = compile_expr(mgr, n, outputs, b);
            mgr.or(x, y)
        }
        BoolExpr::Implies(a, b) => {
            let x = compile_expr(mgr, n, outputs, a);
            let y = compile_expr(mgr, n, outputs, b);
            mgr.implies(x, y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmc;
    use crate::prop::BoolExpr;
    use behav::BinOp;
    use hdl::fsm::bus_wrapper_fsm;
    use hdl::Rtl;

    fn mod_counter(width: u32, modulus: u64) -> Rtl {
        let mut rtl = Rtl::new("modc");
        let q = rtl.reg("q", width, 0);
        let one = rtl.constant(1, width);
        let maxc = rtl.constant(modulus - 1, width);
        let zero = rtl.constant(0, width);
        let inc = rtl.binary(BinOp::Add, q, one);
        let at_max = rtl.binary(BinOp::Eq, q, maxc);
        let next = rtl.mux(at_max, zero, inc);
        rtl.set_next(q, next);
        rtl.output("q", q);
        rtl
    }

    #[test]
    fn proves_unreachable_state_exactly() {
        // q != 6 is NOT 1-inductive but IS true: the exact engine proves it.
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("ne6", BoolExpr::ne("q", 6));
        assert_eq!(check(&rtl, &p), Verdict::Proven);
    }

    #[test]
    fn refutes_false_invariant() {
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("lt3", BoolExpr::lt("q", 3));
        assert!(check(&rtl, &p).is_violated());
    }

    #[test]
    fn agrees_with_bmc_on_fsm_invariants() {
        let rtl = bus_wrapper_fsm("w");
        let cases = [
            (Property::invariant("range", BoolExpr::le("state", 3)), true),
            (
                // bus_req is never high in DONE (state 3).
                Property::invariant(
                    "no_req_in_done",
                    BoolExpr::implies(BoolExpr::eq("state", 3), BoolExpr::eq("bus_req", 0)),
                ),
                true,
            ),
            (
                Property::invariant("never_done", BoolExpr::eq("done", 0)),
                false,
            ),
        ];
        for (p, expect_proven) in cases {
            let exact = check(&rtl, &p);
            let bounded = bmc::check(&rtl, &p, 10);
            if expect_proven {
                assert_eq!(exact, Verdict::Proven, "{}", p.name());
                assert!(
                    matches!(bounded, Verdict::NoViolationUpTo(_)),
                    "{}",
                    p.name()
                );
            } else {
                assert!(exact.is_violated(), "{}", p.name());
                assert!(bounded.is_violated(), "{}", p.name());
            }
        }
    }

    #[test]
    fn input_dependent_invariant() {
        // Module: out = in0 & in1. Invariant "out ≤ 1" holds; "out == 0"
        // fails because some input valuation makes out 1. State-free models
        // still work (no registers).
        let mut rtl = Rtl::new("comb");
        let a = rtl.input("a", 1);
        let b = rtl.input("b", 1);
        let o = rtl.binary(BinOp::And, a, b);
        rtl.output("o", o);
        assert_eq!(
            check(&rtl, &Property::invariant("le1", BoolExpr::le("o", 1))),
            Verdict::Proven
        );
        assert!(check(&rtl, &Property::invariant("zero", BoolExpr::eq("o", 0))).is_violated());
    }

    #[test]
    fn node_budget_degrades_deterministically_and_skips_the_cache() {
        let rtl = mod_counter(3, 5);
        let p = Property::invariant("ne6", BoolExpr::ne("q", 6));
        let starve = exec::Effort {
            sat_conflicts: None,
            sat_decisions: None,
            bdd_nodes: Some(8),
        };
        let cache = cache::ObligationCache::new();
        for _ in 0..2 {
            assert_eq!(
                check_budgeted(&rtl, &p, &starve, &telemetry::noop(), &cache),
                Verdict::Unknown(UnknownReason::BudgetExhausted)
            );
        }
        assert_eq!(cache.stats().misses, 2);
        // A generous budget concludes and its verdict is shared with
        // unbudgeted callers through the standard fingerprint.
        let generous = exec::Effort {
            sat_conflicts: None,
            sat_decisions: None,
            bdd_nodes: Some(1 << 20),
        };
        assert_eq!(
            check_budgeted(&rtl, &p, &generous, &telemetry::noop(), &cache),
            Verdict::Proven
        );
        assert_eq!(
            check_cached(&rtl, &p, &telemetry::noop(), &cache),
            Verdict::Proven
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    #[should_panic(expected = "expects an invariant")]
    fn response_rejected() {
        let rtl = mod_counter(3, 5);
        let p = Property::response("r", BoolExpr::Const(true), BoolExpr::Const(true), 1);
        let _ = check(&rtl, &p);
    }
}
