//! Time-frame unrolling shared by BMC and k-induction.

use crate::prop::{BoolExpr, Cmp};
use crate::{CexFrame, CexTrace};
use hdl::lower::{bv, lower, CnfBackend};
use hdl::Rtl;
use sat::Lit;

/// How the first frame's register state is constrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitMode {
    /// Frame 0 starts from the reset values (BMC).
    Reset,
    /// Frame 0 state is unconstrained (induction step).
    Free,
}

pub struct Frame {
    pub input_lits: Vec<Vec<Lit>>,
    pub state_lits: Vec<Vec<Lit>>,
    pub outputs: Vec<(String, Vec<Lit>)>,
    pub next_state: Vec<Vec<Lit>>,
}

/// Incrementally unrolls an [`Rtl`] netlist into CNF time frames.
pub struct Unroller<'r> {
    rtl: &'r Rtl,
    pub ctx: CnfBackend,
    pub frames: Vec<Frame>,
    init: InitMode,
}

impl<'r> Unroller<'r> {
    pub fn new(rtl: &'r Rtl, init: InitMode) -> Self {
        Unroller {
            rtl,
            ctx: CnfBackend::new(),
            frames: Vec::new(),
            init,
        }
    }

    /// Appends one more time frame and returns its index.
    pub fn add_frame(&mut self) -> usize {
        use hdl::lower::BitCtx;
        let state_lits: Vec<Vec<Lit>> = if let Some(last) = self.frames.last() {
            last.next_state.clone()
        } else {
            match self.init {
                InitMode::Reset => {
                    let reset = self.rtl.reset_state();
                    self.rtl
                        .registers()
                        .iter()
                        .zip(&reset)
                        .map(|(&(r, _), &v)| {
                            let w = self.rtl.width(r) as usize;
                            bv::constant(&mut self.ctx, v, w)
                        })
                        .collect()
                }
                InitMode::Free => self
                    .rtl
                    .registers()
                    .iter()
                    .map(|&(r, _)| {
                        let w = self.rtl.width(r) as usize;
                        (0..w).map(|_| self.ctx.bit_fresh()).collect()
                    })
                    .collect(),
            }
        };
        let input_lits: Vec<Vec<Lit>> = self
            .rtl
            .inputs()
            .iter()
            .map(|&i| {
                let w = self.rtl.width(i) as usize;
                (0..w).map(|_| self.ctx.bit_fresh()).collect()
            })
            .collect();
        let lowered = lower(self.rtl, &mut self.ctx, &input_lits, &state_lits);
        let outputs = lowered.outputs(self.rtl);
        let next_state = lowered.next_state(self.rtl);
        self.frames.push(Frame {
            input_lits,
            state_lits,
            outputs,
            next_state,
        });
        self.frames.len() - 1
    }

    /// Ensures at least `n + 1` frames exist.
    pub fn ensure_frames(&mut self, n: usize) {
        while self.frames.len() <= n {
            self.add_frame();
        }
    }

    /// Assumption literals pinning frame 0's state bits to the reset
    /// values, so one [`InitMode::Free`] unrolling can serve both a
    /// from-reset query (pass these to `solve_under_assumptions`) and an
    /// any-state query (omit them) over the same transition-relation
    /// clauses. Only meaningful for `Free` unrollings — under
    /// [`InitMode::Reset`] the frame-0 state bits are constants, not
    /// assumable variables.
    pub fn reset_assumptions(&self) -> Vec<Lit> {
        let reset = self.rtl.reset_state();
        self.frames[0]
            .state_lits
            .iter()
            .zip(&reset)
            .flat_map(|(bits, &v)| {
                bits.iter()
                    .enumerate()
                    .map(move |(i, &l)| if v >> i & 1 == 1 { l } else { !l })
            })
            .collect()
    }

    /// Builds a literal equal to `expr` evaluated on frame `fi`.
    pub fn compile_expr(&mut self, expr: &BoolExpr, fi: usize) -> Lit {
        use hdl::lower::BitCtx;
        match expr {
            BoolExpr::Const(b) => self.ctx.bit_const(*b),
            BoolExpr::Atom(a) => {
                let bits: Vec<Lit> = self.frames[fi]
                    .outputs
                    .iter()
                    .find(|(n, _)| n == &a.output)
                    .unwrap_or_else(|| panic!("no output named `{}`", a.output))
                    .1
                    .clone();
                let cst = bv::constant(&mut self.ctx, a.value & mask_w(bits.len()), bits.len());
                match a.cmp {
                    Cmp::Eq => bv::eq(&mut self.ctx, &bits, &cst),
                    Cmp::Ne => {
                        let e = bv::eq(&mut self.ctx, &bits, &cst);
                        !e
                    }
                    Cmp::Lt => bv::lt(&mut self.ctx, &bits, &cst),
                    Cmp::Le => bv::le(&mut self.ctx, &bits, &cst),
                    Cmp::Gt => {
                        let le = bv::le(&mut self.ctx, &bits, &cst);
                        !le
                    }
                    Cmp::Ge => {
                        let lt = bv::lt(&mut self.ctx, &bits, &cst);
                        !lt
                    }
                }
            }
            BoolExpr::Not(e) => {
                let l = self.compile_expr(e, fi);
                !l
            }
            BoolExpr::And(a, b) => {
                let la = self.compile_expr(a, fi);
                let lb = self.compile_expr(b, fi);
                self.ctx.bit_and(la, lb)
            }
            BoolExpr::Or(a, b) => {
                let la = self.compile_expr(a, fi);
                let lb = self.compile_expr(b, fi);
                self.ctx.bit_or(la, lb)
            }
            BoolExpr::Implies(a, b) => {
                let la = self.compile_expr(a, fi);
                let lb = self.compile_expr(b, fi);
                let na = !la;
                self.ctx.bit_or(na, lb)
            }
        }
    }

    /// Extracts a counterexample trace covering frames `0..=last` from the
    /// current SAT model.
    pub fn extract_trace(&mut self, last: usize) -> CexTrace {
        let read_word = |builder: &sat::CnfBuilder, bits: &[Lit]| -> u64 {
            let mut v = 0u64;
            for (i, &l) in bits.iter().enumerate() {
                if builder.lit_value(l) {
                    v |= 1 << i;
                }
            }
            v
        };
        let builder = self.ctx.builder_mut();
        let mut frames = Vec::new();
        for f in &self.frames[..=last] {
            frames.push(CexFrame {
                inputs: f.input_lits.iter().map(|b| read_word(builder, b)).collect(),
                state: f.state_lits.iter().map(|b| read_word(builder, b)).collect(),
                outputs: f
                    .outputs
                    .iter()
                    .map(|(n, b)| (n.clone(), read_word(builder, b)))
                    .collect(),
            });
        }
        CexTrace { frames }
    }
}

fn mask_w(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}
