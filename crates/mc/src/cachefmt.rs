//! Verdict payload encoding for the obligation cache.
//!
//! Compact, JSON-string-safe, and exact: a decoded verdict — including a
//! full counterexample trace — is `==` to the one that was encoded, which
//! is what makes warm flow reruns bit-identical to cold ones. Output
//! *names* are not stored; they are reconstructed from the netlist's
//! output declaration order at decode time (the same order the unroller
//! used to extract the trace). Any malformed payload decodes to `None`
//! and the caller treats it as a cache miss.

use crate::{CexFrame, CexTrace, UnknownReason, Verdict};
use hdl::Rtl;

/// Encodes a verdict:
/// `P` (proven) · `U` (unknown, not inductive) · `UB` (unknown, budget
/// exhausted — decodable for totality, but budget-dependent verdicts are
/// never inserted into the cache) · `N:<bound>` (no violation up to) ·
/// `V:<frame>;<frame>;…` with each frame `in1,in2|st1,st2|out1,out2`.
pub fn encode_verdict(verdict: &Verdict) -> String {
    match verdict {
        Verdict::Proven => "P".to_owned(),
        Verdict::Unknown(UnknownReason::NotInductive) => "U".to_owned(),
        Verdict::Unknown(UnknownReason::BudgetExhausted) => "UB".to_owned(),
        Verdict::NoViolationUpTo(bound) => format!("N:{bound}"),
        Verdict::Violated(trace) => {
            let frames: Vec<String> = trace
                .frames
                .iter()
                .map(|f| {
                    format!(
                        "{}|{}|{}",
                        join(&f.inputs),
                        join(&f.state),
                        join_named(&f.outputs)
                    )
                })
                .collect();
            format!("V:{}", frames.join(";"))
        }
    }
}

/// Decodes [`encode_verdict`] output; `rtl` supplies the output names for
/// trace frames (declaration order, exactly as the unroller extracts
/// them).
pub fn decode_verdict(rtl: &Rtl, payload: &str) -> Option<Verdict> {
    match payload {
        "P" => return Some(Verdict::Proven),
        "U" => return Some(Verdict::Unknown(UnknownReason::NotInductive)),
        "UB" => return Some(Verdict::Unknown(UnknownReason::BudgetExhausted)),
        _ => {}
    }
    if let Some(bound) = payload.strip_prefix("N:") {
        return bound.parse().ok().map(Verdict::NoViolationUpTo);
    }
    let body = payload.strip_prefix("V:")?;
    if body.is_empty() {
        // BDD reachability reports violations without a trace.
        return Some(Verdict::Violated(CexTrace { frames: Vec::new() }));
    }
    let names: Vec<String> = rtl.outputs().iter().map(|(n, _)| n.clone()).collect();
    let mut frames = Vec::new();
    for frame in body.split(';') {
        let mut parts = frame.split('|');
        let inputs = split(parts.next()?)?;
        let state = split(parts.next()?)?;
        let outputs = split(parts.next()?)?;
        if parts.next().is_some() || outputs.len() != names.len() {
            return None;
        }
        frames.push(CexFrame {
            inputs,
            state,
            outputs: names.iter().cloned().zip(outputs).collect(),
        });
    }
    Some(Verdict::Violated(CexTrace { frames }))
}

fn join(values: &[u64]) -> String {
    values
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn join_named(values: &[(String, u64)]) -> String {
    values
        .iter()
        .map(|(_, v)| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn split(text: &str) -> Option<Vec<u64>> {
    if text.is_empty() {
        return Some(Vec::new());
    }
    text.split(',').map(|v| v.parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use behav::BinOp;

    fn rtl_with_outputs() -> Rtl {
        let mut rtl = Rtl::new("m");
        let q = rtl.reg("q", 3, 0);
        let one = rtl.constant(1, 3);
        let inc = rtl.binary(BinOp::Add, q, one);
        rtl.set_next(q, inc);
        rtl.output("q", q);
        rtl.output("q2", inc);
        rtl
    }

    #[test]
    fn scalar_verdicts_round_trip() {
        let rtl = rtl_with_outputs();
        for v in [
            Verdict::Proven,
            Verdict::Unknown(UnknownReason::NotInductive),
            Verdict::Unknown(UnknownReason::BudgetExhausted),
            Verdict::NoViolationUpTo(12),
            Verdict::Violated(CexTrace { frames: Vec::new() }),
        ] {
            assert_eq!(decode_verdict(&rtl, &encode_verdict(&v)), Some(v));
        }
    }

    #[test]
    fn traces_round_trip_exactly() {
        let rtl = rtl_with_outputs();
        let v = Verdict::Violated(CexTrace {
            frames: vec![
                CexFrame {
                    inputs: vec![3, u64::MAX],
                    state: vec![0],
                    outputs: vec![("q".into(), 0), ("q2".into(), 1)],
                },
                CexFrame {
                    inputs: vec![],
                    state: vec![1],
                    outputs: vec![("q".into(), 1), ("q2".into(), 2)],
                },
            ],
        });
        assert_eq!(decode_verdict(&rtl, &encode_verdict(&v)), Some(v));
    }

    #[test]
    fn malformed_payloads_are_misses() {
        let rtl = rtl_with_outputs();
        for bad in ["", "X", "N:", "N:x", "V:1|2", "V:1|2|3|4", "V:a|b|c,d"] {
            assert_eq!(decode_verdict(&rtl, bad), None, "payload {bad:?}");
        }
    }
}
