//! Bounded model checking by SAT.

use crate::prop::Property;
use crate::unrolling::{InitMode, Unroller};
use crate::{UnknownReason, Verdict};
use hdl::Rtl;

/// Checks `property` on `rtl` for all execution prefixes of up to
/// `bound + 1` cycles from reset.
///
/// Returns [`Verdict::Violated`] with a concrete trace, or
/// [`Verdict::NoViolationUpTo`]`(bound)` — which is *not* a proof for deeper
/// executions (use [`crate::induction`] or [`crate::reach`] for proofs).
///
/// For response properties only complete windows inside the bound are
/// checked, mirroring [`Property::holds_on_trace`].
pub fn check(rtl: &Rtl, property: &Property, bound: u32) -> Verdict {
    check_instrumented(rtl, property, bound, &telemetry::noop())
}

/// [`check`] with telemetry: emits a `bmc.depth` gauge as unrolling
/// progresses (the gauge's time axis is the depth itself), a
/// `bmc.sat_calls` counter, a `bmc.solver_constructions` counter (one per
/// obligation — all depths share one incrementally extended solver), and
/// per-depth SAT solver statistics through the instrument attached to the
/// underlying solver.
pub fn check_instrumented(
    rtl: &Rtl,
    property: &Property,
    bound: u32,
    instrument: &telemetry::SharedInstrument,
) -> Verdict {
    check_effort(rtl, property, bound, &exec::Effort::unbounded(), instrument)
}

/// The shared unrolling body, with every per-depth SAT query routed
/// through [`sat::Solver::solve_budgeted`] under `effort`. Exhaustion at
/// any depth short-circuits the obligation to
/// [`Verdict::Unknown`]`(`[`UnknownReason::BudgetExhausted`]`)` — a
/// partial sweep is not `NoViolationUpTo(bound)`. With an unbounded
/// effort this is exactly the historical [`check_instrumented`]
/// behaviour.
fn check_effort(
    rtl: &Rtl,
    property: &Property,
    bound: u32,
    effort: &exec::Effort,
    instrument: &telemetry::SharedInstrument,
) -> Verdict {
    // One solver serves every depth: deepening from k to k+1 only adds
    // clauses for the new frame, and `solve_under_assumptions` keeps the
    // learnt clauses and activity from depth k's run. The counter makes
    // the contrast with a per-depth rebuild (bound + 1 constructions)
    // observable in benchmarks.
    instrument.counter_add("bmc.solver_constructions", 1);
    let mut unroller = Unroller::new(rtl, InitMode::Reset);
    if instrument.enabled() {
        unroller
            .ctx
            .builder_mut()
            .set_instrument(instrument.clone());
    }
    match property {
        Property::Invariant { expr, .. } => {
            for k in 0..=bound {
                unroller.ensure_frames(k as usize);
                let phi = unroller.compile_expr(expr, k as usize);
                instrument.gauge_set("bmc.depth", k as u64, k as i64);
                instrument.counter_add("bmc.sat_calls", 1);
                match unroller
                    .ctx
                    .builder_mut()
                    .solve_budgeted(&[!phi], effort)
                    .decided()
                {
                    None => return Verdict::Unknown(UnknownReason::BudgetExhausted),
                    Some(r) if r.is_sat() => {
                        instrument.counter_add("bmc.violations", 1);
                        let trace = unroller.extract_trace(k as usize);
                        return Verdict::Violated(trace);
                    }
                    Some(_) => {}
                }
            }
            Verdict::NoViolationUpTo(bound)
        }
        Property::Response {
            trigger,
            response,
            within,
            ..
        } => {
            // A violation at trigger cycle i needs frames up to i + within.
            for i in 0..=bound {
                let window_end = i as usize + *within as usize;
                if window_end > bound as usize {
                    break;
                }
                unroller.ensure_frames(window_end);
                let trig = unroller.compile_expr(trigger, i as usize);
                let mut assumptions = vec![trig];
                for j in i as usize..=window_end {
                    let resp = unroller.compile_expr(response, j);
                    assumptions.push(!resp);
                }
                instrument.gauge_set("bmc.depth", i as u64, window_end as i64);
                instrument.counter_add("bmc.sat_calls", 1);
                match unroller
                    .ctx
                    .builder_mut()
                    .solve_budgeted(&assumptions, effort)
                    .decided()
                {
                    None => return Verdict::Unknown(UnknownReason::BudgetExhausted),
                    Some(r) if r.is_sat() => {
                        instrument.counter_add("bmc.violations", 1);
                        let trace = unroller.extract_trace(window_end);
                        return Verdict::Violated(trace);
                    }
                    Some(_) => {}
                }
            }
            Verdict::NoViolationUpTo(bound)
        }
    }
}

/// [`check_instrumented`] backed by the obligation cache: a hit returns
/// the stored verdict (counterexample trace included) without building a
/// solver; a miss runs the engine and stores the result. Hits and misses
/// are surfaced both on the cache's own [`cache::CacheStats`] and as
/// `cache.hits` / `cache.misses` telemetry counters.
///
/// Passing [`cache::noop()`] makes this byte-identical to
/// [`check_instrumented`] — the fingerprint is not even computed.
pub fn check_cached(
    rtl: &Rtl,
    property: &Property,
    bound: u32,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Verdict {
    if !cache.is_enabled() {
        return check_instrumented(rtl, property, bound, instrument);
    }
    let fp = crate::obligation::fingerprint("bmc", rtl, property, &[u64::from(bound)]);
    if let Some(payload) = cache.lookup_tagged("bmc", fp) {
        if let Some(verdict) = crate::cachefmt::decode_verdict(rtl, &payload) {
            instrument.counter_add("cache.hits", 1);
            return verdict;
        }
    }
    instrument.counter_add("cache.misses", 1);
    let verdict = check_instrumented(rtl, property, bound, instrument);
    cache.insert_tagged("bmc", fp, crate::cachefmt::encode_verdict(&verdict));
    verdict
}

/// [`check_cached`] under a deterministic SAT effort budget. The cache
/// fingerprint is the *standard* one (engine `"bmc"`, parameter `bound` —
/// no budget axis), so conclusive verdicts flow freely between budgeted
/// and unbudgeted callers. Budget-exhausted verdicts are never inserted:
/// they describe the budget, not the obligation, and a retry with more
/// effort may decide them.
pub fn check_budgeted(
    rtl: &Rtl,
    property: &Property,
    bound: u32,
    effort: &exec::Effort,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Verdict {
    if !effort.bounds_sat() {
        return check_cached(rtl, property, bound, instrument, cache);
    }
    if !cache.is_enabled() {
        return check_effort(rtl, property, bound, effort, instrument);
    }
    let fp = crate::obligation::fingerprint("bmc", rtl, property, &[u64::from(bound)]);
    if let Some(payload) = cache.lookup_tagged("bmc", fp) {
        if let Some(verdict) = crate::cachefmt::decode_verdict(rtl, &payload) {
            instrument.counter_add("cache.hits", 1);
            return verdict;
        }
    }
    instrument.counter_add("cache.misses", 1);
    let verdict = check_effort(rtl, property, bound, effort, instrument);
    if !verdict.is_budget_exhausted() {
        cache.insert_tagged("bmc", fp, crate::cachefmt::encode_verdict(&verdict));
    }
    verdict
}

/// Checks each property as an independent obligation, optionally across
/// worker threads ([`exec::ExecMode::Parallel`]). Verdicts — including
/// counterexample traces — are bit-identical to running
/// [`check_instrumented`] over the slice sequentially: every obligation
/// builds its own unroller and solver from the same deterministic inputs,
/// so the schedule cannot influence the result.
///
/// Telemetry: each obligation records into a private
/// [`telemetry::Collector`], and the collectors are replayed into
/// `instrument` in property order after all obligations finish, so the
/// merged counters/gauges/histograms match the sequential stream
/// regardless of which worker finished first.
pub fn check_many(
    rtl: &Rtl,
    properties: &[Property],
    bound: u32,
    mode: exec::ExecMode,
    instrument: &telemetry::SharedInstrument,
) -> Vec<Verdict> {
    check_many_cached(rtl, properties, bound, mode, instrument, cache::noop())
}

/// [`check_many`] backed by the obligation cache shared across workers
/// (the store is lock-striped, so parallel obligations look up and insert
/// concurrently). Within one call every obligation is distinct, so the
/// hit/miss split is deterministic for a given starting cache regardless
/// of the worker schedule.
pub fn check_many_cached(
    rtl: &Rtl,
    properties: &[Property],
    bound: u32,
    mode: exec::ExecMode,
    instrument: &telemetry::SharedInstrument,
    cache: &cache::ObligationCache,
) -> Vec<Verdict> {
    let enabled = instrument.enabled();
    let jobs: Vec<usize> = (0..properties.len()).collect();
    let results = exec::map(mode, jobs, |_, pi| {
        let property = &properties[pi];
        if !enabled {
            return (
                check_cached(rtl, property, bound, &telemetry::noop(), cache),
                None,
            );
        }
        let local = std::rc::Rc::new(telemetry::Collector::new());
        let shared: telemetry::SharedInstrument = local.clone();
        let verdict = check_cached(rtl, property, bound, &shared, cache);
        drop(shared);
        let collector =
            std::rc::Rc::try_unwrap(local).expect("obligation dropped every instrument handle");
        (verdict, Some(collector))
    });
    results
        .into_iter()
        .map(|(verdict, collector)| {
            if let Some(c) = collector {
                c.replay_into(instrument.as_ref());
            }
            verdict
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::BoolExpr;
    use behav::BinOp;
    use hdl::fsm::bus_wrapper_fsm;
    use hdl::Rtl;

    /// Free-running 3-bit counter.
    fn counter() -> Rtl {
        let mut rtl = Rtl::new("counter");
        let q = rtl.reg("q", 3, 0);
        let one = rtl.constant(1, 3);
        let inc = rtl.binary(BinOp::Add, q, one);
        rtl.set_next(q, inc);
        rtl.output("q", q);
        rtl
    }

    #[test]
    fn finds_counter_reaching_value() {
        // "q != 5" is violated exactly at cycle 5.
        let p = Property::invariant("never5", BoolExpr::ne("q", 5));
        match check(&counter(), &p, 10) {
            Verdict::Violated(trace) => {
                assert_eq!(trace.len(), 6); // cycles 0..=5
                let last = trace.frames.last().unwrap();
                assert_eq!(last.outputs[0], ("q".to_owned(), 5));
                // Check the whole trace is the counting sequence.
                for (i, f) in trace.frames.iter().enumerate() {
                    assert_eq!(f.outputs[0].1, i as u64);
                }
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn instrumented_check_reports_depth_progress() {
        let collector = telemetry::Collector::shared();
        let instr: telemetry::SharedInstrument = collector.clone();
        let p = Property::invariant("never5", BoolExpr::ne("q", 5));
        let verdict = check_instrumented(&counter(), &p, 10, &instr);
        assert!(matches!(verdict, Verdict::Violated(_)));
        // Depths 0..=5 were explored, one SAT call each.
        assert_eq!(collector.counter("bmc.sat_calls"), 6);
        assert_eq!(collector.counter("bmc.violations"), 1);
        let depths = collector.gauge_series("bmc.depth");
        assert_eq!(depths.len(), 6);
        assert_eq!(depths.last(), Some(&(5, 5)));
        // The underlying SAT solver flushed its own counters too.
        assert_eq!(collector.counter("sat.solve_calls"), 6);
    }

    #[test]
    fn check_many_matches_sequential_bit_for_bit() {
        let rtl = counter();
        let properties = vec![
            Property::invariant("never5", BoolExpr::ne("q", 5)),
            Property::invariant("in_range", BoolExpr::le("q", 7)),
            Property::invariant("never3", BoolExpr::ne("q", 3)),
        ];

        // Sequential reference with full instrumentation.
        let seq_collector = telemetry::Collector::shared();
        let seq_instr: telemetry::SharedInstrument = seq_collector.clone();
        let reference: Vec<Verdict> = properties
            .iter()
            .map(|p| check_instrumented(&rtl, p, 10, &seq_instr))
            .collect();

        for mode in [
            exec::ExecMode::Sequential,
            exec::ExecMode::Parallel { workers: 2 },
            exec::ExecMode::Parallel { workers: 8 },
        ] {
            let collector = telemetry::Collector::shared();
            let instr: telemetry::SharedInstrument = collector.clone();
            let verdicts = check_many(&rtl, &properties, 10, mode, &instr);
            // Verdicts (including full counterexample traces) identical.
            assert_eq!(verdicts, reference, "mode {mode:?}");
            // Merged telemetry reproduces the sequential keyed state.
            assert_eq!(collector.counters(), seq_collector.counters());
            assert_eq!(collector.gauges(), seq_collector.gauges());
        }
    }

    #[test]
    fn bound_too_small_misses_violation() {
        let p = Property::invariant("never5", BoolExpr::ne("q", 5));
        assert_eq!(check(&counter(), &p, 4), Verdict::NoViolationUpTo(4));
    }

    #[test]
    fn true_invariant_has_no_violation() {
        let p = Property::invariant("in_range", BoolExpr::le("q", 7));
        assert_eq!(check(&counter(), &p, 12), Verdict::NoViolationUpTo(12));
    }

    #[test]
    fn response_holds_on_bus_wrapper() {
        // In the wrapper, bus_req=1 is always followed by done=1 within 3
        // cycles *provided* ack arrives; with free inputs ack may never
        // come, so this property must be violated (ack stuck low).
        let rtl = bus_wrapper_fsm("w");
        let p = Property::response(
            "req_done",
            BoolExpr::eq("bus_req", 1),
            BoolExpr::eq("done", 1),
            3,
        );
        match check(&rtl, &p, 8) {
            Verdict::Violated(trace) => {
                // The witness must keep ack low within the window.
                assert!(trace
                    .frames
                    .iter()
                    .any(|f| f.outputs.iter().any(|(n, v)| n == "bus_req" && *v == 1)));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn response_with_helpful_environment() {
        // Constrain ack = bus_req by construction: tie ack input to the
        // request output through the model itself (a closed system).
        let mut b = hdl::fsm::FsmBuilder::new("closed");
        let idle = b.state("IDLE");
        let req = b.state("REQ");
        let done = b.state("DONE");
        let start = b.input("start");
        b.transition(idle, vec![(start, true)], req);
        b.transition(req, vec![], done);
        b.transition(done, vec![], idle);
        b.moore_output("busy", 1, &[0, 1, 0]);
        b.moore_output("done", 1, &[0, 0, 1]);
        let rtl = b.build();
        let p = Property::response(
            "busy_done",
            BoolExpr::eq("busy", 1),
            BoolExpr::eq("done", 1),
            1,
        );
        assert_eq!(check(&rtl, &p, 8), Verdict::NoViolationUpTo(8));
    }

    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    #[test]
    fn budgeted_check_degrades_deterministically_and_skips_the_cache() {
        let p = Property::invariant("never5", BoolExpr::ne("q", 5));
        let cache = cache::ObligationCache::new();
        let starve = exec::Effort {
            sat_conflicts: None,
            sat_decisions: Some(0),
            bdd_nodes: None,
        };
        for _ in 0..2 {
            // Deterministic on every run, and never cached.
            assert_eq!(
                check_budgeted(&counter(), &p, 10, &starve, &telemetry::noop(), &cache),
                Verdict::Unknown(UnknownReason::BudgetExhausted)
            );
        }
        assert_eq!(cache.stats().misses, 2);
        // Conclusive budgeted verdicts land in the standard-fingerprint
        // entry that unbudgeted callers share.
        let generous = exec::Effort::bounded(10_000);
        let budgeted = check_budgeted(&counter(), &p, 10, &generous, &telemetry::noop(), &cache);
        assert!(budgeted.is_violated());
        assert_eq!(
            check_cached(&counter(), &p, 10, &telemetry::noop(), &cache),
            budgeted
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn state_invariant_on_fsm() {
        let rtl = bus_wrapper_fsm("w");
        // Encoded states are 0..=3 — state ≤ 3 always.
        let p = Property::invariant("state_range", BoolExpr::le("state", 3));
        assert_eq!(check(&rtl, &p, 10), Verdict::NoViolationUpTo(10));
    }
}
