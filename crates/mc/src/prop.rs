//! The property language.
//!
//! Properties are boolean formulas over the *named outputs* of an RTL
//! module, wrapped in one of two temporal templates: invariants (`G φ`) and
//! bounded response (`G (trigger → F≤k response)`). This matches the
//! safety/bounded-liveness style industrial checkers of the paper's era
//! (RuleBase) applied to interface correctness.

/// Comparison operator of an [`Atom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
}

impl Cmp {
    /// Applies the comparison to concrete values.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
        }
    }
}

/// An atomic proposition: a named RTL output compared with a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Output name (must exist on the checked module).
    pub output: String,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Constant to compare with.
    pub value: u64,
}

/// A boolean formula over atoms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolExpr {
    /// A constant.
    Const(bool),
    /// An atomic comparison.
    Atom(Atom),
    /// Negation.
    Not(Box<BoolExpr>),
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Implication.
    Implies(Box<BoolExpr>, Box<BoolExpr>),
}

impl BoolExpr {
    /// Atom shorthand: `output == value`.
    pub fn eq(output: &str, value: u64) -> BoolExpr {
        BoolExpr::Atom(Atom {
            output: output.to_owned(),
            cmp: Cmp::Eq,
            value,
        })
    }

    /// Atom shorthand: `output != value`.
    pub fn ne(output: &str, value: u64) -> BoolExpr {
        BoolExpr::Atom(Atom {
            output: output.to_owned(),
            cmp: Cmp::Ne,
            value,
        })
    }

    /// Atom shorthand: `output < value`.
    pub fn lt(output: &str, value: u64) -> BoolExpr {
        BoolExpr::Atom(Atom {
            output: output.to_owned(),
            cmp: Cmp::Lt,
            value,
        })
    }

    /// Atom shorthand: `output <= value`.
    pub fn le(output: &str, value: u64) -> BoolExpr {
        BoolExpr::Atom(Atom {
            output: output.to_owned(),
            cmp: Cmp::Le,
            value,
        })
    }

    /// Atom shorthand: `output > value`.
    pub fn gt(output: &str, value: u64) -> BoolExpr {
        BoolExpr::Atom(Atom {
            output: output.to_owned(),
            cmp: Cmp::Gt,
            value,
        })
    }

    /// Atom shorthand: `output >= value`.
    pub fn ge(output: &str, value: u64) -> BoolExpr {
        BoolExpr::Atom(Atom {
            output: output.to_owned(),
            cmp: Cmp::Ge,
            value,
        })
    }

    /// Negation combinator.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: BoolExpr) -> BoolExpr {
        BoolExpr::Not(Box::new(e))
    }

    /// Conjunction combinator.
    pub fn and(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        BoolExpr::And(Box::new(a), Box::new(b))
    }

    /// Disjunction combinator.
    pub fn or(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        BoolExpr::Or(Box::new(a), Box::new(b))
    }

    /// Implication combinator.
    pub fn implies(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        BoolExpr::Implies(Box::new(a), Box::new(b))
    }

    /// Evaluates over one cycle's named output values.
    ///
    /// # Panics
    ///
    /// Panics if an atom references an output missing from `outputs` —
    /// property/module mismatches are configuration errors.
    pub fn eval(&self, outputs: &[(String, u64)]) -> bool {
        match self {
            BoolExpr::Const(b) => *b,
            BoolExpr::Atom(a) => {
                let v = outputs
                    .iter()
                    .find(|(n, _)| n == &a.output)
                    .unwrap_or_else(|| panic!("no output named `{}`", a.output))
                    .1;
                a.cmp.eval(v, a.value)
            }
            BoolExpr::Not(e) => !e.eval(outputs),
            BoolExpr::And(a, b) => a.eval(outputs) && b.eval(outputs),
            BoolExpr::Or(a, b) => a.eval(outputs) || b.eval(outputs),
            BoolExpr::Implies(a, b) => !a.eval(outputs) || b.eval(outputs),
        }
    }
}

/// A temporal property over an RTL module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Property {
    /// `G expr` — the formula holds in every reachable state, for every
    /// input valuation.
    Invariant {
        /// Property name for reports.
        name: String,
        /// The invariant formula.
        expr: BoolExpr,
    },
    /// `G (trigger → F≤within response)` — whenever `trigger` holds,
    /// `response` holds within `within` cycles (inclusive of the trigger
    /// cycle itself when `within = 0`).
    Response {
        /// Property name for reports.
        name: String,
        /// Antecedent.
        trigger: BoolExpr,
        /// Consequent that must follow.
        response: BoolExpr,
        /// Window length in cycles.
        within: u32,
    },
}

impl Property {
    /// Invariant constructor.
    pub fn invariant(name: &str, expr: BoolExpr) -> Property {
        Property::Invariant {
            name: name.to_owned(),
            expr,
        }
    }

    /// Bounded-response constructor.
    pub fn response(name: &str, trigger: BoolExpr, response: BoolExpr, within: u32) -> Property {
        Property::Response {
            name: name.to_owned(),
            trigger,
            response,
            within,
        }
    }

    /// The property name.
    pub fn name(&self) -> &str {
        match self {
            Property::Invariant { name, .. } | Property::Response { name, .. } => name,
        }
    }

    /// Checks the property on a concrete output trace (one `(name, value)`
    /// list per cycle). Used for simulation-based checking and by the
    /// property-coverage checker.
    ///
    /// For response properties only complete windows are judged: a trigger
    /// too close to the end of the trace is not reported as a violation.
    pub fn holds_on_trace(&self, trace: &[Vec<(String, u64)>]) -> bool {
        match self {
            Property::Invariant { expr, .. } => trace.iter().all(|frame| expr.eval(frame)),
            Property::Response {
                trigger,
                response,
                within,
                ..
            } => {
                for i in 0..trace.len() {
                    if trigger.eval(&trace[i]) {
                        let window_end = i + *within as usize;
                        if window_end >= trace.len() {
                            continue; // incomplete window: not judged
                        }
                        let answered = (i..=window_end).any(|j| response.eval(&trace[j]));
                        if !answered {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|&(n, v)| (n.to_owned(), v)).collect()
    }

    #[test]
    fn cmp_eval() {
        assert!(Cmp::Eq.eval(3, 3));
        assert!(Cmp::Ne.eval(3, 4));
        assert!(Cmp::Lt.eval(3, 4));
        assert!(Cmp::Le.eval(4, 4));
        assert!(Cmp::Gt.eval(5, 4));
        assert!(Cmp::Ge.eval(4, 4));
        assert!(!Cmp::Lt.eval(4, 4));
    }

    #[test]
    fn bool_expr_eval() {
        let outs = frame(&[("x", 5), ("y", 0)]);
        assert!(BoolExpr::eq("x", 5).eval(&outs));
        assert!(BoolExpr::not(BoolExpr::eq("x", 6)).eval(&outs));
        assert!(BoolExpr::and(BoolExpr::ge("x", 5), BoolExpr::eq("y", 0)).eval(&outs));
        assert!(BoolExpr::or(BoolExpr::eq("x", 9), BoolExpr::eq("y", 0)).eval(&outs));
        // x=5 → y=0 holds; x=5 → y=1 fails.
        assert!(BoolExpr::implies(BoolExpr::eq("x", 5), BoolExpr::eq("y", 0)).eval(&outs));
        assert!(!BoolExpr::implies(BoolExpr::eq("x", 5), BoolExpr::eq("y", 1)).eval(&outs));
        assert!(BoolExpr::Const(true).eval(&outs));
    }

    #[test]
    #[should_panic(expected = "no output named")]
    fn missing_output_panics() {
        BoolExpr::eq("ghost", 0).eval(&frame(&[("x", 1)]));
    }

    #[test]
    fn invariant_on_trace() {
        let p = Property::invariant("x_small", BoolExpr::le("x", 3));
        let good = vec![frame(&[("x", 1)]), frame(&[("x", 3)])];
        let bad = vec![frame(&[("x", 1)]), frame(&[("x", 4)])];
        assert!(p.holds_on_trace(&good));
        assert!(!p.holds_on_trace(&bad));
    }

    #[test]
    fn response_on_trace() {
        let p = Property::response("req_ack", BoolExpr::eq("req", 1), BoolExpr::eq("ack", 1), 2);
        // req at cycle 0, ack at cycle 2: within window.
        let good = vec![
            frame(&[("req", 1), ("ack", 0)]),
            frame(&[("req", 0), ("ack", 0)]),
            frame(&[("req", 0), ("ack", 1)]),
        ];
        assert!(p.holds_on_trace(&good));
        // req at cycle 0, no ack by cycle 2: violated.
        let bad = vec![
            frame(&[("req", 1), ("ack", 0)]),
            frame(&[("req", 0), ("ack", 0)]),
            frame(&[("req", 0), ("ack", 0)]),
        ];
        assert!(!p.holds_on_trace(&bad));
        // Trigger near the end: window incomplete, not judged.
        let truncated = vec![frame(&[("req", 1), ("ack", 0)])];
        assert!(p.holds_on_trace(&truncated));
    }

    #[test]
    fn property_names() {
        assert_eq!(
            Property::invariant("p1", BoolExpr::Const(true)).name(),
            "p1"
        );
        assert_eq!(
            Property::response("p2", BoolExpr::Const(true), BoolExpr::Const(true), 1).name(),
            "p2"
        );
    }
}
