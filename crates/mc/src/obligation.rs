//! Content-addressing of model-checking obligations.
//!
//! An obligation is `(engine, netlist, property, parameters)`. The
//! fingerprint hashes the netlist *as the engines see it*: one time frame
//! is unrolled with free state (`InitMode::Free`), so the full
//! transition-relation and output logic appears in the CNF instead of
//! being constant-folded against reset values, and the frame's interface
//! literal vectors (inputs, state, outputs, next-state, property roots)
//! are mixed in alongside the canonicalised clauses. The interface
//! literals matter: a PCC mutant whose stuck bit simplifies to a constant
//! can leave the clause set unchanged while rewiring an output to the
//! constant literal — the literal vectors are where that difference
//! lives. Two netlists that agree on all of this have identical frame-0
//! behaviour and, the transition function being the same every frame,
//! identical behaviour at every depth — so sharing a cache entry between
//! them is exact, not heuristic.

use crate::prop::Property;
use crate::unrolling::{InitMode, Unroller};
use hdl::Rtl;
use sat::Lit;

/// Fingerprints one `(engine, rtl, property, params)` obligation.
///
/// `engine` distinguishes entry points with different verdict encodings
/// (`"bmc"`, `"induction"`, `"reach"`, `"pcc.fails_on"`); `params` carries
/// the engine's numeric knobs (bounds, k). Reset values participate even
/// though the frame is unrolled state-free, so designs differing only in
/// reset state never share an entry.
pub fn fingerprint(
    engine: &str,
    rtl: &Rtl,
    property: &Property,
    params: &[u64],
) -> cache::Fingerprint {
    let mut unroller = Unroller::new(rtl, InitMode::Free);
    unroller.ensure_frames(0);

    // Property structure enters through its compiled frame-0 roots (the
    // name is deliberately excluded: renaming a property must not split
    // the cache entry). Response windows are structural too.
    let (roots, window): (Vec<Lit>, u64) = match property {
        Property::Invariant { expr, .. } => (vec![unroller.compile_expr(expr, 0)], 0),
        Property::Response {
            trigger,
            response,
            within,
            ..
        } => (
            vec![
                unroller.compile_expr(trigger, 0),
                unroller.compile_expr(response, 0),
            ],
            u64::from(*within),
        ),
    };

    let frame = &unroller.frames[0];
    let iface: Vec<Lit> = frame
        .input_lits
        .iter()
        .chain(frame.state_lits.iter())
        .chain(frame.next_state.iter())
        .chain(frame.outputs.iter().map(|(_, bits)| bits))
        .flatten()
        .copied()
        .collect();
    let cnf = unroller.ctx.builder_mut().solver().export_cnf();

    cache::FingerprintBuilder::new(engine)
        .params(params)
        .param(window)
        .params(&rtl.reset_state())
        .lits(&iface)
        .lits(&roots)
        .cnf(&cnf)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::BoolExpr;
    use behav::BinOp;

    fn counter(modulus: u64) -> Rtl {
        let mut rtl = Rtl::new("modc");
        let q = rtl.reg("q", 3, 0);
        let one = rtl.constant(1, 3);
        let maxc = rtl.constant(modulus - 1, 3);
        let zero = rtl.constant(0, 3);
        let inc = rtl.binary(BinOp::Add, q, one);
        let at_max = rtl.binary(BinOp::Eq, q, maxc);
        let next = rtl.mux(at_max, zero, inc);
        rtl.set_next(q, next);
        rtl.output("q", q);
        rtl
    }

    #[test]
    fn fingerprints_are_reproducible() {
        let p = Property::invariant("lt5", BoolExpr::lt("q", 5));
        let a = fingerprint("bmc", &counter(5), &p, &[10]);
        let b = fingerprint("bmc", &counter(5), &p, &[10]);
        assert_eq!(a, b);
    }

    #[test]
    fn renaming_a_property_shares_the_entry() {
        let a = Property::invariant("lt5", BoolExpr::lt("q", 5));
        let b = Property::invariant("other_name", BoolExpr::lt("q", 5));
        let rtl = counter(5);
        assert_eq!(
            fingerprint("bmc", &rtl, &a, &[10]),
            fingerprint("bmc", &rtl, &b, &[10])
        );
    }

    #[test]
    fn distinct_obligations_separate() {
        let p = Property::invariant("lt5", BoolExpr::lt("q", 5));
        let q = Property::invariant("lt5", BoolExpr::lt("q", 4));
        let rtl = counter(5);
        let base = fingerprint("bmc", &rtl, &p, &[10]);
        assert_ne!(fingerprint("bmc", &rtl, &q, &[10]), base, "property");
        assert_ne!(fingerprint("bmc", &rtl, &p, &[11]), base, "bound");
        assert_ne!(fingerprint("reach", &rtl, &p, &[10]), base, "engine");
        assert_ne!(fingerprint("bmc", &counter(6), &p, &[10]), base, "netlist");
    }

    #[test]
    fn mutants_get_their_own_entries() {
        // Every stuck bit — including output bits that constant-fold —
        // must change the fingerprint, or PCC would reuse the fault-free
        // verdict for a mutant.
        let rtl = counter(5);
        let p = Property::invariant("lt5", BoolExpr::lt("q", 5));
        let base = fingerprint("pcc.fails_on", &rtl, &p, &[10]);
        let mut seen = std::collections::HashSet::new();
        seen.insert(base);
        for reg_bit in 0..3u32 {
            for stuck in [false, true] {
                let mut m = rtl.clone();
                let (r, next) = m.registers()[0];
                let w = m.width(next);
                let faulty = if stuck {
                    let mask = m.constant(1 << reg_bit, w);
                    m.binary(BinOp::Or, next, mask)
                } else {
                    let mask = m.constant(0b111 & !(1 << reg_bit), w);
                    m.binary(BinOp::And, next, mask)
                };
                m.set_next(r, faulty);
                assert!(
                    seen.insert(fingerprint("pcc.fails_on", &m, &p, &[10])),
                    "mutant reg bit {reg_bit} stuck_at {stuck} collided"
                );
            }
        }
    }
}
