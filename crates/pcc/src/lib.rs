//! PCC: the property coverage checker.
//!
//! "How many properties should the verification engineer define to
//! completely check the implementation?" (§3.4). Following the paper's
//! reference \[13\] (Fedeli et al., MEMOCODE 2003), PCC answers by mixing
//! functional and formal verification: a *high-level fault* is injected
//! into the RTL, and the property set **covers** the fault iff at least one
//! property — all of which hold on the fault-free design — fails on the
//! mutant. Faults that no property kills expose behaviour the property set
//! does not constrain; the flow then demands more properties and repeats
//! until no refinement is possible.
//!
//! The fault model mirrors the bit-level high-level faults used by the
//! ATPG: stuck-at-0/1 on every register next-state bit and every output
//! bit.
//!
//! Caveat: a mutant can be functionally equivalent to the original (e.g. a
//! stuck bit that never differs); such faults are inherently uncoverable
//! and show up in the uncovered list — exactly as in the original PCC,
//! where they require manual review.

use behav::BinOp;
use hdl::{Rtl, SigId};
use mc::prop::Property;
use mc::{bmc, reach, Verdict};

/// One injectable fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtlFault {
    /// Stuck bit on a register's next-state function.
    NextState {
        /// Register index (registration order).
        reg: usize,
        /// Bit position.
        bit: u32,
        /// Stuck value.
        stuck_at: bool,
    },
    /// Stuck bit on a declared output.
    Output {
        /// Output index (declaration order).
        output: usize,
        /// Bit position.
        bit: u32,
        /// Stuck value.
        stuck_at: bool,
    },
}

/// Enumerates the full fault list of a netlist.
pub fn enumerate_faults(rtl: &Rtl) -> Vec<RtlFault> {
    let mut faults = Vec::new();
    for (i, &(r, _)) in rtl.registers().iter().enumerate() {
        for bit in 0..rtl.width(r) {
            for stuck_at in [false, true] {
                faults.push(RtlFault::NextState {
                    reg: i,
                    bit,
                    stuck_at,
                });
            }
        }
    }
    for (i, &(_, sig)) in rtl.outputs().iter().enumerate() {
        for bit in 0..rtl.width(sig) {
            for stuck_at in [false, true] {
                faults.push(RtlFault::Output {
                    output: i,
                    bit,
                    stuck_at,
                });
            }
        }
    }
    faults
}

fn stuck(rtl: &mut Rtl, sig: SigId, bit: u32, stuck_at: bool) -> SigId {
    let w = rtl.width(sig);
    if stuck_at {
        let m = rtl.constant(1u64 << bit, w);
        rtl.binary(BinOp::Or, sig, m)
    } else {
        let full = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let m = rtl.constant(full & !(1u64 << bit), w);
        rtl.binary(BinOp::And, sig, m)
    }
}

/// Builds the mutant netlist for one fault.
pub fn mutant(rtl: &Rtl, fault: RtlFault) -> Rtl {
    let mut m = rtl.clone();
    match fault {
        RtlFault::NextState { reg, bit, stuck_at } => {
            let (r, next) = m.registers()[reg];
            let faulty = stuck(&mut m, next, bit, stuck_at);
            m.set_next(r, faulty);
        }
        RtlFault::Output {
            output,
            bit,
            stuck_at,
        } => {
            let (name, sig) = m.outputs()[output].clone();
            let faulty = stuck(&mut m, sig, bit, stuck_at);
            m.replace_output(&name, faulty);
        }
    }
    m
}

/// PCC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PccConfig {
    /// BMC bound used for response properties (and for mutants whose state
    /// space is too wide for exact reachability).
    pub bmc_bound: u32,
}

impl Default for PccConfig {
    fn default() -> Self {
        PccConfig { bmc_bound: 16 }
    }
}

/// Errors raised before coverage is even attempted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PccError {
    /// A property already fails on the fault-free design: fix the design or
    /// the property before measuring coverage.
    PropertyFailsOnGoodDesign {
        /// Name of the failing property.
        property: String,
    },
}

impl std::fmt::Display for PccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PccError::PropertyFailsOnGoodDesign { property } => {
                write!(f, "property `{property}` fails on the fault-free design")
            }
        }
    }
}

impl std::error::Error for PccError {}

/// Result of a PCC run.
#[derive(Debug, Clone, PartialEq)]
pub struct PccReport {
    /// Total faults injected.
    pub total: usize,
    /// Faults killed by at least one property.
    pub covered: usize,
    /// Faults no property killed — the unconstrained behaviour.
    pub uncovered: Vec<RtlFault>,
    /// Kill counts per property name.
    pub per_property: Vec<(String, usize)>,
}

impl PccReport {
    /// Property-coverage percentage.
    pub fn pct(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.covered as f64 / self.total as f64
        }
    }
}

/// Whether a property fails (is violated) on a design.
///
/// Invariants use the exact BDD engine when the state space is small
/// enough; response properties are compiled to saturating-counter monitors
/// ([`mc::monitor`]) and decided exactly the same way. BMC at the
/// configured bound is the fallback for wide designs — conservative in the
/// uncovered direction (a violation deeper than the bound counts as "not
/// killed").
/// [`fails_on`] backed by the obligation cache (engine tag
/// `"pcc.fails_on"`, parameter `bmc_bound`). Caching at this granularity
/// — one boolean per `(mutant, property)` pair — lets a rerun of the
/// coverage loop skip every already-decided mutant, and lets the initial
/// property set's obligations be reused verbatim when coverage is
/// re-measured with an extended set (the extension only adds *new*
/// `(mutant, property)` pairs).
fn fails_on_cached(
    rtl: &Rtl,
    property: &Property,
    cfg: &PccConfig,
    cache: &cache::ObligationCache,
) -> bool {
    if !cache.is_enabled() {
        return fails_on(rtl, property, cfg);
    }
    let fp =
        mc::obligation::fingerprint("pcc.fails_on", rtl, property, &[u64::from(cfg.bmc_bound)]);
    if let Some(payload) = cache.lookup_tagged("pcc.fails_on", fp) {
        if let Some(fails) = cache::decode_bool(&payload) {
            return fails;
        }
    }
    let fails = fails_on(rtl, property, cfg);
    cache.insert_tagged("pcc.fails_on", fp, cache::encode_bool(fails));
    fails
}

fn fails_on(rtl: &Rtl, property: &Property, cfg: &PccConfig) -> bool {
    match property {
        Property::Invariant { .. } if rtl.state_bits() <= 24 => {
            matches!(reach::check(rtl, property), Verdict::Violated(_))
        }
        Property::Response { .. } if rtl.state_bits() <= 20 => {
            let (aug, inv) = mc::monitor::compile_response_monitor(rtl, property);
            if aug.state_bits() <= 24 {
                matches!(reach::check(&aug, &inv), Verdict::Violated(_))
            } else {
                matches!(
                    bmc::check(rtl, property, cfg.bmc_bound),
                    Verdict::Violated(_)
                )
            }
        }
        _ => matches!(
            bmc::check(rtl, property, cfg.bmc_bound),
            Verdict::Violated(_)
        ),
    }
}

/// Measures the completeness of `properties` against the full fault list.
///
/// # Errors
///
/// Returns [`PccError::PropertyFailsOnGoodDesign`] when any property fails
/// on the unmodified design — coverage of a broken specification is
/// meaningless.
pub fn check_coverage(
    rtl: &Rtl,
    properties: &[Property],
    cfg: &PccConfig,
) -> Result<PccReport, PccError> {
    check_coverage_mode(rtl, properties, cfg, exec::ExecMode::Sequential)
}

/// [`check_coverage`] with per-fault obligations optionally spread across
/// worker threads. Each fault builds its own mutant and engines, so the
/// report — covered count, uncovered fault list (in enumeration order),
/// per-property kill counts — is bit-identical to the sequential run for
/// every mode.
///
/// # Errors
///
/// As [`check_coverage`]; the *first* failing property (in declaration
/// order) is reported, matching the sequential behaviour.
pub fn check_coverage_mode(
    rtl: &Rtl,
    properties: &[Property],
    cfg: &PccConfig,
    mode: exec::ExecMode,
) -> Result<PccReport, PccError> {
    check_coverage_cached(rtl, properties, cfg, mode, cache::noop())
}

/// [`check_coverage_mode`] backed by the obligation cache: every
/// `(design, property)` decision — good-design pre-check and per-mutant
/// kill checks alike — is looked up before an engine runs and stored
/// after. The report stays bit-identical to the uncached run for any
/// starting cache, because cached payloads are the engines' own verdicts.
///
/// # Errors
///
/// As [`check_coverage`].
pub fn check_coverage_cached(
    rtl: &Rtl,
    properties: &[Property],
    cfg: &PccConfig,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
) -> Result<PccReport, PccError> {
    // Pre-check every property on the fault-free design in parallel, but
    // report the first failure in declaration order (the sequential answer).
    let good_jobs: Vec<usize> = (0..properties.len()).collect();
    let good = exec::map(mode, good_jobs, |_, pi| {
        fails_on_cached(rtl, &properties[pi], cfg, cache)
    });
    if let Some(pi) = good.iter().position(|&fails| fails) {
        return Err(PccError::PropertyFailsOnGoodDesign {
            property: properties[pi].name().to_owned(),
        });
    }
    let faults = enumerate_faults(rtl);
    // One obligation per fault: which properties kill its mutant.
    let kills: Vec<Vec<bool>> = exec::map(mode, faults.clone(), |_, fault| {
        let m = mutant(rtl, fault);
        properties
            .iter()
            .map(|p| fails_on_cached(&m, p, cfg, cache))
            .collect()
    });
    let mut uncovered = Vec::new();
    let mut covered = 0usize;
    let mut per_property = vec![0usize; properties.len()];
    for (&fault, killed_by) in faults.iter().zip(&kills) {
        let mut killed = false;
        for (pi, &kill) in killed_by.iter().enumerate() {
            if kill {
                per_property[pi] += 1;
                killed = true;
            }
        }
        if killed {
            covered += 1;
        } else {
            uncovered.push(fault);
        }
    }
    Ok(PccReport {
        total: faults.len(),
        covered,
        uncovered,
        per_property: properties
            .iter()
            .zip(per_property)
            .map(|(p, c)| (p.name().to_owned(), c))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc::prop::BoolExpr;

    /// Mod-4 counter with an `at_max` flag output.
    fn counter() -> Rtl {
        let mut rtl = Rtl::new("c4");
        let q = rtl.reg("q", 2, 0);
        let one = rtl.constant(1, 2);
        let inc = rtl.binary(BinOp::Add, q, one);
        rtl.set_next(q, inc);
        let three = rtl.constant(3, 2);
        let at_max = rtl.binary(BinOp::Eq, q, three);
        rtl.output("q", q);
        rtl.output("at_max", at_max);
        rtl
    }

    #[test]
    fn fault_list_covers_all_bits() {
        let rtl = counter();
        let faults = enumerate_faults(&rtl);
        // next-state: 2 bits × 2 + outputs: (2 bits q + 1 bit at_max) × 2.
        assert_eq!(faults.len(), 4 + 6);
    }

    #[test]
    fn mutants_actually_differ_in_simulation() {
        let rtl = counter();
        let fault = RtlFault::NextState {
            reg: 0,
            bit: 0,
            stuck_at: false,
        };
        let m = mutant(&rtl, fault);
        let inputs: Vec<Vec<u64>> = (0..6).map(|_| vec![]).collect();
        let good = rtl.simulate(&inputs);
        let bad = m.simulate(&inputs);
        assert_ne!(good, bad);
    }

    #[test]
    fn weak_property_set_has_low_coverage_then_improves() {
        let rtl = counter();
        let cfg = PccConfig { bmc_bound: 12 };
        // A single weak property: q stays in range (trivially true, even
        // for most mutants, since 2 bits can't exceed 3).
        let weak = vec![Property::invariant("range", BoolExpr::le("q", 3))];
        let weak_report = check_coverage(&rtl, &weak, &cfg).expect("holds on good design");
        // A stronger set pins the q/at_max relationship and the exact
        // counting order via one step-response property per state.
        let mut strong = vec![
            Property::invariant("range", BoolExpr::le("q", 3)),
            Property::invariant(
                "flag_iff_3",
                BoolExpr::and(
                    BoolExpr::implies(BoolExpr::eq("q", 3), BoolExpr::eq("at_max", 1)),
                    BoolExpr::implies(BoolExpr::ne("q", 3), BoolExpr::eq("at_max", 0)),
                ),
            ),
        ];
        for v in 0..4u64 {
            strong.push(Property::response(
                &format!("step_{v}"),
                BoolExpr::eq("q", v),
                BoolExpr::eq("q", (v + 1) % 4),
                1,
            ));
        }
        let strong_report = check_coverage(&rtl, &strong, &cfg).expect("holds on good design");
        assert!(weak_report.pct() < strong_report.pct());
        assert!(
            strong_report.pct() == 100.0,
            "strong set should kill all faults, uncovered: {:?}",
            strong_report.uncovered
        );
        // The weak report names uncovered faults the engineer must address.
        assert!(!weak_report.uncovered.is_empty());
        // Per-property kill counts are reported.
        assert_eq!(strong_report.per_property.len(), 6);
        assert!(strong_report.per_property.iter().any(|(_, c)| *c > 0));
    }

    #[test]
    fn parallel_coverage_report_is_bit_identical() {
        let rtl = counter();
        let cfg = PccConfig { bmc_bound: 12 };
        let properties = vec![
            Property::invariant("range", BoolExpr::le("q", 3)),
            Property::response("step_0", BoolExpr::eq("q", 0), BoolExpr::eq("q", 1), 1),
        ];
        let reference = check_coverage(&rtl, &properties, &cfg).expect("good design");
        for workers in [2, 8] {
            let report = check_coverage_mode(
                &rtl,
                &properties,
                &cfg,
                exec::ExecMode::Parallel { workers },
            )
            .expect("good design");
            assert_eq!(report, reference);
        }
    }

    #[test]
    fn cached_coverage_reruns_without_new_engine_work() {
        let rtl = counter();
        let cfg = PccConfig { bmc_bound: 12 };
        let properties = vec![
            Property::invariant("range", BoolExpr::le("q", 3)),
            Property::response("step_0", BoolExpr::eq("q", 0), BoolExpr::eq("q", 1), 1),
        ];
        let cache = cache::ObligationCache::new();
        let cold =
            check_coverage_cached(&rtl, &properties, &cfg, exec::ExecMode::Sequential, &cache)
                .expect("good design");
        // The cached run decides exactly what the uncached one decides.
        let reference = check_coverage(&rtl, &properties, &cfg).expect("good design");
        assert_eq!(cold, reference);

        let after_cold = cache.stats();
        let obligations = properties.len() * (1 + enumerate_faults(&rtl).len());
        let warm = check_coverage_cached(
            &rtl,
            &properties,
            &cfg,
            exec::ExecMode::Parallel { workers: 4 },
            &cache,
        )
        .expect("good design");
        assert_eq!(warm, cold);
        let after_warm = cache.stats();
        // Every warm obligation hit; none escaped to an engine.
        assert_eq!(after_warm.misses, after_cold.misses);
        assert_eq!(after_warm.hits - after_cold.hits, obligations as u64);
    }

    #[test]
    fn failing_property_on_good_design_is_an_error() {
        let rtl = counter();
        let bad = vec![Property::invariant("wrong", BoolExpr::lt("q", 3))];
        let err = check_coverage(&rtl, &bad, &PccConfig::default()).unwrap_err();
        assert_eq!(
            err,
            PccError::PropertyFailsOnGoodDesign {
                property: "wrong".to_owned()
            }
        );
    }

    #[test]
    fn empty_property_set_covers_nothing() {
        let rtl = counter();
        let report = check_coverage(&rtl, &[], &PccConfig::default()).expect("vacuously ok");
        assert_eq!(report.covered, 0);
        assert_eq!(report.uncovered.len(), report.total);
        assert_eq!(report.pct(), 0.0);
    }
}
