//! The simulation kernel: registration, scheduling, delta cycles.
//!
//! Scheduling is deterministic: within a delta cycle processes run in the
//! order they became runnable; timed wakeups are ordered by `(time,
//! sequence)`. Two runs of the same model always produce identical traces,
//! which is what makes the flow's cross-level trace comparison meaningful.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use crate::event::{EventId, EventSlot};
use crate::fifo::{FifoId, FifoSlot, FifoStats};
use crate::process::{Activation, Process, ProcessCtx, ProcessId};
use crate::signal::{SignalId, SignalSlot};
use crate::stats::Stats;
use crate::time::SimTime;
use crate::trace::Trace;
use telemetry::SharedInstrument;

/// Why a blocked process is parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockReason {
    Time,
    Event(EventId),
    FifoRead(FifoId),
    FifoWrite(FifoId),
    Signal(SignalId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// In the runnable or next-delta queue.
    Queued,
    Blocked(BlockReason),
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Wake {
    Proc(ProcessId),
    Event(EventId),
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunResult {
    /// No activity left and no live process is blocked: normal termination.
    Quiescent,
    /// No activity left but live processes are still blocked on channels,
    /// events or signals — a deadlock. Carries the blocked process names.
    Deadlock(Vec<String>),
    /// The time horizon passed to [`Simulator::run`] was reached first.
    HorizonReached,
}

/// Result of a completed run: the [`RunResult`] plus accumulated [`Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Why the run stopped.
    pub result: RunResult,
    /// Kernel counters for the run.
    pub stats: Stats,
}

impl Outcome {
    /// Whether the run terminated normally with no blocked process.
    pub fn is_quiescent(&self) -> bool {
        matches!(self.result, RunResult::Quiescent)
    }

    /// Whether the run ended in a deadlock.
    pub fn is_deadlock(&self) -> bool {
        matches!(self.result, RunResult::Deadlock(_))
    }
}

/// Errors raised by the kernel itself (as opposed to model-level outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The livelock guard tripped: more polls than the configured limit.
    PollLimitExceeded {
        /// The configured limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PollLimitExceeded { limit } => {
                write!(f, "poll limit of {limit} exceeded (livelock?)")
            }
        }
    }
}

impl std::error::Error for SimError {}

struct ProcEntry<T> {
    body: Option<Box<dyn Process<T>>>,
    name: String,
    state: ProcState,
}

/// The discrete-event simulator.
///
/// Generic over the token type `T` carried by FIFOs, signals and the trace.
/// See the [crate docs](crate) for a complete example.
pub struct Simulator<T = u64> {
    procs: Vec<ProcEntry<T>>,
    fifos: Vec<FifoSlot<T>>,
    signals: Vec<SignalSlot<T>>,
    events: Vec<EventSlot>,
    timed: BinaryHeap<Reverse<(SimTime, u64, Wake)>>,
    runnable: VecDeque<ProcessId>,
    next_delta: VecDeque<ProcessId>,
    now: SimTime,
    seq: u64,
    poll_limit: u64,
    stats: Stats,
    trace: Trace<T>,
    instrument: SharedInstrument,
    /// Stats already flushed to the instrument, so repeated `run` calls on
    /// the same simulator emit deltas rather than double-counting.
    stats_flushed: Stats,
}

impl<T> Default for Simulator<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Simulator<T> {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            procs: Vec::new(),
            fifos: Vec::new(),
            signals: Vec::new(),
            events: Vec::new(),
            timed: BinaryHeap::new(),
            runnable: VecDeque::new(),
            next_delta: VecDeque::new(),
            now: SimTime::ZERO,
            seq: 0,
            poll_limit: u64::MAX,
            stats: Stats::default(),
            trace: Trace::new(),
            instrument: telemetry::noop(),
            stats_flushed: Stats::default(),
        }
    }

    /// Attaches a telemetry instrument. The default is the no-op
    /// instrument, which costs nothing on the kernel's hot paths; attach a
    /// [`telemetry::Collector`] to record kernel counters, per-FIFO depth
    /// gauges and occupancy watermarks.
    pub fn set_instrument(&mut self, instrument: SharedInstrument) {
        self.instrument = instrument;
    }

    /// Emits kernel counters and FIFO watermarks accumulated since the last
    /// flush. Called automatically at the end of every [`Simulator::run`].
    fn flush_telemetry(&mut self) {
        if !self.instrument.enabled() {
            return;
        }
        let d = |new: u64, old: u64| new.saturating_sub(old);
        let i = &self.instrument;
        i.counter_add("sim.polls", d(self.stats.polls, self.stats_flushed.polls));
        i.counter_add(
            "sim.delta_cycles",
            d(self.stats.delta_cycles, self.stats_flushed.delta_cycles),
        );
        i.counter_add(
            "sim.time_steps",
            d(self.stats.time_steps, self.stats_flushed.time_steps),
        );
        i.counter_add(
            "sim.timed_wakeups",
            d(self.stats.timed_wakeups, self.stats_flushed.timed_wakeups),
        );
        i.counter_add(
            "sim.notifications",
            d(self.stats.notifications, self.stats_flushed.notifications),
        );
        i.counter_add(
            "sim.signal_changes",
            d(self.stats.signal_changes, self.stats_flushed.signal_changes),
        );
        for fifo in &self.fifos {
            i.gauge_set(
                &format!("fifo.watermark.{}", fifo.name),
                self.now.ticks(),
                fifo.high_watermark as i64,
            );
            i.record("fifo.high_watermark", fifo.high_watermark as u64);
        }
        self.stats_flushed = self.stats.clone();
    }

    /// Sets the livelock guard: [`Simulator::run`] fails with
    /// [`SimError::PollLimitExceeded`] once more polls than this occur.
    pub fn set_poll_limit(&mut self, limit: u64) {
        self.poll_limit = limit;
    }

    /// Registers a process; it becomes runnable at the start of the run.
    pub fn add_process<P: Process<T> + 'static>(&mut self, process: P) -> ProcessId {
        let id = ProcessId(self.procs.len());
        self.procs.push(ProcEntry {
            name: process.name().to_owned(),
            body: Some(Box::new(process)),
            state: ProcState::Queued,
        });
        self.runnable.push_back(id);
        id
    }

    /// Registers a bounded FIFO channel.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a zero-capacity FIFO can never transfer
    /// a token under blocking semantics.
    pub fn add_fifo(&mut self, name: &str, capacity: usize) -> FifoId {
        assert!(capacity > 0, "fifo `{name}` must have capacity >= 1");
        let id = FifoId(self.fifos.len());
        self.fifos.push(FifoSlot::new(name, capacity));
        id
    }

    /// Registers a signal with an initial committed value.
    pub fn add_signal(&mut self, name: &str, initial: T) -> SignalId {
        let id = SignalId(self.signals.len());
        self.signals.push(SignalSlot::new(name, initial));
        id
    }

    /// Registers a named event.
    pub fn add_event(&mut self, name: &str) -> EventId {
        let id = EventId(self.events.len());
        self.events.push(EventSlot::new(name));
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace<T> {
        &self.trace
    }

    /// Takes ownership of the recorded trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace<T> {
        std::mem::take(&mut self.trace)
    }

    /// Occupancy statistics of every registered FIFO, in registration order.
    pub fn fifo_stats(&self) -> Vec<FifoStats> {
        self.fifos
            .iter()
            .map(|f| FifoStats {
                name: f.name.clone(),
                capacity: f.capacity,
                occupancy: f.queue.len(),
                total_reads: f.total_reads,
                total_writes: f.total_writes,
                high_watermark: f.high_watermark,
            })
            .collect()
    }

    /// Name of a registered process.
    pub fn process_name(&self, pid: ProcessId) -> &str {
        &self.procs[pid.0].name
    }

    /// Name of a registered event.
    pub fn event_name(&self, ev: EventId) -> &str {
        &self.events[ev.0].name
    }

    /// Name of a registered signal.
    pub fn signal_name(&self, sig: SignalId) -> &str {
        &self.signals[sig.0].name
    }

    fn enqueue_runnable(&mut self, pid: ProcessId) {
        if self.procs[pid.0].state != ProcState::Done {
            self.procs[pid.0].state = ProcState::Queued;
            self.runnable.push_back(pid);
        }
    }

    fn schedule_timed(&mut self, at: SimTime, wake: Wake) {
        self.seq += 1;
        self.timed.push(Reverse((at, self.seq, wake)));
    }

    /// Wakes processes whose FIFO wait condition is now satisfiable.
    fn service_fifo(&mut self, fifo: FifoId) {
        let (readable, writable) = {
            let slot = &self.fifos[fifo.0];
            (!slot.queue.is_empty(), slot.queue.len() < slot.capacity)
        };
        if readable {
            let waiters = std::mem::take(&mut self.fifos[fifo.0].read_waiters);
            for pid in waiters {
                self.enqueue_runnable(pid);
            }
        }
        if writable {
            let waiters = std::mem::take(&mut self.fifos[fifo.0].write_waiters);
            for pid in waiters {
                self.enqueue_runnable(pid);
            }
        }
    }

    fn fire_event(&mut self, ev: EventId) {
        self.stats.notifications += 1;
        self.events[ev.0].fired += 1;
        let waiters = std::mem::take(&mut self.events[ev.0].waiters);
        for pid in waiters {
            self.enqueue_runnable(pid);
        }
    }

    fn blocked_process_names(&self) -> Vec<String> {
        self.procs
            .iter()
            .filter(|p| matches!(p.state, ProcState::Blocked(_)))
            .map(|p| p.name.clone())
            .collect()
    }
}

impl<T: PartialEq> Simulator<T> {
    /// Runs the simulation until quiescence, deadlock, or `horizon`.
    ///
    /// The kernel alternates SystemC-style evaluate phases (polling runnable
    /// processes) and update phases (committing signal writes), advancing
    /// time only when no delta activity remains.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PollLimitExceeded`] if the livelock guard set via
    /// [`Simulator::set_poll_limit`] trips.
    pub fn run(&mut self, horizon: SimTime) -> Result<Outcome, SimError> {
        let mut fifo_activity: Vec<FifoId> = Vec::new();
        let mut signal_activity: Vec<SignalId> = Vec::new();
        let mut notifications: Vec<(EventId, SimTime)> = Vec::new();

        'outer: loop {
            // Evaluate phase: drain the runnable queue.
            while let Some(pid) = self.runnable.pop_front() {
                if self.procs[pid.0].state == ProcState::Done {
                    continue;
                }
                self.stats.polls += 1;
                if self.stats.polls > self.poll_limit {
                    return Err(SimError::PollLimitExceeded {
                        limit: self.poll_limit,
                    });
                }
                let mut body = self.procs[pid.0]
                    .body
                    .take()
                    .expect("process body present while queued");
                let activation = {
                    let mut ctx = ProcessCtx {
                        now: self.now,
                        pid,
                        fifos: &mut self.fifos,
                        signals: &mut self.signals,
                        pending_notifications: &mut notifications,
                        trace: &mut self.trace,
                        fifo_activity: &mut fifo_activity,
                        signal_activity: &mut signal_activity,
                        instrument: &*self.instrument,
                    };
                    body.poll(&mut ctx)
                };
                self.procs[pid.0].body = Some(body);

                match activation {
                    Activation::Continue => {
                        self.procs[pid.0].state = ProcState::Queued;
                        self.runnable.push_back(pid);
                    }
                    Activation::WaitTime(delta) => {
                        self.procs[pid.0].state = ProcState::Blocked(BlockReason::Time);
                        self.stats.timed_wakeups += 1;
                        let at = self.now.saturating_add_ticks(delta.ticks());
                        self.schedule_timed(at, Wake::Proc(pid));
                    }
                    Activation::WaitEvent(ev) => {
                        self.procs[pid.0].state = ProcState::Blocked(BlockReason::Event(ev));
                        self.events[ev.0].waiters.push(pid);
                    }
                    Activation::WaitFifoReadable(fifo) => {
                        // Re-check before parking: the condition may already
                        // hold (another process wrote since our last check).
                        if self.fifos[fifo.0].queue.is_empty() {
                            self.procs[pid.0].state =
                                ProcState::Blocked(BlockReason::FifoRead(fifo));
                            self.fifos[fifo.0].read_waiters.push(pid);
                        } else {
                            self.procs[pid.0].state = ProcState::Queued;
                            self.runnable.push_back(pid);
                        }
                    }
                    Activation::WaitFifoWritable(fifo) => {
                        let full = self.fifos[fifo.0].queue.len() >= self.fifos[fifo.0].capacity;
                        if full {
                            self.procs[pid.0].state =
                                ProcState::Blocked(BlockReason::FifoWrite(fifo));
                            self.fifos[fifo.0].write_waiters.push(pid);
                        } else {
                            self.procs[pid.0].state = ProcState::Queued;
                            self.runnable.push_back(pid);
                        }
                    }
                    Activation::WaitSignal(sig) => {
                        self.procs[pid.0].state = ProcState::Blocked(BlockReason::Signal(sig));
                        self.signals[sig.0].waiters.push(pid);
                    }
                    Activation::Done => {
                        self.procs[pid.0].state = ProcState::Done;
                    }
                }

                // Service channel wakeups caused by this poll.
                for fifo in fifo_activity.drain(..) {
                    self.service_fifo(fifo);
                }
                // Deliver notifications: immediate ones this time step,
                // future ones via the timed heap.
                for (ev, at) in notifications.drain(..) {
                    if at <= self.now {
                        self.fire_event(ev);
                    } else {
                        self.events[ev.0].schedule(at);
                        self.schedule_timed(at, Wake::Event(ev));
                    }
                }
            }

            // Update phase: commit signal writes, wake changed-signal waiters.
            let mut any_delta_work = false;
            for idx in 0..self.signals.len() {
                if let Some(next) = self.signals[idx].next.take() {
                    let changed = self.signals[idx].current != next;
                    self.signals[idx].current = next;
                    if changed {
                        self.signals[idx].change_count += 1;
                        self.stats.signal_changes += 1;
                        let waiters = std::mem::take(&mut self.signals[idx].waiters);
                        for pid in waiters {
                            self.next_delta.push_back(pid);
                            any_delta_work = true;
                        }
                    }
                }
            }
            signal_activity.clear();
            if any_delta_work || !self.next_delta.is_empty() {
                self.stats.delta_cycles += 1;
                while let Some(pid) = self.next_delta.pop_front() {
                    self.enqueue_runnable(pid);
                }
                continue 'outer;
            }

            // Time advance phase.
            {
                match self.timed.pop() {
                    None => break 'outer,
                    Some(Reverse((at, _, wake))) => {
                        if at > horizon {
                            self.now = horizon;
                            self.flush_telemetry();
                            return Ok(Outcome {
                                result: RunResult::HorizonReached,
                                stats: self.stats.clone(),
                            });
                        }
                        if at > self.now {
                            self.now = at;
                            self.stats.time_steps += 1;
                        }
                        match wake {
                            Wake::Proc(pid) => self.enqueue_runnable(pid),
                            Wake::Event(ev) => {
                                // Skip stale entries superseded by an earlier
                                // notification of the same event.
                                if self.events[ev.0].pending_at == Some(at) {
                                    self.events[ev.0].pending_at = None;
                                    self.fire_event(ev);
                                }
                            }
                        }
                        // Pull in everything else scheduled for this instant
                        // so the whole time step runs as one evaluate phase.
                        while let Some(Reverse((t2, _, _))) = self.timed.peek().copied() {
                            if t2 != self.now {
                                break;
                            }
                            let Reverse((_, _, wake2)) = self.timed.pop().expect("peeked");
                            match wake2 {
                                Wake::Proc(pid) => self.enqueue_runnable(pid),
                                Wake::Event(ev) => {
                                    if self.events[ev.0].pending_at == Some(self.now) {
                                        self.events[ev.0].pending_at = None;
                                        self.fire_event(ev);
                                    }
                                }
                            }
                        }
                    }
                }
            }

            if self.runnable.is_empty() && self.timed.is_empty() {
                break;
            }
        }

        self.stats.final_time = self.now;
        self.flush_telemetry();
        let blocked = self.blocked_process_names();
        let result = if blocked.is_empty() {
            RunResult::Quiescent
        } else {
            RunResult::Deadlock(blocked)
        };
        Ok(Outcome {
            result,
            stats: self.stats.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits `count` tokens, one per tick.
    struct Source {
        out: FifoId,
        count: u64,
        sent: u64,
    }
    impl Process<u64> for Source {
        fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
            if self.sent == self.count {
                return Activation::Done;
            }
            match ctx.try_write(self.out, self.sent) {
                Ok(()) => {
                    self.sent += 1;
                    Activation::WaitTime(SimTime::from_ticks(1))
                }
                Err(_) => Activation::WaitFifoWritable(self.out),
            }
        }
        fn name(&self) -> &str {
            "source"
        }
    }

    /// Accumulates tokens and traces them.
    struct Sink {
        inp: FifoId,
        got: Vec<u64>,
    }
    impl Process<u64> for Sink {
        fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
            match ctx.try_read(self.inp) {
                Some(v) => {
                    self.got.push(v);
                    ctx.trace("sink", v);
                    Activation::Continue
                }
                None => Activation::WaitFifoReadable(self.inp),
            }
        }
        fn name(&self) -> &str {
            "sink"
        }
    }

    #[test]
    fn pipeline_transfers_all_tokens_in_order() {
        let mut sim = Simulator::new();
        let ch = sim.add_fifo("ch", 2);
        sim.add_process(Source {
            out: ch,
            count: 10,
            sent: 0,
        });
        sim.add_process(Sink {
            inp: ch,
            got: Vec::new(),
        });
        let outcome = sim.run(SimTime::MAX).expect("no livelock");
        // Sink never terminates (always waits for more), so the run ends in
        // "deadlock" with only the sink blocked — the expected shape for an
        // open-ended consumer.
        assert!(
            matches!(outcome.result, RunResult::Deadlock(ref names) if names == &vec!["sink".to_owned()])
        );
        let items: Vec<u64> = sim.trace().items_for("sink").into_iter().copied().collect();
        assert_eq!(items, (0..10).collect::<Vec<_>>());
    }

    /// A classic two-process circular-wait deadlock: each waits to read a
    /// token the other never produces.
    struct Waiter {
        inp: FifoId,
        label: &'static str,
    }
    impl Process<u64> for Waiter {
        fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
            match ctx.try_read(self.inp) {
                Some(_) => Activation::Done,
                None => Activation::WaitFifoReadable(self.inp),
            }
        }
        fn name(&self) -> &str {
            self.label
        }
    }

    #[test]
    fn circular_wait_is_reported_as_deadlock() {
        let mut sim = Simulator::new();
        let a = sim.add_fifo("a", 1);
        let b = sim.add_fifo("b", 1);
        sim.add_process(Waiter { inp: a, label: "p" });
        sim.add_process(Waiter { inp: b, label: "q" });
        let outcome = sim.run(SimTime::MAX).expect("run");
        match outcome.result {
            RunResult::Deadlock(names) => {
                assert_eq!(names, vec!["p".to_owned(), "q".to_owned()]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    /// A process that immediately finishes.
    struct Nop;
    impl Process<u64> for Nop {
        fn poll(&mut self, _ctx: &mut ProcessCtx<'_, u64>) -> Activation {
            Activation::Done
        }
        fn name(&self) -> &str {
            "nop"
        }
    }

    #[test]
    fn empty_model_is_quiescent() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.add_process(Nop);
        let outcome = sim.run(SimTime::MAX).expect("run");
        assert!(outcome.is_quiescent());
        assert_eq!(outcome.stats.polls, 1);
    }

    /// Ping-pong over an event with a timed notification.
    struct Pinger {
        ev: EventId,
        fired: bool,
    }
    impl Process<u64> for Pinger {
        fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
            if self.fired {
                return Activation::Done;
            }
            self.fired = true;
            ctx.notify(self.ev, SimTime::from_ticks(5));
            Activation::Done
        }
        fn name(&self) -> &str {
            "pinger"
        }
    }
    struct EventWaiter {
        ev: EventId,
        woke_at: Option<SimTime>,
        armed: bool,
    }
    impl Process<u64> for EventWaiter {
        fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
            if self.armed {
                self.woke_at = Some(ctx.now());
                ctx.trace("woke", ctx.now().ticks());
                return Activation::Done;
            }
            self.armed = true;
            Activation::WaitEvent(self.ev)
        }
        fn name(&self) -> &str {
            "event_waiter"
        }
    }

    #[test]
    fn timed_notification_wakes_waiter_at_right_time() {
        let mut sim = Simulator::new();
        let ev = sim.add_event("tick");
        sim.add_process(EventWaiter {
            ev,
            woke_at: None,
            armed: false,
        });
        sim.add_process(Pinger { ev, fired: false });
        let outcome = sim.run(SimTime::MAX).expect("run");
        assert!(outcome.is_quiescent());
        let woke: Vec<u64> = sim.trace().items_for("woke").into_iter().copied().collect();
        assert_eq!(woke, vec![5]);
        assert_eq!(outcome.stats.notifications, 1);
    }

    /// A signal writer and a reader demonstrating delta-cycle semantics.
    struct SigWriter {
        sig: SignalId,
        done: bool,
    }
    impl Process<u64> for SigWriter {
        fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
            if self.done {
                return Activation::Done;
            }
            self.done = true;
            // The committed value must still be the initial one within this
            // evaluate phase.
            assert_eq!(*ctx.signal_read(self.sig), 0);
            ctx.signal_write(self.sig, 7);
            assert_eq!(
                *ctx.signal_read(self.sig),
                0,
                "write must not be visible before the update phase"
            );
            Activation::Done
        }
        fn name(&self) -> &str {
            "sig_writer"
        }
    }
    struct SigReader {
        sig: SignalId,
        armed: bool,
    }
    impl Process<u64> for SigReader {
        fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
            if self.armed {
                let v = *ctx.signal_read(self.sig);
                ctx.trace("sig", v);
                return Activation::Done;
            }
            self.armed = true;
            Activation::WaitSignal(self.sig)
        }
        fn name(&self) -> &str {
            "sig_reader"
        }
    }

    #[test]
    fn signal_update_is_deferred_to_next_delta() {
        let mut sim = Simulator::new();
        let sig = sim.add_signal("s", 0u64);
        sim.add_process(SigReader { sig, armed: false });
        sim.add_process(SigWriter { sig, done: false });
        let outcome = sim.run(SimTime::MAX).expect("run");
        assert!(outcome.is_quiescent());
        let seen: Vec<u64> = sim.trace().items_for("sig").into_iter().copied().collect();
        assert_eq!(seen, vec![7]);
        assert!(outcome.stats.delta_cycles >= 1);
        assert_eq!(outcome.stats.signal_changes, 1);
    }

    /// Livelock: a process that spins forever with `Continue`.
    struct Spinner;
    impl Process<u64> for Spinner {
        fn poll(&mut self, _ctx: &mut ProcessCtx<'_, u64>) -> Activation {
            Activation::Continue
        }
        fn name(&self) -> &str {
            "spinner"
        }
    }

    #[test]
    fn poll_limit_catches_livelock() {
        let mut sim: Simulator<u64> = Simulator::new();
        sim.add_process(Spinner);
        sim.set_poll_limit(1000);
        let err = sim.run(SimTime::MAX).unwrap_err();
        assert_eq!(err, SimError::PollLimitExceeded { limit: 1000 });
    }

    #[test]
    fn horizon_is_respected() {
        let mut sim = Simulator::new();
        let ch = sim.add_fifo("ch", 1);
        sim.add_process(Source {
            out: ch,
            count: u64::MAX,
            sent: 0,
        });
        sim.add_process(Sink {
            inp: ch,
            got: Vec::new(),
        });
        let outcome = sim.run(SimTime::from_ticks(50)).expect("run");
        assert_eq!(outcome.result, RunResult::HorizonReached);
        assert!(sim.now() <= SimTime::from_ticks(50));
    }

    #[test]
    fn fifo_stats_track_watermark_and_counts() {
        let mut sim = Simulator::new();
        let ch = sim.add_fifo("ch", 4);
        sim.add_process(Source {
            out: ch,
            count: 6,
            sent: 0,
        });
        sim.add_process(Sink {
            inp: ch,
            got: Vec::new(),
        });
        sim.run(SimTime::MAX).expect("run");
        let stats = &sim.fifo_stats()[0];
        assert_eq!(stats.total_writes, 6);
        assert_eq!(stats.total_reads, 6);
        assert!(stats.high_watermark >= 1);
        assert!(stats.high_watermark <= 4);
        assert_eq!(stats.occupancy, 0);
    }

    #[test]
    fn collector_records_kernel_counters_and_fifo_gauges() {
        let collector = telemetry::Collector::shared();
        let mut sim = Simulator::new();
        sim.set_instrument(collector.clone());
        let ch = sim.add_fifo("ch", 2);
        sim.add_process(Source {
            out: ch,
            count: 10,
            sent: 0,
        });
        sim.add_process(Sink {
            inp: ch,
            got: Vec::new(),
        });
        let outcome = sim.run(SimTime::MAX).expect("run");
        assert_eq!(collector.counter("sim.polls"), outcome.stats.polls);
        assert_eq!(
            collector.counter("sim.time_steps"),
            outcome.stats.time_steps
        );
        // 10 writes + 10 reads touched the depth gauge each time.
        assert_eq!(collector.gauge_series("fifo.depth.ch").len(), 20);
        assert!(!collector.gauge_series("fifo.watermark.ch").is_empty());
        assert_eq!(collector.histogram("fifo.high_watermark").count(), 1);
    }

    #[test]
    fn repeated_runs_flush_counter_deltas_not_totals() {
        let collector = telemetry::Collector::shared();
        let mut sim: Simulator<u64> = Simulator::new();
        sim.set_instrument(collector.clone());
        sim.add_process(Nop);
        sim.run(SimTime::MAX).expect("first run");
        sim.run(SimTime::MAX).expect("second run");
        // The second run performed no polls, so the counter must not grow.
        assert_eq!(collector.counter("sim.polls"), 1);
    }

    #[test]
    fn determinism_same_trace_across_runs() {
        let run_once = || {
            let mut sim = Simulator::new();
            let ch = sim.add_fifo("ch", 2);
            sim.add_process(Source {
                out: ch,
                count: 20,
                sent: 0,
            });
            sim.add_process(Sink {
                inp: ch,
                got: Vec::new(),
            });
            sim.run(SimTime::MAX).expect("run");
            sim.take_trace()
                .entries()
                .iter()
                .map(|e| (e.time, e.item))
                .collect::<Vec<_>>()
        };
        assert_eq!(run_once(), run_once());
    }
}
