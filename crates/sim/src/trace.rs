//! Simulation traces and cross-level trace comparison.
//!
//! The paper's functional-verification criterion at each refinement step is
//! "match of results consists of trace files comparison" — the level-N model
//! must emit, per observation point, the same token sequence as level N−1
//! (and ultimately the C reference model). [`Trace`] records `(time, source,
//! item)` triples; [`Trace::matches_untimed`] implements the comparison that
//! deliberately ignores timestamps, because refinement changes timing but
//! must preserve data.

use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// One recorded observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry<T> {
    /// Simulation time at which the observation was made.
    pub time: SimTime,
    /// Observation point (e.g. module output name).
    pub source: String,
    /// Observed token.
    pub item: T,
}

/// An ordered log of observations made during a run.
#[derive(Debug, Clone)]
pub struct Trace<T> {
    entries: Vec<TraceEntry<T>>,
}

impl<T> Default for Trace<T> {
    fn default() -> Self {
        Trace {
            entries: Vec::new(),
        }
    }
}

impl<T> Trace<T> {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an observation.
    pub fn record(&mut self, time: SimTime, source: &str, item: T) {
        self.entries.push(TraceEntry {
            time,
            source: source.to_owned(),
            item,
        });
    }

    /// All entries in recording order.
    pub fn entries(&self) -> &[TraceEntry<T>] {
        &self.entries
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Items observed at one source, in order.
    pub fn items_for(&self, source: &str) -> Vec<&T> {
        self.entries
            .iter()
            .filter(|e| e.source == source)
            .map(|e| &e.item)
            .collect()
    }

    /// Groups items by source, preserving per-source order.
    pub fn by_source(&self) -> BTreeMap<&str, Vec<&T>> {
        let mut map: BTreeMap<&str, Vec<&T>> = BTreeMap::new();
        for e in &self.entries {
            map.entry(e.source.as_str()).or_default().push(&e.item);
        }
        map
    }
}

impl<T: PartialEq + fmt::Debug> Trace<T> {
    /// Untimed trace equivalence: per observation point, both traces contain
    /// the same token sequence, timestamps ignored.
    ///
    /// Returns `Ok(())` on match, otherwise a [`TraceMismatch`] describing
    /// the first divergence — the artifact the paper's per-level
    /// "functionality fully verified" checks rely on.
    ///
    /// # Errors
    ///
    /// Returns [`TraceMismatch`] naming the diverging source and position.
    pub fn matches_untimed(&self, other: &Trace<T>) -> Result<(), TraceMismatch> {
        let a = self.by_source();
        let b = other.by_source();
        for (src, items_a) in &a {
            match b.get(src) {
                None => {
                    return Err(TraceMismatch {
                        source: (*src).to_owned(),
                        position: 0,
                        detail: "source missing from other trace".to_owned(),
                    })
                }
                Some(items_b) => {
                    for (i, (x, y)) in items_a.iter().zip(items_b.iter()).enumerate() {
                        if x != y {
                            return Err(TraceMismatch {
                                source: (*src).to_owned(),
                                position: i,
                                detail: format!("{x:?} != {y:?}"),
                            });
                        }
                    }
                    if items_a.len() != items_b.len() {
                        return Err(TraceMismatch {
                            source: (*src).to_owned(),
                            position: items_a.len().min(items_b.len()),
                            detail: format!(
                                "length mismatch: {} vs {}",
                                items_a.len(),
                                items_b.len()
                            ),
                        });
                    }
                }
            }
        }
        for src in b.keys() {
            if !a.contains_key(src) {
                return Err(TraceMismatch {
                    source: (*src).to_owned(),
                    position: 0,
                    detail: "source missing from this trace".to_owned(),
                });
            }
        }
        Ok(())
    }
}

/// First point of divergence between two traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMismatch {
    /// Observation point at which the traces diverge.
    pub source: String,
    /// Index of the first diverging token at that source.
    pub position: usize,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl fmt::Display for TraceMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace mismatch at source `{}` position {}: {}",
            self.source, self.position, self.detail
        )
    }
}

impl std::error::Error for TraceMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn matching_traces_ignore_time() {
        let mut a = Trace::new();
        a.record(t(0), "out", 1u32);
        a.record(t(1), "out", 2);
        let mut b = Trace::new();
        b.record(t(100), "out", 1);
        b.record(t(999), "out", 2);
        assert!(a.matches_untimed(&b).is_ok());
    }

    #[test]
    fn interleaving_across_sources_is_ignored() {
        let mut a = Trace::new();
        a.record(t(0), "x", 1u32);
        a.record(t(0), "y", 10);
        a.record(t(1), "x", 2);
        let mut b = Trace::new();
        b.record(t(0), "y", 10);
        b.record(t(5), "x", 1);
        b.record(t(6), "x", 2);
        assert!(a.matches_untimed(&b).is_ok());
    }

    #[test]
    fn value_divergence_is_reported_with_position() {
        let mut a = Trace::new();
        a.record(t(0), "out", 1u32);
        a.record(t(1), "out", 2);
        let mut b = Trace::new();
        b.record(t(0), "out", 1);
        b.record(t(1), "out", 3);
        let err = a.matches_untimed(&b).unwrap_err();
        assert_eq!(err.source, "out");
        assert_eq!(err.position, 1);
    }

    #[test]
    fn length_divergence_is_reported() {
        let mut a = Trace::new();
        a.record(t(0), "out", 1u32);
        let b = {
            let mut b = Trace::new();
            b.record(t(0), "out", 1);
            b.record(t(1), "out", 2);
            b
        };
        let err = a.matches_untimed(&b).unwrap_err();
        assert!(err.detail.contains("length mismatch"));
    }

    #[test]
    fn missing_source_is_reported_both_ways() {
        let mut a = Trace::new();
        a.record(t(0), "only_a", 1u32);
        let b: Trace<u32> = Trace::new();
        assert!(a.matches_untimed(&b).is_err());
        assert!(b.matches_untimed(&a).is_err());
    }

    #[test]
    fn items_for_filters_by_source() {
        let mut a = Trace::new();
        a.record(t(0), "x", 1u32);
        a.record(t(0), "y", 2);
        a.record(t(1), "x", 3);
        assert_eq!(a.items_for("x"), vec![&1, &3]);
        assert!(a.items_for("z").is_empty());
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }
}
