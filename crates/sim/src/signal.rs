//! Signals with SystemC evaluate/update (delta-cycle) semantics.
//!
//! A write to a signal does not become visible until the end of the current
//! delta cycle; processes blocked on [`crate::Activation::WaitSignal`] wake
//! in the next delta only if the committed value actually changed. Level-4
//! RTL co-simulation wrappers use signals for request/acknowledge handshakes.

/// Identifier of a signal registered with a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// Raw index of the signal in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Kernel-internal storage for one signal.
#[derive(Debug)]
pub(crate) struct SignalSlot<T> {
    pub(crate) name: String,
    /// Committed value, visible to readers.
    pub(crate) current: T,
    /// Value requested during the running delta cycle, if any.
    pub(crate) next: Option<T>,
    /// Processes blocked until the committed value changes.
    pub(crate) waiters: Vec<crate::process::ProcessId>,
    /// Number of committed updates that changed the value.
    pub(crate) change_count: u64,
}

impl<T> SignalSlot<T> {
    pub(crate) fn new(name: &str, initial: T) -> Self {
        SignalSlot {
            name: name.to_owned(),
            current: initial,
            next: None,
            waiters: Vec::new(),
            change_count: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_initial_state() {
        let slot = SignalSlot::new("req", 0u8);
        assert_eq!(slot.current, 0);
        assert!(slot.next.is_none());
        assert_eq!(slot.change_count, 0);
        assert_eq!(slot.name, "req");
    }

    #[test]
    fn signal_id_exposes_index() {
        assert_eq!(SignalId(2).index(), 2);
    }
}
