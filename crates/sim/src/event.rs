//! Named events with timed notification, analogous to `sc_event`.

use crate::time::SimTime;

/// Identifier of an event registered with a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) usize);

impl EventId {
    /// Raw index of the event in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Kernel-internal storage for one event.
#[derive(Debug)]
pub(crate) struct EventSlot {
    pub(crate) name: String,
    /// Processes blocked until the next notification.
    pub(crate) waiters: Vec<crate::process::ProcessId>,
    /// Earliest pending timed notification, if any. SystemC keeps only the
    /// earliest outstanding notification per event; we match that.
    pub(crate) pending_at: Option<SimTime>,
    /// Number of notifications delivered so far.
    pub(crate) fired: u64,
}

impl EventSlot {
    pub(crate) fn new(name: &str) -> Self {
        EventSlot {
            name: name.to_owned(),
            waiters: Vec::new(),
            pending_at: None,
            fired: 0,
        }
    }

    /// Records a notification request, keeping only the earliest one.
    pub(crate) fn schedule(&mut self, at: SimTime) {
        self.pending_at = Some(match self.pending_at {
            Some(existing) => existing.min(at),
            None => at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_notification_wins() {
        let mut slot = EventSlot::new("ev");
        slot.schedule(SimTime::from_ticks(10));
        slot.schedule(SimTime::from_ticks(4));
        slot.schedule(SimTime::from_ticks(7));
        assert_eq!(slot.pending_at, Some(SimTime::from_ticks(4)));
    }

    #[test]
    fn event_id_exposes_index() {
        assert_eq!(EventId(1).index(), 1);
    }
}
