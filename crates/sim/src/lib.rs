//! Discrete-event simulation kernel — the SystemC analog of the Symbad flow.
//!
//! The Symbad methodology (Borgatti et al., DATE 2004) models every level of
//! the design as a network of concurrent processes communicating through
//! channels, executed by the SystemC 2.0 kernel. This crate provides the
//! equivalent substrate, built from scratch:
//!
//! * [`SimTime`] — discrete simulation time in kernel ticks,
//! * [`Process`] — cooperatively scheduled processes polled as state machines,
//! * bounded FIFO channels with blocking read/write semantics,
//! * signal evaluate/update (delta-cycle) semantics as in SystemC,
//! * named events with timed notification,
//! * deterministic scheduling (strict `(time, delta, sequence)` order),
//! * deadlock detection (every live process blocked, nothing pending),
//! * per-run [`Stats`] and a [`Trace`] recorder used by the flow's
//!   cross-level trace-equivalence checks.
//!
//! The kernel is generic over the message type `T` carried by channels, so
//! the level-1 untimed model can move whole video frames per token while the
//! level-4 model moves bus words.
//!
//! # Example
//!
//! A producer/consumer pair over a bounded FIFO:
//!
//! ```
//! use sim::{Activation, ProcessCtx, Process, SimTime, Simulator};
//!
//! struct Producer { out: sim::FifoId, next: u64 }
//! impl Process<u64> for Producer {
//!     fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
//!         if self.next == 4 { return Activation::Done; }
//!         match ctx.try_write(self.out, self.next) {
//!             Ok(()) => { self.next += 1; Activation::WaitTime(SimTime::from_ticks(1)) }
//!             Err(_) => Activation::WaitFifoWritable(self.out),
//!         }
//!     }
//!     fn name(&self) -> &str { "producer" }
//! }
//!
//! struct Consumer { inp: sim::FifoId, sum: u64, remaining: u32 }
//! impl Process<u64> for Consumer {
//!     fn poll(&mut self, ctx: &mut ProcessCtx<'_, u64>) -> Activation {
//!         if self.remaining == 0 { return Activation::Done; }
//!         match ctx.try_read(self.inp) {
//!             Some(v) => { self.sum += v; self.remaining -= 1; Activation::Continue }
//!             None => Activation::WaitFifoReadable(self.inp),
//!         }
//!     }
//!     fn name(&self) -> &str { "consumer" }
//! }
//!
//! # fn main() -> Result<(), sim::SimError> {
//! let mut sim = Simulator::new();
//! let ch = sim.add_fifo("ch", 2);
//! sim.add_process(Producer { out: ch, next: 0 });
//! sim.add_process(Consumer { inp: ch, sum: 0, remaining: 4 });
//! let outcome = sim.run(SimTime::MAX)?;
//! assert!(outcome.is_quiescent());
//! # Ok(())
//! # }
//! ```

pub mod event;
pub mod faults;
pub mod fifo;
pub mod kernel;
pub mod process;
pub mod signal;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::EventId;
pub use faults::{FaultKind, FaultLog, FaultPlan, SharedFaultPlan};
pub use fifo::FifoId;
pub use kernel::{Outcome, RunResult, SimError, Simulator};
pub use process::{Activation, Process, ProcessCtx, ProcessId};
pub use signal::SignalId;
pub use stats::{Series, Stats};
pub use time::SimTime;
pub use trace::{Trace, TraceEntry};
