//! Processes: the unit of concurrent behaviour.
//!
//! SystemC threads suspend inside `wait(...)`; stable Rust has no stackful
//! coroutines, so Symbad processes are *polled state machines*. The kernel
//! calls [`Process::poll`] whenever the process is runnable; the return
//! value ([`Activation`]) either keeps the process runnable, blocks it on a
//! resource, or retires it. This is behaviourally equivalent for the models
//! in the flow (dataflow loops of read → compute → write) and keeps every
//! process an ordinary owned struct that unit tests can drive directly.

use crate::event::EventId;
use crate::fifo::FifoId;
use crate::signal::SignalId;
use crate::time::SimTime;

/// Identifier of a process registered with a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub(crate) usize);

impl ProcessId {
    /// Raw index of the process in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a process asks the kernel to do after a poll step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Run again within the current delta cycle (made runnable immediately).
    Continue,
    /// Sleep for the given number of ticks (a `wait(t)` in SystemC terms).
    WaitTime(SimTime),
    /// Block until the event is notified.
    WaitEvent(EventId),
    /// Block until the FIFO has at least one token to read.
    WaitFifoReadable(FifoId),
    /// Block until the FIFO has room for at least one token.
    WaitFifoWritable(FifoId),
    /// Block until the signal's committed value changes.
    WaitSignal(SignalId),
    /// The process has finished; it will never be polled again.
    Done,
}

impl Activation {
    /// Whether the activation retires the process.
    pub fn is_done(self) -> bool {
        matches!(self, Activation::Done)
    }

    /// Whether the activation blocks the process on an external condition
    /// (anything but [`Activation::Continue`] and [`Activation::Done`]).
    pub fn is_blocking(self) -> bool {
        !matches!(self, Activation::Continue | Activation::Done)
    }
}

/// A concurrent behaviour scheduled by the kernel.
///
/// Implementations store their own "program counter" (typically an enum of
/// phases) and use the [`ProcessCtx`] passed to [`poll`](Process::poll) for
/// all interaction with channels, signals, events and the trace.
pub trait Process<T> {
    /// Advances the process by one step.
    ///
    /// A poll must not busy-wait: when a needed resource is unavailable the
    /// process returns the corresponding `Wait*` activation so the kernel can
    /// park it. Returning [`Activation::Continue`] reschedules the process in
    /// the same delta cycle.
    fn poll(&mut self, ctx: &mut ProcessCtx<'_, T>) -> Activation;

    /// Stable, human-readable process name used in traces and diagnostics.
    fn name(&self) -> &str;
}

/// Per-poll view of the kernel handed to a process.
///
/// Created by the kernel; a process can not outlive its context.
pub struct ProcessCtx<'a, T> {
    pub(crate) now: SimTime,
    pub(crate) pid: ProcessId,
    pub(crate) fifos: &'a mut [crate::fifo::FifoSlot<T>],
    pub(crate) signals: &'a mut [crate::signal::SignalSlot<T>],
    pub(crate) pending_notifications: &'a mut Vec<(EventId, SimTime)>,
    pub(crate) trace: &'a mut crate::trace::Trace<T>,
    pub(crate) fifo_activity: &'a mut Vec<FifoId>,
    pub(crate) signal_activity: &'a mut Vec<SignalId>,
    pub(crate) instrument: &'a dyn telemetry::Instrument,
}

impl<'a, T> ProcessCtx<'a, T> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Identifier of the polled process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The telemetry instrument attached to the running simulator (the
    /// no-op instrument unless one was set). Processes use this to emit
    /// their own spans and counters on the shared timeline.
    pub fn instrument(&self) -> &dyn telemetry::Instrument {
        self.instrument
    }

    /// Attempts to pop a token from `fifo`.
    ///
    /// Returns `None` when the FIFO is empty; the caller should then return
    /// [`Activation::WaitFifoReadable`].
    ///
    /// # Panics
    ///
    /// Panics if `fifo` does not belong to the running simulator.
    pub fn try_read(&mut self, fifo: FifoId) -> Option<T> {
        let slot = &mut self.fifos[fifo.0];
        let v = slot.queue.pop_front();
        if v.is_some() {
            slot.total_reads += 1;
            if self.instrument.enabled() {
                self.instrument.gauge_set(
                    &format!("fifo.depth.{}", slot.name),
                    self.now.ticks(),
                    slot.queue.len() as i64,
                );
            }
            self.fifo_activity.push(fifo);
        }
        v
    }

    /// Attempts to push a token into `fifo`.
    ///
    /// # Errors
    ///
    /// Returns the token back when the FIFO is full; the caller should then
    /// return [`Activation::WaitFifoWritable`].
    ///
    /// # Panics
    ///
    /// Panics if `fifo` does not belong to the running simulator.
    pub fn try_write(&mut self, fifo: FifoId, value: T) -> Result<(), T> {
        let slot = &mut self.fifos[fifo.0];
        if slot.queue.len() >= slot.capacity {
            return Err(value);
        }
        slot.queue.push_back(value);
        slot.total_writes += 1;
        slot.high_watermark = slot.high_watermark.max(slot.queue.len());
        if self.instrument.enabled() {
            self.instrument.gauge_set(
                &format!("fifo.depth.{}", slot.name),
                self.now.ticks(),
                slot.queue.len() as i64,
            );
        }
        self.fifo_activity.push(fifo);
        Ok(())
    }

    /// Number of tokens currently queued in `fifo`.
    pub fn fifo_len(&self, fifo: FifoId) -> usize {
        self.fifos[fifo.0].queue.len()
    }

    /// Capacity of `fifo`.
    pub fn fifo_capacity(&self, fifo: FifoId) -> usize {
        self.fifos[fifo.0].capacity
    }

    /// Reads the committed (last-updated) value of a signal.
    pub fn signal_read(&self, signal: SignalId) -> &T {
        &self.signals[signal.0].current
    }

    /// Requests a signal update, committed at the end of the current delta
    /// cycle (SystemC evaluate/update semantics). The last writer in a delta
    /// wins, as in `sc_signal`.
    pub fn signal_write(&mut self, signal: SignalId, value: T) {
        self.signals[signal.0].next = Some(value);
        self.signal_activity.push(signal);
    }

    /// Notifies `event` after `delay` ticks (zero means next delta cycle).
    pub fn notify(&mut self, event: EventId, delay: SimTime) {
        self.pending_notifications
            .push((event, self.now.saturating_add_ticks(delay.ticks())));
    }

    /// Appends an entry to the simulation trace under the given source tag.
    ///
    /// Traces are the flow's functional-equivalence artifact: the same
    /// workload simulated at two abstraction levels must produce identical
    /// per-source token sequences.
    pub fn trace(&mut self, source: &str, item: T) {
        self.trace.record(self.now, source, item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_classification() {
        assert!(Activation::Done.is_done());
        assert!(!Activation::Continue.is_done());
        assert!(Activation::WaitTime(SimTime::from_ticks(1)).is_blocking());
        assert!(Activation::WaitFifoReadable(FifoId(0)).is_blocking());
        assert!(!Activation::Continue.is_blocking());
        assert!(!Activation::Done.is_blocking());
    }

    #[test]
    fn process_id_exposes_index() {
        assert_eq!(ProcessId(3).index(), 3);
    }
}
