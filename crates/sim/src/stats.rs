//! Run statistics.
//!
//! Experiments E1–E3 and E11 report *simulation speed* — simulated cycles
//! per wall-clock second, the figure the paper quotes as "200 kHz" (level 2)
//! and "30 kHz" (level 3) on the authors' workstation. [`Stats`] collects the
//! raw counters from which the bench harness derives those rates.

use crate::time::SimTime;

/// Counters accumulated over one [`crate::Simulator::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total process polls performed.
    pub polls: u64,
    /// Delta cycles executed.
    pub delta_cycles: u64,
    /// Distinct time points at which activity occurred.
    pub time_steps: u64,
    /// Timed wakeups scheduled.
    pub timed_wakeups: u64,
    /// Event notifications delivered.
    pub notifications: u64,
    /// Signal updates that changed a committed value.
    pub signal_changes: u64,
    /// Final simulation time reached.
    pub final_time: SimTime,
}

impl Stats {
    /// Simulated ticks per poll — a density measure of the model's
    /// abstraction level (higher = more abstract).
    pub fn ticks_per_poll(&self) -> f64 {
        if self.polls == 0 {
            0.0
        } else {
            self.final_time.ticks() as f64 / self.polls as f64
        }
    }

    /// Simulated frequency in Hz given the wall-clock seconds the run took:
    /// `final_time / wall_seconds`. This is the paper's "simulation speed"
    /// metric (kHz of simulated clock per real second).
    pub fn simulated_hz(&self, wall_seconds: f64) -> f64 {
        if wall_seconds <= 0.0 {
            return 0.0;
        }
        self.final_time.ticks() as f64 / wall_seconds
    }
}

/// A sample series with total (never-panicking) summary statistics.
///
/// The bench harness and the flow reports fold per-frame latencies and
/// FIFO occupancies through this; empty and single-sample series are
/// legitimate inputs (a run can finish before any frame completes), so
/// every statistic is defined for them instead of panicking or dividing
/// by zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Series {
    samples: Vec<u64>,
}

impl Series {
    /// An empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// A series seeded from existing samples.
    pub fn from_samples(samples: Vec<u64>) -> Self {
        Series { samples }
    }

    /// Appends one sample.
    pub fn push(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean; 0.0 on an empty series (no division by zero).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() as f64 / self.samples.len() as f64
        }
    }

    /// Nearest-rank percentile for `p` in `0..=100` (values above 100
    /// clamp to the maximum). Returns 0 on an empty series and the sample
    /// itself on a single-sample one — never panics.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let idx = (p.min(100) * (n - 1) + 50) / 100;
        sorted[idx as usize]
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_statistics_are_defined() {
        let s = Series::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.sum(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0), 0);
        assert_eq!(s.percentile(50), 0);
        assert_eq!(s.percentile(100), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn single_sample_series_statistics_are_defined() {
        let s = Series::from_samples(vec![9]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 9.0);
        assert_eq!(s.percentile(0), 9);
        assert_eq!(s.percentile(50), 9);
        assert_eq!(s.percentile(100), 9);
        // p > 100 clamps instead of indexing out of bounds.
        assert_eq!(s.percentile(999), 9);
    }

    #[test]
    fn series_percentile_uses_nearest_rank() {
        let mut s = Series::new();
        for v in [50, 10, 40, 20, 30] {
            s.push(v);
        }
        assert_eq!(s.percentile(0), 10);
        assert_eq!(s.percentile(50), 30);
        assert_eq!(s.percentile(100), 50);
        assert_eq!(s.mean(), 30.0);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 50);
    }

    #[test]
    fn ticks_per_poll_handles_zero_polls() {
        let s = Stats::default();
        assert_eq!(s.ticks_per_poll(), 0.0);
    }

    #[test]
    fn simulated_hz_scales_with_time() {
        let s = Stats {
            final_time: SimTime::from_ticks(200_000),
            ..Stats::default()
        };
        assert_eq!(s.simulated_hz(1.0), 200_000.0);
        assert_eq!(s.simulated_hz(2.0), 100_000.0);
        assert_eq!(s.simulated_hz(0.0), 0.0);
    }
}
