//! Run statistics.
//!
//! Experiments E1–E3 and E11 report *simulation speed* — simulated cycles
//! per wall-clock second, the figure the paper quotes as "200 kHz" (level 2)
//! and "30 kHz" (level 3) on the authors' workstation. [`Stats`] collects the
//! raw counters from which the bench harness derives those rates.

use crate::time::SimTime;

/// Counters accumulated over one [`crate::Simulator::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total process polls performed.
    pub polls: u64,
    /// Delta cycles executed.
    pub delta_cycles: u64,
    /// Distinct time points at which activity occurred.
    pub time_steps: u64,
    /// Timed wakeups scheduled.
    pub timed_wakeups: u64,
    /// Event notifications delivered.
    pub notifications: u64,
    /// Signal updates that changed a committed value.
    pub signal_changes: u64,
    /// Final simulation time reached.
    pub final_time: SimTime,
}

impl Stats {
    /// Simulated ticks per poll — a density measure of the model's
    /// abstraction level (higher = more abstract).
    pub fn ticks_per_poll(&self) -> f64 {
        if self.polls == 0 {
            0.0
        } else {
            self.final_time.ticks() as f64 / self.polls as f64
        }
    }

    /// Simulated frequency in Hz given the wall-clock seconds the run took:
    /// `final_time / wall_seconds`. This is the paper's "simulation speed"
    /// metric (kHz of simulated clock per real second).
    pub fn simulated_hz(&self, wall_seconds: f64) -> f64 {
        if wall_seconds <= 0.0 {
            return 0.0;
        }
        self.final_time.ticks() as f64 / wall_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_per_poll_handles_zero_polls() {
        let s = Stats::default();
        assert_eq!(s.ticks_per_poll(), 0.0);
    }

    #[test]
    fn simulated_hz_scales_with_time() {
        let s = Stats {
            final_time: SimTime::from_ticks(200_000),
            ..Stats::default()
        };
        assert_eq!(s.simulated_hz(1.0), 200_000.0);
        assert_eq!(s.simulated_hz(2.0), 100_000.0);
        assert_eq!(s.simulated_hz(0.0), 0.0);
    }
}
