//! Run statistics.
//!
//! Experiments E1–E3 and E11 report *simulation speed* — simulated cycles
//! per wall-clock second, the figure the paper quotes as "200 kHz" (level 2)
//! and "30 kHz" (level 3) on the authors' workstation. [`Stats`] collects the
//! raw counters from which the bench harness derives those rates.

use crate::time::SimTime;

/// Counters accumulated over one [`crate::Simulator::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total process polls performed.
    pub polls: u64,
    /// Delta cycles executed.
    pub delta_cycles: u64,
    /// Distinct time points at which activity occurred.
    pub time_steps: u64,
    /// Timed wakeups scheduled.
    pub timed_wakeups: u64,
    /// Event notifications delivered.
    pub notifications: u64,
    /// Signal updates that changed a committed value.
    pub signal_changes: u64,
    /// Final simulation time reached.
    pub final_time: SimTime,
}

impl Stats {
    /// Simulated ticks per poll — a density measure of the model's
    /// abstraction level (higher = more abstract).
    pub fn ticks_per_poll(&self) -> f64 {
        if self.polls == 0 {
            0.0
        } else {
            self.final_time.ticks() as f64 / self.polls as f64
        }
    }

    /// Simulated frequency in Hz given the wall-clock seconds the run took:
    /// `final_time / wall_seconds`. This is the paper's "simulation speed"
    /// metric (kHz of simulated clock per real second).
    pub fn simulated_hz(&self, wall_seconds: f64) -> f64 {
        if wall_seconds <= 0.0 {
            return 0.0;
        }
        self.final_time.ticks() as f64 / wall_seconds
    }
}

/// A sample series with total (never-panicking) summary statistics.
///
/// The bench harness and the flow reports fold per-frame latencies and
/// FIFO occupancies through this; empty and single-sample series are
/// legitimate inputs (a run can finish before any frame completes), so
/// every statistic is defined for them instead of panicking or dividing
/// by zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Series {
    /// Kept sorted ascending at all times, so every percentile query is a
    /// single index instead of a clone-and-sort (`Histogram::snapshot`
    /// style reporting queries three percentiles per series per report).
    samples: Vec<u64>,
}

impl Series {
    /// An empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// A series seeded from existing samples.
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        Series { samples }
    }

    /// Adds one sample (insertion order is not observable; the series
    /// maintains its sorted representation incrementally).
    pub fn push(&mut self, value: u64) {
        let at = self.samples.partition_point(|&s| s <= value);
        self.samples.insert(at, value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean; 0.0 on an empty series (no division by zero).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() as f64 / self.samples.len() as f64
        }
    }

    /// Nearest-rank percentile for `p` in `0..=100` (values above 100
    /// clamp to the maximum): the smallest sample such that at least
    /// `p`% of the samples are `<=` it — `sorted[ceil(p/100 · n) - 1]`,
    /// with `p = 0` mapping to the minimum. Returns 0 on an empty series
    /// and the sample itself on a single-sample one — never panics.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let n = self.samples.len() as u64;
        let rank = (p.min(100) * n).div_ceil(100);
        self.samples[rank.saturating_sub(1) as usize]
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.samples.first().copied().unwrap_or(0)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.last().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_statistics_are_defined() {
        let s = Series::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.sum(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0), 0);
        assert_eq!(s.percentile(50), 0);
        assert_eq!(s.percentile(100), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn single_sample_series_statistics_are_defined() {
        let s = Series::from_samples(vec![9]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 9.0);
        assert_eq!(s.percentile(0), 9);
        assert_eq!(s.percentile(50), 9);
        assert_eq!(s.percentile(100), 9);
        // p > 100 clamps instead of indexing out of bounds.
        assert_eq!(s.percentile(999), 9);
    }

    #[test]
    fn series_percentile_uses_nearest_rank() {
        let mut s = Series::new();
        for v in [50, 10, 40, 20, 30] {
            s.push(v);
        }
        assert_eq!(s.percentile(0), 10);
        assert_eq!(s.percentile(50), 30);
        assert_eq!(s.percentile(100), 50);
        assert_eq!(s.mean(), 30.0);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 50);
    }

    #[test]
    fn nearest_rank_boundaries_are_exact() {
        // Even length: the 50th percentile is the *lower* middle sample
        // under nearest-rank (ceil(0.5 · 4) = rank 2), not the upper one
        // that the old rounded-linear formula returned.
        let s = Series::from_samples(vec![40, 10, 30, 20]);
        assert_eq!(s.percentile(50), 20);
        // Rank boundaries: p·n/100 exactly integral keeps the same rank;
        // one percent more crosses to the next sample.
        assert_eq!(s.percentile(25), 10);
        assert_eq!(s.percentile(26), 20);
        assert_eq!(s.percentile(75), 30);
        assert_eq!(s.percentile(76), 40);
        // Extremes: p=0 is the minimum, tiny p already rank 1, p=100 and
        // anything above clamp to the maximum.
        assert_eq!(s.percentile(0), 10);
        assert_eq!(s.percentile(1), 10);
        assert_eq!(s.percentile(100), 40);
        assert_eq!(s.percentile(101), 40);
        // p95 on 100 equal-spaced samples lands exactly on sample 95.
        let big = Series::from_samples((1..=100).collect());
        assert_eq!(big.percentile(95), 95);
        assert_eq!(big.percentile(96), 96);
    }

    #[test]
    fn push_maintains_sorted_representation() {
        let mut s = Series::new();
        for v in [5, 1, 9, 1, 7, 3] {
            s.push(v);
        }
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 9);
        assert_eq!(s.len(), 6);
        assert_eq!(s.sum(), 26);
        // Duplicates stay: rank 2 of [1,1,3,5,7,9] is the second 1.
        assert_eq!(s.percentile(34), 3);
        assert_eq!(s.percentile(33), 1);
        // Same statistics as the batch constructor.
        let batch = Series::from_samples(vec![5, 1, 9, 1, 7, 3]);
        assert_eq!(s, batch);
    }

    #[test]
    fn ticks_per_poll_handles_zero_polls() {
        let s = Stats::default();
        assert_eq!(s.ticks_per_poll(), 0.0);
    }

    #[test]
    fn simulated_hz_scales_with_time() {
        let s = Stats {
            final_time: SimTime::from_ticks(200_000),
            ..Stats::default()
        };
        assert_eq!(s.simulated_hz(1.0), 200_000.0);
        assert_eq!(s.simulated_hz(2.0), 100_000.0);
        assert_eq!(s.simulated_hz(0.0), 0.0);
    }
}
