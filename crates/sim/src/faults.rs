//! Deterministic fault injection for the platform substrate.
//!
//! Real eFPGA flows lose bus words, corrupt bitstreams and time out
//! mid-download; the paper's level-3 consistency story ("each time the SW
//! requires a reconfigurable resource, that resource is actually loaded")
//! is only interesting when loading can *fail*. A [`FaultPlan`] is a
//! seeded, reproducible schedule of such failures: every injection site
//! (a bus region, an FPGA context) draws from a counter-indexed hash of
//! `(seed, site, occurrence)`, so
//!
//! * the same seed always produces the same fault schedule (byte-for-byte
//!   reproducible runs — the determinism contract experiments rely on), and
//! * a plan whose rates are all zero performs **no draws at all** and is
//!   observationally identical to running without a plan.
//!
//! Rates are expressed in parts-per-million of *opportunities* (one
//! opportunity per bus transfer, per context download, …), keeping every
//! decision in integer arithmetic.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// One in a million: the rate unit of a [`FaultPlan`].
pub const PPM: u32 = 1_000_000;

/// The kinds of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A word of a bitstream flips during download (caught by CRC).
    BitstreamCorruption,
    /// A bus transfer fails with a slave error response.
    BusTransfer,
    /// A context download times out before the device signals ready.
    LoadTimeout,
    /// A slave responds, but `stall_ticks` late (timing-only fault).
    SlaveStall,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::BitstreamCorruption => "bitstream-corruption",
            FaultKind::BusTransfer => "bus-transfer-error",
            FaultKind::LoadTimeout => "load-timeout",
            FaultKind::SlaveStall => "slave-stall",
        };
        f.write_str(s)
    }
}

/// Bus faults only fire on transfers targeting a configured address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrRangeFault {
    /// First faulty address.
    pub base: u64,
    /// Length of the faulty window in addresses.
    pub size: u64,
    /// Fault probability per transfer into the window, in ppm.
    pub rate_ppm: u32,
}

impl AddrRangeFault {
    fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr - self.base < self.size
    }
}

/// Counts of injected faults, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Bitstream words corrupted during downloads.
    pub bitstream_corruptions: u64,
    /// Bus transfers failed with a slave error.
    pub bus_errors: u64,
    /// Context downloads that timed out.
    pub load_timeouts: u64,
    /// Transfers delayed by a transient slave stall.
    pub slave_stalls: u64,
}

impl FaultLog {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.bitstream_corruptions + self.bus_errors + self.load_timeouts + self.slave_stalls
    }
}

/// A seeded, deterministic fault schedule (see module docs).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    bitstream_corruption_ppm: u32,
    load_timeout_ppm: u32,
    slave_stall_ppm: u32,
    slave_stall_ticks: u64,
    bus_error_ranges: Vec<AddrRangeFault>,
    /// Per-site opportunity counters: `(seed, site, counter)` indexes draws.
    counters: BTreeMap<String, u64>,
    log: FaultLog,
}

/// Shared handle so the bus and the FPGA consult one schedule.
pub type SharedFaultPlan = Rc<RefCell<FaultPlan>>;

impl FaultPlan {
    /// A plan with the given seed and all rates zero (injects nothing).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            bitstream_corruption_ppm: 0,
            load_timeout_ppm: 0,
            slave_stall_ppm: 0,
            slave_stall_ticks: 0,
            bus_error_ranges: Vec::new(),
            counters: BTreeMap::new(),
            log: FaultLog::default(),
        }
    }

    /// The seed this plan's schedule derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Enables bitstream word corruption at `rate_ppm` per download.
    pub fn with_bitstream_corruption(mut self, rate_ppm: u32) -> Self {
        self.bitstream_corruption_ppm = rate_ppm;
        self
    }

    /// Enables context-load timeouts at `rate_ppm` per download.
    pub fn with_load_timeouts(mut self, rate_ppm: u32) -> Self {
        self.load_timeout_ppm = rate_ppm;
        self
    }

    /// Enables transient slave stalls of `stall_ticks` at `rate_ppm` per
    /// transfer.
    pub fn with_slave_stalls(mut self, rate_ppm: u32, stall_ticks: u64) -> Self {
        self.slave_stall_ppm = rate_ppm;
        self.slave_stall_ticks = stall_ticks;
        self
    }

    /// Enables bus transfer errors at `rate_ppm` on `[base, base+size)`.
    pub fn with_bus_errors(mut self, base: u64, size: u64, rate_ppm: u32) -> Self {
        self.bus_error_ranges.push(AddrRangeFault {
            base,
            size,
            rate_ppm,
        });
        self
    }

    /// Wraps the plan for sharing between platform components.
    pub fn shared(self) -> SharedFaultPlan {
        Rc::new(RefCell::new(self))
    }

    /// True when no fault kind has a nonzero rate.
    pub fn is_inert(&self) -> bool {
        self.bitstream_corruption_ppm == 0
            && self.load_timeout_ppm == 0
            && self.slave_stall_ppm == 0
            && self.bus_error_ranges.iter().all(|r| r.rate_ppm == 0)
    }

    /// Injected-fault counts so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Draws the next pseudo-random word for `site`. Each call advances the
    /// site's occurrence counter, so schedules are independent across sites
    /// and reproducible within one.
    fn draw(&mut self, site: &str) -> u64 {
        let counter = self.counters.entry(site.to_owned()).or_insert(0);
        let occurrence = *counter;
        *counter += 1;
        mix64(self.seed ^ fnv1a(site.as_bytes()) ^ occurrence.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// One Bernoulli trial at `rate_ppm`. Zero-rate trials perform no draw,
    /// keeping an all-zero plan observationally inert.
    fn fires(&mut self, site: &str, rate_ppm: u32) -> bool {
        rate_ppm != 0 && self.draw(site) % (PPM as u64) < rate_ppm as u64
    }

    /// Should this download of `context` (of `words` words) corrupt?
    /// Returns `(word_index, xor_mask)` of the corrupted word; the mask is
    /// never zero, so the corrupted stream always differs.
    pub fn bitstream_corruption(&mut self, context: &str, words: u32) -> Option<(u32, u32)> {
        if words == 0 || !self.fires_site("bitstream", context, self.bitstream_corruption_ppm) {
            return None;
        }
        self.log.bitstream_corruptions += 1;
        let site = format!("bitstream-word@{context}");
        let index = (self.draw(&site) % words as u64) as u32;
        let mask = (self.draw(&site) as u32) | 1;
        Some((index, mask))
    }

    /// Should this download of `context` time out?
    pub fn load_timeout(&mut self, context: &str) -> bool {
        if self.fires_site("load-timeout", context, self.load_timeout_ppm) {
            self.log.load_timeouts += 1;
            true
        } else {
            false
        }
    }

    /// Should a transfer to `addr` fail with a slave error?
    pub fn bus_error(&mut self, addr: u64) -> bool {
        let hit = self
            .bus_error_ranges
            .iter()
            .enumerate()
            .find(|(_, r)| r.contains(addr) && r.rate_ppm > 0)
            .map(|(i, r)| (i, r.rate_ppm));
        match hit {
            Some((range, ppm)) if self.fires_site("bus-error", &format!("range{range}"), ppm) => {
                self.log.bus_errors += 1;
                true
            }
            _ => false,
        }
    }

    /// Extra latency of a transient stall on `slave`, if one fires.
    pub fn slave_stall(&mut self, slave: &str) -> Option<u64> {
        if self.fires_site("slave-stall", slave, self.slave_stall_ppm) {
            self.log.slave_stalls += 1;
            Some(self.slave_stall_ticks)
        } else {
            None
        }
    }

    fn fires_site(&mut self, kind: &str, site: &str, rate_ppm: u32) -> bool {
        if rate_ppm == 0 {
            return false;
        }
        let key = format!("{kind}@{site}");
        self.fires(&key, rate_ppm)
    }
}

/// SplitMix64 finalizer: the plan's stateless mixing function. Public so
/// other substrate components (e.g. pseudo-bitstream synthesis) can derive
/// deterministic data from the same primitive.
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes: stable site-name hashing.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut p = FaultPlan::new(seed)
                .with_bitstream_corruption(400_000)
                .with_bus_errors(0x1000, 0x100, 300_000)
                .with_load_timeouts(200_000)
                .with_slave_stalls(250_000, 16);
            let mut events = Vec::new();
            for i in 0..200u64 {
                events.push((
                    p.bitstream_corruption("config1", 256),
                    p.bus_error(0x1000 + (i % 0x100)),
                    p.load_timeout("config2"),
                    p.slave_stall("flash"),
                ));
            }
            (events, *p.log())
        };
        let (a, la) = run(7);
        let (b, lb) = run(7);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert!(la.total() > 0, "rates this high must inject something");
        let (c, _) = run(8);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn zero_rate_plan_is_inert_and_draws_nothing() {
        let mut p = FaultPlan::new(99);
        assert!(p.is_inert());
        for _ in 0..50 {
            assert_eq!(p.bitstream_corruption("config1", 128), None);
            assert!(!p.bus_error(0x0));
            assert!(!p.load_timeout("config1"));
            assert_eq!(p.slave_stall("ram"), None);
        }
        assert_eq!(p.log().total(), 0);
        assert!(p.counters.is_empty(), "zero-rate trials must not draw");
    }

    #[test]
    fn bus_errors_respect_address_ranges() {
        let mut p = FaultPlan::new(3).with_bus_errors(0x2000, 0x10, PPM);
        assert!(p.bus_error(0x2000), "ppm=1e6 always fires in range");
        assert!(p.bus_error(0x200F));
        assert!(!p.bus_error(0x2010), "outside the window");
        assert!(!p.bus_error(0x1FFF));
        assert_eq!(p.log().bus_errors, 2);
    }

    #[test]
    fn corruption_mask_is_never_zero() {
        let mut p = FaultPlan::new(11).with_bitstream_corruption(PPM);
        for _ in 0..100 {
            let (index, mask) = p.bitstream_corruption("ctx", 64).expect("always fires");
            assert!(index < 64);
            assert_ne!(mask, 0);
        }
    }

    #[test]
    fn rates_scale_injection_counts() {
        let count = |ppm: u32| {
            let mut p = FaultPlan::new(42).with_load_timeouts(ppm);
            (0..2000).filter(|_| p.load_timeout("c")).count()
        };
        let low = count(50_000); // 5%
        let high = count(500_000); // 50%
        assert!(low > 0 && high > low, "low={low} high={high}");
        assert!((800..1200).contains(&high), "≈50% of 2000, got {high}");
    }
}
