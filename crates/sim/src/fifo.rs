//! Bounded FIFO channels with blocking semantics.
//!
//! The level-1 Symbad model uses point-to-point channels between the face
//! recognition modules; levels 2–3 keep FIFOs between the hardware side and
//! the bus wrappers. LPV's FIFO-dimensioning experiment (E6) consumes the
//! high-watermark statistics recorded here.

use std::collections::VecDeque;

/// Identifier of a FIFO channel registered with a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FifoId(pub(crate) usize);

impl FifoId {
    /// Raw index of the FIFO in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Kernel-internal storage for one FIFO channel.
#[derive(Debug)]
pub(crate) struct FifoSlot<T> {
    pub(crate) name: String,
    pub(crate) capacity: usize,
    pub(crate) queue: VecDeque<T>,
    pub(crate) total_reads: u64,
    pub(crate) total_writes: u64,
    pub(crate) high_watermark: usize,
    /// Processes blocked waiting for a token to appear.
    pub(crate) read_waiters: Vec<crate::process::ProcessId>,
    /// Processes blocked waiting for space to appear.
    pub(crate) write_waiters: Vec<crate::process::ProcessId>,
}

impl<T> FifoSlot<T> {
    pub(crate) fn new(name: &str, capacity: usize) -> Self {
        FifoSlot {
            name: name.to_owned(),
            capacity,
            queue: VecDeque::new(),
            total_reads: 0,
            total_writes: 0,
            high_watermark: 0,
            read_waiters: Vec::new(),
            write_waiters: Vec::new(),
        }
    }
}

/// Read-only snapshot of a FIFO's occupancy statistics.
///
/// Obtained from [`crate::Simulator::fifo_stats`]; experiment E6 compares the
/// observed `high_watermark` against the capacity bound LPV proves
/// sufficient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoStats {
    /// Channel name given at registration.
    pub name: String,
    /// Configured capacity in tokens.
    pub capacity: usize,
    /// Tokens currently queued.
    pub occupancy: usize,
    /// Total successful reads over the run.
    pub total_reads: u64,
    /// Total successful writes over the run.
    pub total_writes: u64,
    /// Maximum occupancy ever observed.
    pub high_watermark: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_starts_empty() {
        let slot: FifoSlot<u32> = FifoSlot::new("ch", 4);
        assert_eq!(slot.queue.len(), 0);
        assert_eq!(slot.capacity, 4);
        assert_eq!(slot.high_watermark, 0);
        assert_eq!(slot.name, "ch");
    }

    #[test]
    fn fifo_id_exposes_index() {
        assert_eq!(FifoId(7).index(), 7);
    }
}
