//! Simulation time.
//!
//! Time advances in abstract kernel *ticks*. The Symbad flow interprets a
//! tick as one CPU/bus clock cycle at levels 2–4 and as an arbitrary causal
//! step at the untimed level 1, mirroring how SystemC time units are assigned
//! per model.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in kernel ticks.
///
/// `SimTime` is a transparent, totally ordered newtype over `u64`. Arithmetic
/// saturates at [`SimTime::MAX`] rather than wrapping, so "run forever"
/// horizons compose safely with offsets.
///
/// # Example
///
/// ```
/// use sim::SimTime;
/// let t = SimTime::from_ticks(10) + SimTime::from_ticks(5);
/// assert_eq!(t.ticks(), 15);
/// assert_eq!(SimTime::MAX + SimTime::from_ticks(1), SimTime::MAX);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "unbounded" run horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick count.
    #[inline]
    pub const fn saturating_add_ticks(self, ticks: u64) -> Self {
        SimTime(self.0.saturating_add(ticks))
    }

    /// Ticks elapsed since `earlier`, or zero when `earlier` is later.
    #[inline]
    pub const fn ticks_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Whether this is the unbounded horizon.
    #[inline]
    pub const fn is_max(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_max() {
            write!(f, "t=∞")
        } else {
            write!(f, "t={}", self.0)
        }
    }
}

impl From<u64> for SimTime {
    fn from(ticks: u64) -> Self {
        SimTime(ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_ticks() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn addition_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_ticks(7), SimTime::MAX);
        assert_eq!(SimTime::MAX.saturating_add_ticks(1), SimTime::MAX);
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        assert_eq!(
            SimTime::from_ticks(3) - SimTime::from_ticks(10),
            SimTime::ZERO
        );
        assert_eq!(
            SimTime::from_ticks(10).ticks_since(SimTime::from_ticks(3)),
            7
        );
        assert_eq!(
            SimTime::from_ticks(3).ticks_since(SimTime::from_ticks(10)),
            0
        );
    }

    #[test]
    fn display_renders_ticks_and_infinity() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "t=42");
        assert_eq!(SimTime::MAX.to_string(), "t=∞");
    }

    #[test]
    fn conversion_from_u64() {
        let t: SimTime = 9u64.into();
        assert_eq!(t.ticks(), 9);
    }
}
