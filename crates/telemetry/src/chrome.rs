//! Chrome-trace exporter (`chrome://tracing` / Perfetto JSON).
//!
//! One trace event per line, so goldens diff cleanly. Simulation ticks map
//! to the format's microsecond timestamps one-to-one (1 tick = 1 µs of
//! trace time); wall time, when captured, rides along in `args.wall_us`.
//! Sorting is by `(ts, tid, seq)` for spans and `(name, at)` for counter
//! samples — both total orders on deterministic inputs, so a fixed-seed
//! run exports identical bytes every time.

use crate::collect::{Collector, Span};
use crate::json::Json;

/// Serializes the collector's spans and gauges as a Chrome trace.
pub fn chrome_trace(collector: &Collector) -> String {
    let mut spans = collector.spans();
    // Track → tid, alphabetical.
    let mut tracks: Vec<String> = spans.iter().map(|s| s.track.clone()).collect();
    tracks.sort();
    tracks.dedup();
    let tid_of = |track: &str| tracks.iter().position(|t| t == track).unwrap_or(0) as u64;

    spans.sort_by(|a, b| {
        (a.start, tid_of(&a.track), a.seq).cmp(&(b.start, tid_of(&b.track), b.seq))
    });

    let mut events: Vec<Json> = Vec::new();
    events.push(Json::obj(vec![
        ("ph", Json::Str("M".into())),
        ("pid", Json::UInt(1)),
        ("tid", Json::UInt(0)),
        ("name", Json::Str("process_name".into())),
        (
            "args",
            Json::obj(vec![("name", Json::Str("symbad".into()))]),
        ),
    ]));
    for (tid, track) in tracks.iter().enumerate() {
        events.push(Json::obj(vec![
            ("ph", Json::Str("M".into())),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(tid as u64)),
            ("name", Json::Str("thread_name".into())),
            ("args", Json::obj(vec![("name", Json::Str(track.clone()))])),
        ]));
    }
    for s in &spans {
        events.push(span_event(s, tid_of(&s.track)));
    }
    // Gauge series become counter events on the process track.
    for (name, series) in collector.gauges() {
        for (at, value) in series {
            events.push(Json::obj(vec![
                ("ph", Json::Str("C".into())),
                ("pid", Json::UInt(1)),
                ("tid", Json::UInt(0)),
                ("name", Json::Str(name.clone())),
                ("ts", Json::UInt(at)),
                ("args", Json::obj(vec![("value", Json::Int(value))])),
            ]));
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(&ev.render());
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

fn span_event(s: &Span, tid: u64) -> Json {
    Json::obj(vec![
        ("ph", Json::Str("X".into())),
        ("pid", Json::UInt(1)),
        ("tid", Json::UInt(tid)),
        ("name", Json::Str(s.name.clone())),
        ("ts", Json::UInt(s.start)),
        ("dur", Json::UInt(s.end - s.start)),
        (
            "args",
            Json::obj(vec![
                ("depth", Json::UInt(s.depth as u64)),
                ("wall_us", Json::UInt(s.wall_us)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::Instrument;

    #[test]
    fn exports_spans_and_counters() {
        let c = Collector::new();
        c.span("bus:cpu", "ram:W4", 10, 15);
        c.span("fpga", "load config1", 0, 265);
        c.gauge_set("fpga.context", 265, 1);
        let trace = chrome_trace(&c);
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"bus:cpu\""));
        assert!(trace.contains("\"ram:W4\""));
        assert!(trace.contains("\"dur\":265"));
        assert!(trace.contains("\"ph\":\"C\""));
        // Valid event-array shape: starts/ends with the wrapper object.
        assert!(trace.starts_with("{\"displayTimeUnit\""));
        assert!(trace.ends_with("]}\n"));
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let c = Collector::new();
            c.span("b", "two", 5, 9);
            c.span("a", "one", 5, 7);
            c.counter_add("n", 1);
            c.gauge_set("g", 1, 2);
            chrome_trace(&c)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn spans_sort_by_time_then_track() {
        let c = Collector::new();
        c.span("z", "later", 100, 110);
        c.span("a", "earlier", 1, 2);
        let trace = chrome_trace(&c);
        let earlier = trace.find("earlier").unwrap();
        let later = trace.find("later").unwrap();
        assert!(earlier < later);
    }
}
