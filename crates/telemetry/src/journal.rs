//! The flight recorder: a bounded, typed, streaming event journal.
//!
//! Where the [`crate::Collector`] answers "how much" (counters, gauges,
//! histograms), the journal answers "what happened, in what order, and
//! what did each step cost": obligation lifecycles with per-obligation
//! effort provenance, cache probes, budget spend, panics/retries/
//! degradations, FPGA reconfigurations, phase transitions, and worker
//! queue activity.
//!
//! # Two lanes
//!
//! Events are split into two lanes with independent sequence counters:
//!
//! * the **deterministic lane** ([`EventKind`], field `seq`) carries only
//!   schedule-independent facts — obligation names, engine tags,
//!   fingerprints, effort spent in solver conflicts/decisions/BDD nodes,
//!   outcomes. For a fixed workload its JSONL rendering is bit-identical
//!   across worker counts, which is what makes it golden-testable;
//! * the **timing lane** ([`TimingKind`], field `tseq`) carries wall
//!   clock, worker ids and queue depths — honest performance data that is
//!   *expected* to differ run to run and is therefore kept out of the
//!   deterministic stream entirely.
//!
//! Emission is coordinator-only: worker threads never hold a journal
//! handle (the interior `RefCell` is deliberately `!Sync`, so the
//! compiler rejects a journal captured by an `exec::map` closure). The
//! coordinator emits events in obligation order, exactly like the
//! per-obligation collector replay discipline of the parallel backbone.
//!
//! # Bounding and streaming
//!
//! The ring keeps at most `capacity` events per lane; overflow drops the
//! oldest and counts it ([`Journal::dropped`]), so a journal can run for
//! the lifetime of a long service without unbounded growth.
//! [`Journal::flush_new`] renders only the lines appended since the last
//! flush — the incremental streaming primitive the batch-server roadmap
//! item needs.

use crate::collect::Collector;
use crate::json::Json;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Default per-lane ring capacity.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Deterministic effort spent by one obligation (or one phase), measured
/// on machine-independent axes — never wall-clock.
///
/// Derived from the counters an obligation's private [`Collector`]
/// accumulated ([`EffortSpent::from_collector`]), so attribution reuses
/// the exact instrumentation stream the engines already emit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffortSpent {
    /// SAT conflicts.
    pub sat_conflicts: u64,
    /// SAT decisions.
    pub sat_decisions: u64,
    /// SAT unit propagations.
    pub sat_propagations: u64,
    /// BDD nodes allocated.
    pub bdd_nodes: u64,
    /// Obligation-cache hits.
    pub cache_hits: u64,
    /// Obligation-cache misses.
    pub cache_misses: u64,
}

impl EffortSpent {
    /// Reads the effort axes out of a collector's counters (the counter
    /// names are the workspace-standard ones; see `docs/METRICS.md`).
    pub fn from_collector(c: &Collector) -> Self {
        EffortSpent {
            sat_conflicts: c.counter("sat.conflicts"),
            sat_decisions: c.counter("sat.decisions"),
            sat_propagations: c.counter("sat.propagations"),
            bdd_nodes: c.counter("bdd.nodes_allocated"),
            cache_hits: c.counter("cache.hits"),
            cache_misses: c.counter("cache.misses"),
        }
    }

    /// `after - before`, saturating (counters are monotonic, so a
    /// negative delta means a caller mixed up snapshots — clamp, don't
    /// wrap).
    pub fn delta(before: &EffortSpent, after: &EffortSpent) -> Self {
        EffortSpent {
            sat_conflicts: after.sat_conflicts.saturating_sub(before.sat_conflicts),
            sat_decisions: after.sat_decisions.saturating_sub(before.sat_decisions),
            sat_propagations: after
                .sat_propagations
                .saturating_sub(before.sat_propagations),
            bdd_nodes: after.bdd_nodes.saturating_sub(before.bdd_nodes),
            cache_hits: after.cache_hits.saturating_sub(before.cache_hits),
            cache_misses: after.cache_misses.saturating_sub(before.cache_misses),
        }
    }

    /// Accumulates `other` into `self`.
    pub fn add(&mut self, other: &EffortSpent) {
        self.sat_conflicts += other.sat_conflicts;
        self.sat_decisions += other.sat_decisions;
        self.sat_propagations += other.sat_propagations;
        self.bdd_nodes += other.bdd_nodes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Scalar cost score used to rank obligations: search effort
    /// (conflicts + decisions) plus BDD growth. Propagations and cache
    /// traffic are reported but not scored — they are consequences of
    /// search, not independent work.
    pub fn score(&self) -> u64 {
        self.sat_conflicts + self.sat_decisions + self.bdd_nodes
    }

    /// Whether every axis is zero.
    pub fn is_zero(&self) -> bool {
        *self == EffortSpent::default()
    }

    /// Compact one-line rendering for logs and timelines.
    pub fn to_line(&self) -> String {
        format!(
            "conflicts {}, decisions {}, propagations {}, bdd nodes {}, cache {}/{}",
            self.sat_conflicts,
            self.sat_decisions,
            self.sat_propagations,
            self.bdd_nodes,
            self.cache_hits,
            self.cache_hits + self.cache_misses
        )
    }
}

/// Full provenance of one finished obligation: identity, engine, effort
/// and outcome — the per-event record the flow profiler aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Stable obligation name (`miter:distance`, `property:state_in_range`,
    /// `phase:level 4: RTL, model checking, PCC`, …).
    pub obligation: String,
    /// Engine tag (`level4.miter`, `bmc`, `bdd-reach`, `flow.phase`, …).
    pub engine: String,
    /// 128-bit obligation identity fingerprint (the same dual-FNV lane
    /// construction the obligation cache uses), rendered as 32 hex
    /// digits in the JSONL stream.
    pub fingerprint: u128,
    /// Effort spent across all attempts.
    pub effort: EffortSpent,
    /// Outcome label (`proved`, `refuted`, `unknown`, `panicked`,
    /// `pass`, `fail`).
    pub outcome: String,
    /// Whether a panicked first attempt was retried.
    pub retried: bool,
}

/// One deterministic-lane event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An obligation was dispatched.
    ObligationStarted {
        /// Obligation name.
        obligation: String,
        /// Engine tag.
        engine: String,
    },
    /// An obligation finished, with full cost provenance.
    ObligationFinished(Provenance),
    /// Obligation-cache traffic attributed to one obligation.
    CacheProbe {
        /// Obligation name.
        obligation: String,
        /// Lookups served from the cache.
        hits: u64,
        /// Lookups that missed.
        misses: u64,
    },
    /// Deterministic budget spend on one effort axis.
    BudgetSpend {
        /// Obligation name.
        obligation: String,
        /// Axis label (`sat_conflicts`, `sat_decisions`, `bdd_nodes`).
        axis: &'static str,
        /// Effort spent on the axis.
        spent: u64,
        /// Per-call cap configured for the axis.
        cap: u64,
    },
    /// A supervised obligation panicked (rendered payload).
    Panic {
        /// Obligation name.
        obligation: String,
        /// Deterministic panic message.
        message: String,
    },
    /// A panicked obligation was retried.
    Retry {
        /// Obligation name.
        obligation: String,
    },
    /// An obligation degraded (ended Unknown or Panicked).
    Degradation {
        /// Obligation name.
        obligation: String,
        /// Final status label.
        status: String,
        /// One line of evidence.
        detail: String,
    },
    /// FPGA reconfiguration summary for a simulation level.
    FpgaReconfig {
        /// Context downloads performed.
        reconfigurations: u64,
        /// Bitstream words moved over the bus.
        download_words: u64,
    },
    /// A flow phase completed.
    Phase {
        /// Phase index on the flow axis.
        index: u64,
        /// Phase name.
        name: String,
        /// Whether the phase's checks passed.
        ok: bool,
    },
    /// A batch-service job passed admission control and joined its
    /// tenant's queue (the `serve` crate's lifecycle lane).
    JobAdmitted {
        /// Stable job label (`job-0001`, …).
        job: String,
        /// Tenant that submitted the job.
        tenant: String,
        /// Scheduling cost charged against the tenant's deficit.
        cost: u64,
    },
    /// A batch-service job left its queue and started running.
    JobStarted {
        /// Stable job label.
        job: String,
        /// Tenant that submitted the job.
        tenant: String,
    },
    /// One verification obligation of a running batch-service job
    /// finished (mirrored from the job's private journal, in obligation
    /// order).
    JobObligationDone {
        /// Stable job label.
        job: String,
        /// Obligation name.
        obligation: String,
        /// Outcome label (`proved`, `refuted`, `unknown`, `panicked`).
        outcome: String,
    },
    /// A batch-service job finished (successfully or not).
    JobFinished {
        /// Stable job label.
        job: String,
        /// Tenant that submitted the job.
        tenant: String,
        /// Whether every flow phase passed.
        ok: bool,
        /// Whether every supervised obligation ended conclusively.
        conclusive: bool,
    },
    /// A submission was rejected by admission control (the job never
    /// got an id — the rejection is the whole record).
    JobRejected {
        /// Tenant that attempted the submission.
        tenant: String,
        /// Deterministic one-line rejection reason.
        reason: String,
    },
}

impl EventKind {
    /// Stable `kind` label used in the JSONL stream.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::ObligationStarted { .. } => "obligation_started",
            EventKind::ObligationFinished(_) => "obligation_finished",
            EventKind::CacheProbe { .. } => "cache_probe",
            EventKind::BudgetSpend { .. } => "budget_spend",
            EventKind::Panic { .. } => "panic",
            EventKind::Retry { .. } => "retry",
            EventKind::Degradation { .. } => "degradation",
            EventKind::FpgaReconfig { .. } => "fpga_reconfig",
            EventKind::Phase { .. } => "phase",
            EventKind::JobAdmitted { .. } => "job_admitted",
            EventKind::JobStarted { .. } => "job_started",
            EventKind::JobObligationDone { .. } => "job_obligation_done",
            EventKind::JobFinished { .. } => "job_finished",
            EventKind::JobRejected { .. } => "job_rejected",
        }
    }
}

/// One timing-lane event. Everything here is allowed to differ between
/// runs and worker counts.
#[derive(Debug, Clone, PartialEq)]
pub enum TimingKind {
    /// Wall-clock latency of one obligation (all attempts).
    ObligationWall {
        /// Obligation name.
        obligation: String,
        /// Microseconds of wall time.
        wall_us: u64,
    },
    /// Queue shape of one dispatched batch.
    QueueDepth {
        /// Batch label (`level4.miters`, `level4.properties`, …).
        batch: String,
        /// Jobs enqueued.
        jobs: u64,
        /// Worker threads serving the batch.
        workers: u64,
        /// Deepest observed backlog while draining.
        peak_depth: u64,
    },
    /// Which worker ran which job (per-job attribution).
    WorkerJob {
        /// Batch label.
        batch: String,
        /// Job name (obligation name when known, else the index).
        job: String,
        /// Worker index within the batch's pool.
        worker: u64,
    },
    /// Wall-clock of a whole run section (used for obligations/sec).
    RunWall {
        /// Section label (`flow.cold`, `flow.supervised`, …).
        label: String,
        /// Microseconds of wall time.
        wall_us: u64,
    },
    /// End-to-end wall-clock latency of one batch-service job
    /// (queue-exit to finish; the `serve` crate's latency lane).
    JobWall {
        /// Stable job label.
        job: String,
        /// Microseconds of wall time.
        wall_us: u64,
    },
}

impl TimingKind {
    /// Stable `kind` label used in the JSONL stream.
    pub fn label(&self) -> &'static str {
        match self {
            TimingKind::ObligationWall { .. } => "obligation_wall",
            TimingKind::QueueDepth { .. } => "queue_depth",
            TimingKind::WorkerJob { .. } => "worker_job",
            TimingKind::RunWall { .. } => "run_wall",
            TimingKind::JobWall { .. } => "job_wall",
        }
    }
}

/// A deterministic-lane event with its sequence number (the ordering key
/// of the deterministic stream).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// 1-based deterministic-lane sequence number.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

/// A timing-lane event with its own sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingEvent {
    /// 1-based timing-lane sequence number.
    pub tseq: u64,
    /// Payload.
    pub kind: TimingKind,
}

impl Event {
    /// Renders as one compact JSON object (one JSONL line, no newline).
    pub fn to_jsonl(&self) -> String {
        let mut members: Vec<(&str, Json)> = vec![
            ("seq", Json::UInt(self.seq)),
            ("kind", Json::Str(self.kind.label().to_owned())),
        ];
        match &self.kind {
            EventKind::ObligationStarted { obligation, engine } => {
                members.push(("obligation", Json::Str(obligation.clone())));
                members.push(("engine", Json::Str(engine.clone())));
            }
            EventKind::ObligationFinished(p) => {
                members.push(("obligation", Json::Str(p.obligation.clone())));
                members.push(("engine", Json::Str(p.engine.clone())));
                members.push(("fingerprint", Json::Str(format!("{:032x}", p.fingerprint))));
                members.push(("outcome", Json::Str(p.outcome.clone())));
                members.push(("retried", Json::Bool(p.retried)));
                members.push(("sat_conflicts", Json::UInt(p.effort.sat_conflicts)));
                members.push(("sat_decisions", Json::UInt(p.effort.sat_decisions)));
                members.push(("sat_propagations", Json::UInt(p.effort.sat_propagations)));
                members.push(("bdd_nodes", Json::UInt(p.effort.bdd_nodes)));
                members.push(("cache_hits", Json::UInt(p.effort.cache_hits)));
                members.push(("cache_misses", Json::UInt(p.effort.cache_misses)));
            }
            EventKind::CacheProbe {
                obligation,
                hits,
                misses,
            } => {
                members.push(("obligation", Json::Str(obligation.clone())));
                members.push(("hits", Json::UInt(*hits)));
                members.push(("misses", Json::UInt(*misses)));
            }
            EventKind::BudgetSpend {
                obligation,
                axis,
                spent,
                cap,
            } => {
                members.push(("obligation", Json::Str(obligation.clone())));
                members.push(("axis", Json::Str((*axis).to_owned())));
                members.push(("spent", Json::UInt(*spent)));
                members.push(("cap", Json::UInt(*cap)));
            }
            EventKind::Panic {
                obligation,
                message,
            } => {
                members.push(("obligation", Json::Str(obligation.clone())));
                members.push(("message", Json::Str(message.clone())));
            }
            EventKind::Retry { obligation } => {
                members.push(("obligation", Json::Str(obligation.clone())));
            }
            EventKind::Degradation {
                obligation,
                status,
                detail,
            } => {
                members.push(("obligation", Json::Str(obligation.clone())));
                members.push(("status", Json::Str(status.clone())));
                members.push(("detail", Json::Str(detail.clone())));
            }
            EventKind::FpgaReconfig {
                reconfigurations,
                download_words,
            } => {
                members.push(("reconfigurations", Json::UInt(*reconfigurations)));
                members.push(("download_words", Json::UInt(*download_words)));
            }
            EventKind::Phase { index, name, ok } => {
                members.push(("index", Json::UInt(*index)));
                members.push(("name", Json::Str(name.clone())));
                members.push(("ok", Json::Bool(*ok)));
            }
            EventKind::JobAdmitted { job, tenant, cost } => {
                members.push(("job", Json::Str(job.clone())));
                members.push(("tenant", Json::Str(tenant.clone())));
                members.push(("cost", Json::UInt(*cost)));
            }
            EventKind::JobStarted { job, tenant } => {
                members.push(("job", Json::Str(job.clone())));
                members.push(("tenant", Json::Str(tenant.clone())));
            }
            EventKind::JobObligationDone {
                job,
                obligation,
                outcome,
            } => {
                members.push(("job", Json::Str(job.clone())));
                members.push(("obligation", Json::Str(obligation.clone())));
                members.push(("outcome", Json::Str(outcome.clone())));
            }
            EventKind::JobFinished {
                job,
                tenant,
                ok,
                conclusive,
            } => {
                members.push(("job", Json::Str(job.clone())));
                members.push(("tenant", Json::Str(tenant.clone())));
                members.push(("ok", Json::Bool(*ok)));
                members.push(("conclusive", Json::Bool(*conclusive)));
            }
            EventKind::JobRejected { tenant, reason } => {
                members.push(("tenant", Json::Str(tenant.clone())));
                members.push(("reason", Json::Str(reason.clone())));
            }
        }
        Json::obj(members).render()
    }
}

impl TimingEvent {
    /// Renders as one compact JSON object (one JSONL line, no newline).
    pub fn to_jsonl(&self) -> String {
        let mut members: Vec<(&str, Json)> = vec![
            ("tseq", Json::UInt(self.tseq)),
            ("kind", Json::Str(self.kind.label().to_owned())),
        ];
        match &self.kind {
            TimingKind::ObligationWall {
                obligation,
                wall_us,
            } => {
                members.push(("obligation", Json::Str(obligation.clone())));
                members.push(("wall_us", Json::UInt(*wall_us)));
            }
            TimingKind::QueueDepth {
                batch,
                jobs,
                workers,
                peak_depth,
            } => {
                members.push(("batch", Json::Str(batch.clone())));
                members.push(("jobs", Json::UInt(*jobs)));
                members.push(("workers", Json::UInt(*workers)));
                members.push(("peak_depth", Json::UInt(*peak_depth)));
            }
            TimingKind::WorkerJob { batch, job, worker } => {
                members.push(("batch", Json::Str(batch.clone())));
                members.push(("job", Json::Str(job.clone())));
                members.push(("worker", Json::UInt(*worker)));
            }
            TimingKind::RunWall { label, wall_us } => {
                members.push(("label", Json::Str(label.clone())));
                members.push(("wall_us", Json::UInt(*wall_us)));
            }
            TimingKind::JobWall { job, wall_us } => {
                members.push(("job", Json::Str(job.clone())));
                members.push(("wall_us", Json::UInt(*wall_us)));
            }
        }
        Json::obj(members).render()
    }
}

#[derive(Debug, Default)]
struct JournalInner {
    seq: u64,
    tseq: u64,
    events: VecDeque<Event>,
    timing: VecDeque<TimingEvent>,
    dropped: u64,
    timing_dropped: u64,
    /// Highest sequence numbers already rendered by [`Journal::flush_new`].
    flushed_seq: u64,
    flushed_tseq: u64,
}

/// The flight recorder. Interior-mutable and deliberately `!Sync` —
/// emission is a coordinator-thread activity, exactly like the collector
/// replay discipline; a journal captured by a worker closure is a
/// compile error.
#[derive(Debug)]
pub struct Journal {
    inner: RefCell<JournalInner>,
    capacity: usize,
    /// Whether the coordinator should bother capturing wall-clock for
    /// timing-lane events. Off by default so test journals stay free of
    /// host noise.
    wall_enabled: bool,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// A journal with the default ring capacity and wall capture off
    /// (the deterministic configuration used by tests).
    pub fn new() -> Self {
        Journal::with_capacity(DEFAULT_CAPACITY)
    }

    /// A journal with an explicit per-lane ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Journal {
            inner: RefCell::new(JournalInner::default()),
            capacity: capacity.max(1),
            wall_enabled: false,
        }
    }

    /// A journal whose coordinator also records wall-clock timing events
    /// (obligation latency, run throughput). The deterministic lane is
    /// unaffected.
    pub fn with_wall_clock() -> Self {
        Journal {
            wall_enabled: true,
            ..Journal::new()
        }
    }

    /// Whether the coordinator should capture wall-clock timing.
    pub fn wall_enabled(&self) -> bool {
        self.wall_enabled
    }

    /// Appends one deterministic-lane event.
    pub fn emit(&self, kind: EventKind) {
        let mut i = self.inner.borrow_mut();
        i.seq += 1;
        let seq = i.seq;
        if i.events.len() >= self.capacity {
            i.events.pop_front();
            i.dropped += 1;
        }
        i.events.push_back(Event { seq, kind });
    }

    /// Appends one timing-lane event.
    pub fn emit_timing(&self, kind: TimingKind) {
        let mut i = self.inner.borrow_mut();
        i.tseq += 1;
        let tseq = i.tseq;
        if i.timing.len() >= self.capacity {
            i.timing.pop_front();
            i.timing_dropped += 1;
        }
        i.timing.push_back(TimingEvent { tseq, kind });
    }

    /// Snapshot of the deterministic lane, in sequence order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.borrow().events.iter().cloned().collect()
    }

    /// Snapshot of the timing lane, in sequence order.
    pub fn timing_events(&self) -> Vec<TimingEvent> {
        self.inner.borrow().timing.iter().cloned().collect()
    }

    /// Events currently retained (deterministic lane, timing lane).
    pub fn len(&self) -> (usize, usize) {
        let i = self.inner.borrow();
        (i.events.len(), i.timing.len())
    }

    /// True when both lanes are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0)
    }

    /// Events dropped to ring overflow (deterministic lane, timing lane).
    pub fn dropped(&self) -> (u64, u64) {
        let i = self.inner.borrow();
        (i.dropped, i.timing_dropped)
    }

    /// The deterministic lane as JSONL (one event per line, trailing
    /// newline). Bit-identical across worker counts for a fixed workload.
    pub fn deterministic_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.inner.borrow().events.iter() {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// The timing lane as JSONL.
    pub fn timing_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.inner.borrow().timing.iter() {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Both lanes as JSONL: the deterministic stream first, then the
    /// timing stream (each line self-describes its lane via `seq` vs
    /// `tseq`).
    pub fn to_jsonl(&self) -> String {
        let mut out = self.deterministic_jsonl();
        out.push_str(&self.timing_jsonl());
        out
    }

    /// Renders only the lines appended since the previous `flush_new`
    /// call — the incremental streaming primitive (a service can call
    /// this on a cadence and append to a log sink). Returns an empty
    /// string when nothing new happened.
    pub fn flush_new(&self) -> String {
        let mut i = self.inner.borrow_mut();
        let mut out = String::new();
        let from_seq = i.flushed_seq;
        for e in i.events.iter().filter(|e| e.seq > from_seq) {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        let from_tseq = i.flushed_tseq;
        for e in i.timing.iter().filter(|e| e.tseq > from_tseq) {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        i.flushed_seq = i.seq;
        i.flushed_tseq = i.tseq;
        out
    }
}

// ── JSONL schema validation ──────────────────────────────────────────────

/// Splits one flat JSON object line into its top-level keys. Journal
/// lines are flat by construction (no nested objects/arrays), which is
/// what makes this scanner complete for them.
fn top_level_keys(line: &str) -> Result<Vec<String>, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "line is not a JSON object".to_owned())?;
    let mut keys = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        // Parse `"key":value` pairs separated by commas.
        match chars.next() {
            None => break,
            Some('"') => {}
            Some(c) => return Err(format!("expected '\"' at a key, found {c:?}")),
        }
        let mut key = String::new();
        loop {
            match chars.next() {
                Some('\\') => {
                    key.push('\\');
                    if let Some(c) = chars.next() {
                        key.push(c);
                    }
                }
                Some('"') => break,
                Some(c) => key.push(c),
                None => return Err("unterminated key".to_owned()),
            }
        }
        keys.push(key.clone());
        if chars.next() != Some(':') {
            return Err(format!("key {key:?} is not followed by ':'"));
        }
        // Skip the value: either a quoted string or a bare token.
        match chars.peek() {
            Some('"') => {
                chars.next();
                loop {
                    match chars.next() {
                        Some('\\') => {
                            chars.next();
                        }
                        Some('"') => break,
                        Some(_) => {}
                        None => return Err("unterminated string value".to_owned()),
                    }
                }
                match chars.next() {
                    None => break,
                    Some(',') => {}
                    Some(c) => return Err(format!("expected ',' after a value, found {c:?}")),
                }
            }
            _ => {
                let mut saw_any = false;
                loop {
                    match chars.next() {
                        None => break,
                        Some(',') => break,
                        Some(c) if c == '{' || c == '[' => {
                            return Err("journal lines must be flat objects".to_owned())
                        }
                        Some(_) => saw_any = true,
                    }
                }
                if !saw_any {
                    return Err(format!("key {key:?} has an empty value"));
                }
                if chars.peek().is_none() {
                    break;
                }
            }
        }
    }
    Ok(keys)
}

/// Validates one JSONL journal line against the event schema: the line
/// must be a flat JSON object carrying `seq` (deterministic lane) or
/// `tseq` (timing lane), a known `kind`, and exactly the keys that kind
/// requires.
///
/// This is what the `observability-smoke` CI job runs over every line the
/// flow example streams out.
pub fn validate_line(line: &str) -> Result<(), String> {
    let keys = top_level_keys(line)?;
    let lane_key = keys.first().map(String::as_str);
    let deterministic = match lane_key {
        Some("seq") => true,
        Some("tseq") => false,
        other => return Err(format!("first key must be seq/tseq, found {other:?}")),
    };
    if keys.get(1).map(String::as_str) != Some("kind") {
        return Err("second key must be 'kind'".to_owned());
    }
    // Extract the kind value textually (validated flat by top_level_keys).
    let kind = line
        .split("\"kind\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .ok_or_else(|| "missing kind value".to_owned())?;
    let expected: &[&str] = match (deterministic, kind) {
        (true, "obligation_started") => &["obligation", "engine"],
        (true, "obligation_finished") => &[
            "obligation",
            "engine",
            "fingerprint",
            "outcome",
            "retried",
            "sat_conflicts",
            "sat_decisions",
            "sat_propagations",
            "bdd_nodes",
            "cache_hits",
            "cache_misses",
        ],
        (true, "cache_probe") => &["obligation", "hits", "misses"],
        (true, "budget_spend") => &["obligation", "axis", "spent", "cap"],
        (true, "panic") => &["obligation", "message"],
        (true, "retry") => &["obligation"],
        (true, "degradation") => &["obligation", "status", "detail"],
        (true, "fpga_reconfig") => &["reconfigurations", "download_words"],
        (true, "phase") => &["index", "name", "ok"],
        (true, "job_admitted") => &["job", "tenant", "cost"],
        (true, "job_started") => &["job", "tenant"],
        (true, "job_obligation_done") => &["job", "obligation", "outcome"],
        (true, "job_finished") => &["job", "tenant", "ok", "conclusive"],
        (true, "job_rejected") => &["tenant", "reason"],
        (false, "obligation_wall") => &["obligation", "wall_us"],
        (false, "queue_depth") => &["batch", "jobs", "workers", "peak_depth"],
        (false, "worker_job") => &["batch", "job", "worker"],
        (false, "run_wall") => &["label", "wall_us"],
        (false, "job_wall") => &["job", "wall_us"],
        (lane, kind) => {
            return Err(format!(
                "unknown kind {kind:?} on the {} lane",
                if lane { "deterministic" } else { "timing" }
            ))
        }
    };
    let got: Vec<&str> = keys.iter().skip(2).map(String::as_str).collect();
    if got != expected {
        return Err(format!(
            "kind {kind:?} expects keys {expected:?}, found {got:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(name: &str, conflicts: u64) -> EventKind {
        EventKind::ObligationFinished(Provenance {
            obligation: name.to_owned(),
            engine: "bmc".to_owned(),
            fingerprint: 0xDEAD_BEEF,
            effort: EffortSpent {
                sat_conflicts: conflicts,
                ..EffortSpent::default()
            },
            outcome: "proved".to_owned(),
            retried: false,
        })
    }

    #[test]
    fn events_get_monotonic_seq_and_round_trip_jsonl() {
        let j = Journal::new();
        j.emit(EventKind::ObligationStarted {
            obligation: "miter:distance".into(),
            engine: "level4.miter".into(),
        });
        j.emit(finished("miter:distance", 12));
        j.emit_timing(TimingKind::ObligationWall {
            obligation: "miter:distance".into(),
            wall_us: 99,
        });
        let events = j.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[1].seq, 2);
        assert_eq!(j.timing_events()[0].tseq, 1);
        assert_eq!(j.len(), (2, 1));
        assert!(!j.is_empty());
        for line in j.to_jsonl().lines() {
            validate_line(line).expect(line);
        }
        assert!(j
            .deterministic_jsonl()
            .contains("\"fingerprint\":\"000000000000000000000000deadbeef\""));
        assert!(j.timing_jsonl().contains("\"wall_us\":99"));
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let j = Journal::with_capacity(2);
        for i in 0..5 {
            j.emit(finished(&format!("o{i}"), i));
        }
        let events = j.events();
        assert_eq!(events.len(), 2);
        // Oldest dropped; seq numbers keep counting.
        assert_eq!(events[0].seq, 4);
        assert_eq!(events[1].seq, 5);
        assert_eq!(j.dropped(), (3, 0));
    }

    #[test]
    fn flush_new_is_incremental() {
        let j = Journal::new();
        j.emit(finished("a", 1));
        let first = j.flush_new();
        assert_eq!(first.lines().count(), 1);
        assert!(j.flush_new().is_empty());
        j.emit(finished("b", 2));
        j.emit_timing(TimingKind::RunWall {
            label: "flow".into(),
            wall_us: 5,
        });
        let second = j.flush_new();
        assert_eq!(second.lines().count(), 2);
        assert!(second.contains("\"obligation\":\"b\""));
        assert!(second.contains("\"run_wall\""));
        assert!(!second.contains("\"obligation\":\"a\""));
    }

    #[test]
    fn effort_delta_and_score() {
        let before = EffortSpent {
            sat_conflicts: 5,
            sat_decisions: 10,
            sat_propagations: 100,
            bdd_nodes: 2,
            cache_hits: 1,
            cache_misses: 0,
        };
        let after = EffortSpent {
            sat_conflicts: 9,
            sat_decisions: 30,
            sat_propagations: 150,
            bdd_nodes: 4,
            cache_hits: 1,
            cache_misses: 2,
        };
        let d = EffortSpent::delta(&before, &after);
        assert_eq!(d.sat_conflicts, 4);
        assert_eq!(d.sat_decisions, 20);
        assert_eq!(d.sat_propagations, 50);
        assert_eq!(d.bdd_nodes, 2);
        assert_eq!((d.cache_hits, d.cache_misses), (0, 2));
        assert_eq!(d.score(), 4 + 20 + 2);
        assert!(!d.is_zero());
        assert!(EffortSpent::default().is_zero());
        // Swapped snapshots clamp instead of wrapping.
        assert_eq!(EffortSpent::delta(&after, &before).sat_conflicts, 0);
        let mut acc = EffortSpent::default();
        acc.add(&d);
        acc.add(&d);
        assert_eq!(acc.sat_conflicts, 8);
        assert!(d.to_line().contains("conflicts 4"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line("{\"kind\":\"phase\"}").is_err());
        assert!(validate_line("{\"seq\":1,\"kind\":\"no_such_kind\"}").is_err());
        // Missing required key.
        assert!(validate_line("{\"seq\":1,\"kind\":\"retry\"}").is_err());
        assert!(validate_line("{\"seq\":1,\"kind\":\"retry\",\"obligation\":\"x\"}").is_ok());
        // Extra key.
        assert!(
            validate_line("{\"seq\":1,\"kind\":\"retry\",\"obligation\":\"x\",\"z\":1}").is_err()
        );
        // Nested values are rejected (journal lines are flat).
        assert!(validate_line("{\"seq\":1,\"kind\":\"retry\",\"obligation\":{}}").is_err());
    }

    #[test]
    fn every_kind_validates_against_its_own_rendering() {
        let j = Journal::new();
        j.emit(EventKind::ObligationStarted {
            obligation: "o".into(),
            engine: "e".into(),
        });
        j.emit(finished("o", 3));
        j.emit(EventKind::CacheProbe {
            obligation: "o".into(),
            hits: 1,
            misses: 2,
        });
        j.emit(EventKind::BudgetSpend {
            obligation: "o".into(),
            axis: "sat_conflicts",
            spent: 7,
            cap: 100,
        });
        j.emit(EventKind::Panic {
            obligation: "o".into(),
            message: "boom \"quoted\"".into(),
        });
        j.emit(EventKind::Retry {
            obligation: "o".into(),
        });
        j.emit(EventKind::Degradation {
            obligation: "o".into(),
            status: "unknown".into(),
            detail: "budget".into(),
        });
        j.emit(EventKind::FpgaReconfig {
            reconfigurations: 4,
            download_words: 4096,
        });
        j.emit(EventKind::Phase {
            index: 0,
            name: "level 1".into(),
            ok: true,
        });
        j.emit(EventKind::JobAdmitted {
            job: "job-0001".into(),
            tenant: "acme".into(),
            cost: 2,
        });
        j.emit(EventKind::JobStarted {
            job: "job-0001".into(),
            tenant: "acme".into(),
        });
        j.emit(EventKind::JobObligationDone {
            job: "job-0001".into(),
            obligation: "miter:distance".into(),
            outcome: "proved".into(),
        });
        j.emit(EventKind::JobFinished {
            job: "job-0001".into(),
            tenant: "acme".into(),
            ok: true,
            conclusive: true,
        });
        j.emit(EventKind::JobRejected {
            tenant: "acme".into(),
            reason: "queue full: 64 of 64 jobs queued".into(),
        });
        j.emit_timing(TimingKind::JobWall {
            job: "job-0001".into(),
            wall_us: 1234,
        });
        j.emit_timing(TimingKind::ObligationWall {
            obligation: "o".into(),
            wall_us: 1,
        });
        j.emit_timing(TimingKind::QueueDepth {
            batch: "b".into(),
            jobs: 5,
            workers: 2,
            peak_depth: 5,
        });
        j.emit_timing(TimingKind::WorkerJob {
            batch: "b".into(),
            job: "o".into(),
            worker: 1,
        });
        j.emit_timing(TimingKind::RunWall {
            label: "flow".into(),
            wall_us: 10,
        });
        for line in j.to_jsonl().lines() {
            validate_line(line).expect(line);
        }
    }

    #[test]
    fn wall_flag_defaults_off() {
        assert!(!Journal::new().wall_enabled());
        assert!(Journal::with_wall_clock().wall_enabled());
    }
}
