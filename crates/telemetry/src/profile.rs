//! The flow profiler: aggregates a [`Journal`] into an "explain this
//! run" report.
//!
//! The profiler answers the questions the ROADMAP's batch-server item
//! needs answered per job: *which obligations cost the most, which
//! engines hit their caches, how much of the effort budget was burned,
//! what degraded, and how fast did obligations complete*. Like the
//! journal it reads, the output is split into a **deterministic**
//! report (event set, ordering key, effort totals — bit-identical
//! across worker counts) and a **timing** report (wall-clock latency
//! percentiles, throughput, worker attribution — honest but
//! run-dependent).

use crate::journal::{EffortSpent, EventKind, Journal, Provenance, TimingKind};
use crate::metrics::{Histogram, HistogramSummary};
use crate::report::{Report, Section};
use std::collections::BTreeMap;

/// Default number of costliest obligations listed in the profile.
pub const DEFAULT_TOP_K: usize = 8;

/// Per-engine aggregation over finished obligations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Obligations finished under this engine tag.
    pub obligations: u64,
    /// Summed effort.
    pub effort: EffortSpent,
}

impl EngineStats {
    /// Cache hit ratio in percent (0.0 when the engine never probed).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.effort.cache_hits + self.effort.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.effort.cache_hits as f64 * 100.0 / total as f64
        }
    }
}

/// Per-axis budget utilization, aggregated from `budget_spend` events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AxisStats {
    /// Per-call cap configured for the axis (largest seen).
    pub cap: u64,
    /// Total effort spent on the axis across obligations.
    pub spent: u64,
    /// Largest single-obligation spend.
    pub max_spent: u64,
    /// Obligations whose spend reached or exceeded the cap.
    pub at_cap: u64,
}

impl AxisStats {
    /// High-water utilization in percent: worst single obligation's
    /// spend against the per-call cap.
    pub fn high_water_pct(&self) -> f64 {
        if self.cap == 0 {
            0.0
        } else {
            self.max_spent as f64 * 100.0 / self.cap as f64
        }
    }
}

/// One degradation timeline entry, in deterministic event order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEntry {
    /// Obligation name.
    pub obligation: String,
    /// Final status label.
    pub status: String,
    /// One line of evidence.
    pub detail: String,
}

/// Aggregated view of one journal.
#[derive(Debug, Clone, Default)]
pub struct FlowProfile {
    /// Finished obligations with full provenance, in event order.
    pub obligations: Vec<Provenance>,
    /// Outcome label → count.
    pub outcomes: BTreeMap<String, u64>,
    /// Engine tag → aggregated stats.
    pub engines: BTreeMap<String, EngineStats>,
    /// Budget axis → utilization stats.
    pub budget: BTreeMap<&'static str, AxisStats>,
    /// Degradations in deterministic event order.
    pub degradations: Vec<DegradationEntry>,
    /// Total effort across all finished obligations.
    pub total_effort: EffortSpent,
    /// Deterministic-lane events retained / dropped.
    pub events: (usize, u64),
    /// Per-obligation wall latency in microseconds (timing lane; empty
    /// when the journal ran without wall capture).
    pub latency_us: Histogram,
    /// Summed run-section wall time in microseconds (timing lane).
    pub run_wall_us: u64,
    /// Batch label → (jobs, workers, peak queue depth) (timing lane).
    pub batches: BTreeMap<String, (u64, u64, u64)>,
    /// (batch, worker) → jobs executed (timing lane).
    pub worker_jobs: BTreeMap<(String, u64), u64>,
}

impl FlowProfile {
    /// Aggregates a journal snapshot.
    pub fn from_journal(journal: &Journal) -> Self {
        let mut p = FlowProfile {
            events: (journal.len().0, journal.dropped().0),
            ..FlowProfile::default()
        };
        for event in journal.events() {
            match event.kind {
                EventKind::ObligationFinished(prov) => {
                    *p.outcomes.entry(prov.outcome.clone()).or_insert(0) += 1;
                    let e = p.engines.entry(prov.engine.clone()).or_default();
                    e.obligations += 1;
                    e.effort.add(&prov.effort);
                    p.total_effort.add(&prov.effort);
                    p.obligations.push(prov);
                }
                EventKind::BudgetSpend {
                    axis, spent, cap, ..
                } => {
                    let a = p.budget.entry(axis).or_default();
                    a.cap = a.cap.max(cap);
                    a.spent += spent;
                    a.max_spent = a.max_spent.max(spent);
                    if spent >= cap {
                        a.at_cap += 1;
                    }
                }
                EventKind::Degradation {
                    obligation,
                    status,
                    detail,
                } => {
                    p.degradations.push(DegradationEntry {
                        obligation,
                        status,
                        detail,
                    });
                }
                _ => {}
            }
        }
        for event in journal.timing_events() {
            match event.kind {
                TimingKind::ObligationWall { wall_us, .. } => p.latency_us.record(wall_us),
                TimingKind::RunWall { wall_us, .. } => p.run_wall_us += wall_us,
                TimingKind::QueueDepth {
                    batch,
                    jobs,
                    workers,
                    peak_depth,
                } => {
                    p.batches.insert(batch, (jobs, workers, peak_depth));
                }
                TimingKind::WorkerJob { batch, worker, .. } => {
                    *p.worker_jobs.entry((batch, worker)).or_insert(0) += 1;
                }
                // Service-lane job latency is aggregated by the `serve`
                // crate's batch statistics, not the per-flow profile.
                TimingKind::JobWall { .. } => {}
            }
        }
        p
    }

    /// The `k` costliest obligations by effort score, ties broken by
    /// name — a fully deterministic ranking.
    pub fn top_obligations(&self, k: usize) -> Vec<&Provenance> {
        let mut ranked: Vec<&Provenance> = self.obligations.iter().collect();
        ranked.sort_by(|a, b| {
            b.effort
                .score()
                .cmp(&a.effort.score())
                .then_with(|| a.obligation.cmp(&b.obligation))
        });
        ranked.truncate(k);
        ranked
    }

    /// Latency summary over per-obligation wall times (all zero when the
    /// journal ran deterministically, without wall capture).
    pub fn latency_summary(&self) -> HistogramSummary {
        self.latency_us.summary()
    }

    /// Sustained obligations per second: finished obligations over the
    /// summed run-section wall time. 0.0 without timing data.
    pub fn obligations_per_sec(&self) -> f64 {
        if self.run_wall_us == 0 || self.obligations.is_empty() {
            0.0
        } else {
            self.obligations.len() as f64 * 1_000_000.0 / self.run_wall_us as f64
        }
    }

    /// The deterministic half of the profile: identical across worker
    /// counts for a fixed workload (this is the bit-identity surface the
    /// observability tests pin).
    pub fn deterministic_report(&self) -> Report {
        let mut report = Report::new("Flow profile (deterministic)");

        let mut totals = Section::new("Obligations")
            .entry("finished", self.obligations.len() as u64)
            .entry("journal_events", self.events.0 as u64)
            .entry("journal_dropped", self.events.1);
        for (outcome, count) in &self.outcomes {
            totals.push(&format!("outcome.{outcome}"), *count);
        }
        totals.push("effort.sat_conflicts", self.total_effort.sat_conflicts);
        totals.push("effort.sat_decisions", self.total_effort.sat_decisions);
        totals.push(
            "effort.sat_propagations",
            self.total_effort.sat_propagations,
        );
        totals.push("effort.bdd_nodes", self.total_effort.bdd_nodes);
        totals.push("effort.cache_hits", self.total_effort.cache_hits);
        totals.push("effort.cache_misses", self.total_effort.cache_misses);
        report = report.section(totals);

        let mut top = Section::new("Costliest obligations");
        for (rank, p) in self.top_obligations(DEFAULT_TOP_K).iter().enumerate() {
            top.push(
                &format!("{}. {}", rank + 1, p.obligation),
                format!(
                    "[{}] {} · score {} · {}",
                    p.engine,
                    p.outcome,
                    p.effort.score(),
                    p.effort.to_line()
                ),
            );
        }
        if top.entries.is_empty() {
            top.push("(none)", "no obligations finished");
        }
        report = report.section(top);

        let mut engines = Section::new("Engines");
        for (engine, stats) in &self.engines {
            engines.push(
                engine,
                format!(
                    "obligations {} · score {} · cache {}/{} ({:.1}% hit)",
                    stats.obligations,
                    stats.effort.score(),
                    stats.effort.cache_hits,
                    stats.effort.cache_hits + stats.effort.cache_misses,
                    stats.cache_hit_ratio()
                ),
            );
        }
        if engines.entries.is_empty() {
            engines.push("(none)", "no engine activity recorded");
        }
        report = report.section(engines);

        if !self.budget.is_empty() {
            let mut budget = Section::new("Budget utilization");
            for (axis, stats) in &self.budget {
                budget.push(
                    axis,
                    format!(
                        "cap {} · max spent {} ({:.1}% high-water) · total {} · at-cap {}",
                        stats.cap,
                        stats.max_spent,
                        stats.high_water_pct(),
                        stats.spent,
                        stats.at_cap
                    ),
                );
            }
            report = report.section(budget);
        }

        let mut timeline = Section::new("Degradation timeline");
        for (i, d) in self.degradations.iter().enumerate() {
            timeline.push(
                &format!("{}. {}", i + 1, d.obligation),
                format!("{} — {}", d.status, d.detail),
            );
        }
        if timeline.entries.is_empty() {
            timeline.push("(none)", "every obligation conclusive");
        }
        report.section(timeline)
    }

    /// The timing half of the profile: wall-clock and scheduling facts,
    /// expected to differ run to run.
    pub fn timing_report(&self) -> Report {
        let mut report = Report::new("Flow profile (timing)");

        let latency = self.latency_summary();
        report = report.section(
            Section::new("Throughput")
                .entry("run_wall_us", self.run_wall_us)
                .entry("obligations_per_sec", self.obligations_per_sec())
                .entry("obligation_latency_us_p50", latency.p50)
                .entry("obligation_latency_us_p95", latency.p95)
                .entry("obligation_latency_us_p99", latency.p99)
                .entry("obligation_latency_us_max", latency.max)
                .entry("obligation_latency_samples", latency.count),
        );

        let mut workers = Section::new("Worker attribution");
        for (batch, (jobs, pool, peak)) in &self.batches {
            workers.push(
                batch,
                format!("jobs {jobs} · workers {pool} · peak queue depth {peak}"),
            );
        }
        for ((batch, worker), jobs) in &self.worker_jobs {
            workers.push(&format!("{batch}.worker{worker}"), *jobs);
        }
        if workers.entries.is_empty() {
            workers.push("(none)", "no scheduling events recorded");
        }
        report.section(workers)
    }

    /// Both halves as one report (deterministic sections first).
    pub fn report(&self) -> Report {
        let mut combined = Report::new("Flow profile");
        combined
            .sections
            .extend(self.deterministic_report().sections);
        combined.sections.extend(self.timing_report().sections);
        combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    fn prov(name: &str, engine: &str, conflicts: u64, hits: u64, misses: u64) -> EventKind {
        EventKind::ObligationFinished(Provenance {
            obligation: name.to_owned(),
            engine: engine.to_owned(),
            fingerprint: 1,
            effort: EffortSpent {
                sat_conflicts: conflicts,
                cache_hits: hits,
                cache_misses: misses,
                ..EffortSpent::default()
            },
            outcome: "proved".to_owned(),
            retried: false,
        })
    }

    fn sample_journal() -> Journal {
        let j = Journal::new();
        j.emit(prov("cheap", "bmc", 2, 1, 0));
        j.emit(prov("costly", "level4.miter", 50, 0, 2));
        j.emit(EventKind::BudgetSpend {
            obligation: "costly".into(),
            axis: "sat_conflicts",
            spent: 50,
            cap: 100,
        });
        j.emit(EventKind::Degradation {
            obligation: "costly".into(),
            status: "unknown".into(),
            detail: "budget exhausted".into(),
        });
        j.emit_timing(TimingKind::ObligationWall {
            obligation: "cheap".into(),
            wall_us: 10,
        });
        j.emit_timing(TimingKind::ObligationWall {
            obligation: "costly".into(),
            wall_us: 90,
        });
        j.emit_timing(TimingKind::RunWall {
            label: "flow".into(),
            wall_us: 200,
        });
        j.emit_timing(TimingKind::QueueDepth {
            batch: "level4.miters".into(),
            jobs: 2,
            workers: 2,
            peak_depth: 2,
        });
        j.emit_timing(TimingKind::WorkerJob {
            batch: "level4.miters".into(),
            job: "cheap".into(),
            worker: 0,
        });
        j
    }

    #[test]
    fn aggregates_obligations_engines_budget_and_timeline() {
        let p = FlowProfile::from_journal(&sample_journal());
        assert_eq!(p.obligations.len(), 2);
        assert_eq!(p.outcomes.get("proved"), Some(&2));
        assert_eq!(p.total_effort.sat_conflicts, 52);
        assert_eq!(p.engines["bmc"].obligations, 1);
        assert_eq!(p.engines["level4.miter"].effort.cache_misses, 2);
        assert_eq!(p.engines["bmc"].cache_hit_ratio(), 100.0);
        assert_eq!(p.engines["level4.miter"].cache_hit_ratio(), 0.0);
        let axis = &p.budget["sat_conflicts"];
        assert_eq!(
            (axis.cap, axis.spent, axis.max_spent, axis.at_cap),
            (100, 50, 50, 0)
        );
        assert_eq!(axis.high_water_pct(), 50.0);
        assert_eq!(p.degradations.len(), 1);
        assert_eq!(p.degradations[0].obligation, "costly");
    }

    #[test]
    fn ranking_is_effort_then_name() {
        let j = Journal::new();
        j.emit(prov("b", "bmc", 10, 0, 0));
        j.emit(prov("a", "bmc", 10, 0, 0));
        j.emit(prov("z", "bmc", 99, 0, 0));
        let p = FlowProfile::from_journal(&j);
        let top: Vec<&str> = p
            .top_obligations(2)
            .iter()
            .map(|p| p.obligation.as_str())
            .collect();
        assert_eq!(top, vec!["z", "a"]);
    }

    #[test]
    fn timing_side_computes_throughput_and_latency() {
        let p = FlowProfile::from_journal(&sample_journal());
        // 2 obligations over 200 us = 10000 obligations/sec.
        assert_eq!(p.obligations_per_sec(), 10_000.0);
        let l = p.latency_summary();
        assert_eq!(l.count, 2);
        // Nearest-rank p50 over two samples rounds half-up to the second.
        assert_eq!((l.min, l.p50, l.p99, l.max), (10, 90, 90, 90));
        assert_eq!(p.batches["level4.miters"], (2, 2, 2));
        assert_eq!(p.worker_jobs[&("level4.miters".to_owned(), 0)], 1);
    }

    #[test]
    fn reports_split_deterministic_from_timing() {
        let p = FlowProfile::from_journal(&sample_journal());
        let det = p.deterministic_report().to_text();
        assert!(det.contains("Costliest obligations"));
        assert!(det.contains("1. costly"));
        assert!(det.contains("Budget utilization"));
        assert!(det.contains("Degradation timeline"));
        assert!(!det.contains("wall"));
        let timing = p.timing_report().to_text();
        assert!(timing.contains("obligations_per_sec"));
        assert!(timing.contains("obligation_latency_us_p99"));
        assert!(timing.contains("level4.miters"));
        let combined = p.report();
        assert_eq!(
            combined.sections.len(),
            p.deterministic_report().sections.len() + p.timing_report().sections.len()
        );
    }

    #[test]
    fn empty_journal_profiles_to_placeholders() {
        let p = FlowProfile::from_journal(&Journal::new());
        assert_eq!(p.obligations_per_sec(), 0.0);
        let det = p.deterministic_report().to_text();
        assert!(det.contains("no obligations finished"));
        assert!(det.contains("every obligation conclusive"));
        let timing = p.timing_report().to_text();
        assert!(timing.contains("no scheduling events recorded"));
    }
}
