//! The recording [`Collector`].

use crate::instrument::Instrument;
use crate::metrics::Histogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// One recorded span: a named interval on a track, nested by `depth`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Track (timeline row): e.g. `bus:cpu`, `fpga`, `cpu`.
    pub track: String,
    /// Span label.
    pub name: String,
    /// Simulation-time start (ticks, or the engine's progress axis).
    pub start: u64,
    /// Simulation-time end.
    pub end: u64,
    /// Nesting depth under enclosing spans on the same track.
    pub depth: u32,
    /// Wall-clock microseconds since collector creation at record time.
    /// Zero unless the collector was built with
    /// [`Collector::with_wall_clock`] — golden-testable exports keep it 0.
    pub wall_us: u64,
    /// Collector-local sequence number (total order over all records).
    pub seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    seq: u64,
    spans: Vec<Span>,
    /// Per-track stacks of open spans: `(name, start, wall_us, seq)`.
    open: BTreeMap<String, Vec<(String, u64, u64, u64)>>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Vec<(u64, i64)>>,
    histograms: BTreeMap<String, Histogram>,
}

/// The recording instrument.
///
/// Interior-mutable so the whole single-threaded flow can share one
/// handle ([`Collector::shared`] returns an `Rc<Collector>`, which
/// coerces to [`crate::SharedInstrument`]).
#[derive(Debug)]
pub struct Collector {
    inner: RefCell<Inner>,
    /// Wall-clock origin; `None` keeps every `wall_us` field at 0 so
    /// exports are bit-reproducible.
    wall_origin: Option<Instant>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// A collector with wall-time capture **off** (deterministic exports).
    pub fn new() -> Self {
        Collector {
            inner: RefCell::new(Inner::default()),
            wall_origin: None,
        }
    }

    /// A collector that also stamps spans with wall-clock microseconds.
    /// Exports of such a collector are *not* byte-reproducible.
    pub fn with_wall_clock() -> Self {
        Collector {
            inner: RefCell::new(Inner::default()),
            wall_origin: Some(Instant::now()),
        }
    }

    /// A shared handle (usable directly as a [`crate::SharedInstrument`]).
    pub fn shared() -> Rc<Collector> {
        Rc::new(Collector::new())
    }

    fn wall_us(&self) -> u64 {
        self.wall_origin
            .map(|t0| t0.elapsed().as_micros() as u64)
            .unwrap_or(0)
    }

    /// All completed spans, in record order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.borrow().spans.clone()
    }

    /// Value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .borrow()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The time-series of a gauge (empty when never set).
    pub fn gauge_series(&self, name: &str) -> Vec<(u64, i64)> {
        self.inner
            .borrow()
            .gauges
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// Names of all gauges, sorted.
    pub fn gauge_names(&self) -> Vec<String> {
        self.inner.borrow().gauges.keys().cloned().collect()
    }

    /// All gauge series, sorted by name.
    pub fn gauges(&self) -> Vec<(String, Vec<(u64, i64)>)> {
        self.inner
            .borrow()
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Snapshot of a histogram (empty when never recorded).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .borrow()
            .histograms
            .get(name)
            .cloned()
            .unwrap_or_default()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.inner
            .borrow()
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Replays every record of this collector into `target`, in this
    /// collector's deterministic order: completed spans in record order,
    /// then counters by name, gauge points per gauge in record order, and
    /// histogram samples per histogram in record order.
    ///
    /// This is the merge primitive for parallel verification: each worker
    /// records into a private `Collector` (obligations are instrumented
    /// in isolation and record no *nested* spans), and the coordinator
    /// replays the per-obligation collectors back into the main
    /// instrument in obligation order — so the merged keyed state
    /// (counters, gauges, histograms) matches the sequential schedule
    /// exactly, independent of which worker finished first.
    pub fn replay_into(&self, target: &dyn Instrument) {
        let i = self.inner.borrow();
        for s in &i.spans {
            target.span(&s.track, &s.name, s.start, s.end);
        }
        for (name, value) in &i.counters {
            target.counter_add(name, *value);
        }
        for (name, series) in &i.gauges {
            for (at, value) in series {
                target.gauge_set(name, *at, *value);
            }
        }
        for (name, h) in &i.histograms {
            for v in h.samples() {
                target.record(name, *v);
            }
        }
    }
}

impl Instrument for Collector {
    fn enabled(&self) -> bool {
        true
    }

    fn span_begin(&self, track: &str, name: &str, start: u64) {
        let wall = self.wall_us();
        let mut i = self.inner.borrow_mut();
        i.seq += 1;
        let seq = i.seq;
        i.open
            .entry(track.to_owned())
            .or_default()
            .push((name.to_owned(), start, wall, seq));
    }

    fn span_end(&self, track: &str, end: u64) {
        let mut i = self.inner.borrow_mut();
        let Some((name, start, wall_us, seq)) = i.open.get_mut(track).and_then(|stack| stack.pop())
        else {
            // Unbalanced end: ignore rather than poison the run.
            return;
        };
        let depth = i.open.get(track).map(|s| s.len() as u32).unwrap_or(0);
        i.spans.push(Span {
            track: track.to_owned(),
            name,
            start,
            end: end.max(start),
            depth,
            wall_us,
            seq,
        });
    }

    fn span(&self, track: &str, name: &str, start: u64, end: u64) {
        let wall = self.wall_us();
        let mut i = self.inner.borrow_mut();
        i.seq += 1;
        let seq = i.seq;
        let depth = i.open.get(track).map(|s| s.len() as u32).unwrap_or(0);
        i.spans.push(Span {
            track: track.to_owned(),
            name: name.to_owned(),
            start,
            end: end.max(start),
            depth,
            wall_us: wall,
            seq,
        });
    }

    fn counter_add(&self, name: &str, delta: u64) {
        let mut i = self.inner.borrow_mut();
        *i.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    fn gauge_set(&self, name: &str, at: u64, value: i64) {
        let mut i = self.inner.borrow_mut();
        i.gauges
            .entry(name.to_owned())
            .or_default()
            .push((at, value));
    }

    fn record(&self, name: &str, value: u64) {
        let mut i = self.inner.borrow_mut();
        i.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    fn counter_value(&self, name: &str) -> u64 {
        self.counter(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counters_gauges_histograms() {
        let c = Collector::new();
        assert!(c.enabled());
        c.counter_add("x", 2);
        c.counter_add("x", 3);
        assert_eq!(c.counter("x"), 5);
        assert_eq!(c.counter("missing"), 0);
        // The dyn-visible accessor mirrors the counter map.
        let as_dyn: &dyn Instrument = &c;
        assert_eq!(as_dyn.counter_value("x"), 5);
        c.gauge_set("g", 10, -1);
        c.gauge_set("g", 20, 4);
        assert_eq!(c.gauge_series("g"), vec![(10, -1), (20, 4)]);
        c.record("h", 9);
        assert_eq!(c.histogram("h").count(), 1);
        assert_eq!(c.counters(), vec![("x".to_owned(), 5)]);
    }

    #[test]
    fn nested_spans_carry_depth() {
        let c = Collector::new();
        c.span_begin("cpu", "frame 0", 0);
        c.span_begin("cpu", "front", 1);
        c.span_end("cpu", 5);
        c.span("cpu", "winner", 6, 8);
        c.span_end("cpu", 9);
        let spans = c.spans();
        assert_eq!(spans.len(), 3);
        // Inner spans close first.
        assert_eq!(spans[0].name, "front");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "winner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].name, "frame 0");
        assert_eq!(spans[2].depth, 0);
        assert_eq!((spans[2].start, spans[2].end), (0, 9));
        // Without wall clock every wall_us is exactly zero.
        assert!(spans.iter().all(|s| s.wall_us == 0));
    }

    #[test]
    fn replay_reproduces_keyed_state_in_obligation_order() {
        // Two "workers" record into private collectors; replaying them in
        // obligation order produces the same keyed state as if one
        // collector had seen the sequential schedule.
        let w0 = Collector::new();
        w0.counter_add("sat.solve_calls", 2);
        w0.gauge_set("bmc.depth", 1, 1);
        w0.record("conflicts", 5);
        w0.span("mc", "prop0", 0, 4);
        let w1 = Collector::new();
        w1.counter_add("sat.solve_calls", 3);
        w1.gauge_set("bmc.depth", 1, 2);
        w1.record("conflicts", 9);
        w1.span("mc", "prop1", 0, 7);

        let merged = Collector::new();
        w0.replay_into(&merged);
        w1.replay_into(&merged);

        let sequential = Collector::new();
        sequential.counter_add("sat.solve_calls", 2);
        sequential.gauge_set("bmc.depth", 1, 1);
        sequential.record("conflicts", 5);
        sequential.span("mc", "prop0", 0, 4);
        sequential.counter_add("sat.solve_calls", 3);
        sequential.gauge_set("bmc.depth", 1, 2);
        sequential.record("conflicts", 9);
        sequential.span("mc", "prop1", 0, 7);

        assert_eq!(merged.counters(), sequential.counters());
        assert_eq!(merged.gauges(), sequential.gauges());
        assert_eq!(
            merged.histogram("conflicts").samples(),
            sequential.histogram("conflicts").samples()
        );
        assert_eq!(merged.spans(), sequential.spans());
    }

    #[test]
    fn unbalanced_span_end_is_ignored() {
        let c = Collector::new();
        c.span_end("cpu", 3);
        assert!(c.spans().is_empty());
    }

    #[test]
    fn span_end_before_start_clamps() {
        let c = Collector::new();
        c.span("t", "s", 10, 4);
        assert_eq!(c.spans()[0].end, 10);
    }
}
