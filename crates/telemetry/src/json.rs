//! A minimal, deterministic JSON writer (the build is offline — no serde).
//!
//! Object keys keep insertion order, floats render through one fixed
//! format, strings escape per RFC 8259. Identical input values always
//! produce identical bytes, which is what the golden tests rely on.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (rendered without decimal point).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Finite float, rendered via [`fmt_f64`]. Non-finite values render
    /// as `null` (JSON has no NaN/Inf).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with 2-space indentation and a trailing newline —
    /// the layout used for committed golden files and reports.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => out.push_str(&fmt_f64(*v)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deterministic float formatting: six decimal places, trailing zeros
/// trimmed down to at least one decimal digit (so `5.0` stays visibly a
/// float). Non-finite values render as `null`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    let mut s = format!("{v:.6}");
    while s.ends_with('0') && !s.ends_with(".0") {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::UInt(42).render(), "42");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Num(0.276).render(), "0.276");
        assert_eq!(Json::Num(5.0).render(), "5.0");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\nc".into()).render(), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn renders_compound_values_in_order() {
        let v = Json::obj(vec![
            ("b", Json::UInt(1)),
            ("a", Json::Arr(vec![Json::UInt(2), Json::Null])),
        ]);
        // Insertion order is preserved — not sorted.
        assert_eq!(v.render(), "{\"b\":1,\"a\":[2,null]}");
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Json::obj(vec![("k", Json::Arr(vec![Json::UInt(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"k\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::obj(vec![]).render_pretty(), "{}\n");
    }

    #[test]
    fn control_characters_escape_as_unicode() {
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn float_format_is_deterministic() {
        assert_eq!(fmt_f64(1.0 / 3.0), "0.333333");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(-2.25), "-2.25");
        assert_eq!(fmt_f64(0.0), "0.0");
    }
}
