//! Structured flow reports: one [`Report`] renders as aligned human text
//! *and* as JSON, replacing the ad-hoc `report_output.txt` dumps.

use crate::json::Json;
use std::fmt::Write as _;

/// A typed report value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float (rendered deterministically, see [`crate::json::fmt_f64`]).
    Float(f64),
    /// Free-form text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Int(v) => Json::Int(*v),
            Value::UInt(v) => Json::UInt(*v),
            Value::Float(v) => Json::Num(*v),
            Value::Str(s) => Json::Str(s.clone()),
            Value::Bool(b) => Json::Bool(*b),
        }
    }

    fn to_text(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::UInt(v) => v.to_string(),
            Value::Float(v) => crate::json::fmt_f64(*v),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::UInt(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A titled group of key/value entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Section {
    /// Section heading.
    pub title: String,
    /// Entries in insertion order.
    pub entries: Vec<(String, Value)>,
}

impl Section {
    /// An empty section.
    pub fn new(title: &str) -> Self {
        Section {
            title: title.to_owned(),
            entries: Vec::new(),
        }
    }

    /// Appends one entry (builder-style).
    pub fn entry(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.entries.push((key.to_owned(), value.into()));
        self
    }

    /// Appends one entry in place.
    pub fn push(&mut self, key: &str, value: impl Into<Value>) {
        self.entries.push((key.to_owned(), value.into()));
    }
}

/// A structured report: a title plus ordered sections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Report heading.
    pub title: String,
    /// Sections in insertion order.
    pub sections: Vec<Section>,
}

impl Report {
    /// An empty report.
    pub fn new(title: &str) -> Self {
        Report {
            title: title.to_owned(),
            sections: Vec::new(),
        }
    }

    /// Appends a section (builder-style).
    pub fn section(mut self, section: Section) -> Self {
        self.sections.push(section);
        self
    }

    /// Renders as aligned human-readable text (keys padded per section).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", "=".repeat(self.title.chars().count()));
        for section in &self.sections {
            out.push('\n');
            let _ = writeln!(out, "{}", section.title);
            let _ = writeln!(out, "{}", "-".repeat(section.title.chars().count()));
            let width = section
                .entries
                .iter()
                .map(|(k, _)| k.chars().count())
                .max()
                .unwrap_or(0);
            for (key, value) in &section.entries {
                let _ = writeln!(out, "  {key:width$}  {}", value.to_text());
            }
        }
        out
    }

    /// Renders as pretty-printed JSON (deterministic byte layout).
    pub fn to_json(&self) -> String {
        let sections: Vec<Json> = self
            .sections
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("title", Json::Str(s.title.clone())),
                    (
                        "entries",
                        Json::Obj(
                            s.entries
                                .iter()
                                .map(|(k, v)| (k.clone(), v.to_json()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            ("sections", Json::Arr(sections)),
        ])
        .render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new("Symbad flow report").section(
            Section::new("Bus")
                .entry("transactions", 42u64)
                .entry("utilisation", 0.276)
                .entry("ok", true),
        )
    }

    #[test]
    fn text_layout_is_aligned() {
        let text = sample().to_text();
        assert!(text.starts_with("Symbad flow report\n=================="));
        assert!(text.contains("Bus\n---\n"));
        assert!(text.contains("  transactions  42\n"));
        assert!(text.contains("  utilisation   0.276\n"));
        assert!(text.contains("  ok            true\n"));
    }

    #[test]
    fn json_round_trips_values() {
        let json = sample().to_json();
        assert!(json.contains("\"title\": \"Symbad flow report\""));
        assert!(json.contains("\"transactions\": 42"));
        assert!(json.contains("\"utilisation\": 0.276"));
        assert!(json.contains("\"ok\": true"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn empty_report_renders() {
        let r = Report::new("Empty");
        assert_eq!(r.to_text(), "Empty\n=====\n");
        assert!(r.to_json().contains("\"sections\": []"));
    }
}
