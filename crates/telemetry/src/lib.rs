//! Flow-wide telemetry: spans, metrics and exportable traces.
//!
//! The paper's level-2/3 models exist to *measure* — bus loading, FIFO
//! dimensioning, reconfiguration overhead are the quantities the
//! architecture exploration optimizes. This crate is the instrumentation
//! layer those measurements flow through:
//!
//! * [`Instrument`] — the hook trait every substrate component talks to.
//!   All methods default to no-ops, so a component holding the [`Noop`]
//!   instrument (the default everywhere) pays one virtual call to an empty
//!   function on its hot path and allocates nothing.
//! * [`Collector`] — the recording implementation: hierarchical spans
//!   keyed by simulation time (wall time is an optional, off-by-default
//!   field so exports stay deterministic), monotonic counters, gauge
//!   time-series and histograms.
//! * Exporters — [`chrome::chrome_trace`] (open in `chrome://tracing` or
//!   [ui.perfetto.dev](https://ui.perfetto.dev)), [`vcd::vcd_dump`]
//!   (gauge series as a VCD waveform) and [`report::Report`] (structured
//!   human text + JSON, hand-rolled — no serde, the build is offline).
//! * The flight recorder — [`journal::Journal`], a bounded two-lane ring
//!   of typed events with per-obligation cost provenance, streamed as
//!   JSONL; [`profile::FlowProfile`], the "explain this run" aggregation
//!   (top-K costliest obligations, per-engine cache ratios, budget
//!   utilization, degradation timeline, latency percentiles); and
//!   [`prom::prometheus_text`], a scrapeable Prometheus-style exposition
//!   of the collector's keyed state.
//!
//! Everything is deterministic under a fixed seed: records are keyed by
//! sim-time and a collector-local sequence number, exports sort by those
//! keys, and the JSON writer formats numbers reproducibly. That is what
//! makes the exports golden-testable.
//!
//! # Example
//!
//! ```
//! use telemetry::{Collector, Instrument};
//!
//! let collector = Collector::shared();
//! let instr: telemetry::SharedInstrument = collector.clone();
//! instr.span("bus:cpu", "ram:W8", 10, 19);
//! instr.counter_add("bus.transactions", 1);
//! instr.record("bus.wait_ticks", 0);
//! let trace = telemetry::chrome::chrome_trace(&collector);
//! assert!(trace.contains("\"ram:W8\""));
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod collect;
pub mod instrument;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod prom;
pub mod report;
pub mod vcd;

pub use chrome::chrome_trace;
pub use collect::{Collector, Span};
pub use instrument::{noop, Instrument, Noop, SharedInstrument};
pub use journal::{EffortSpent, Event, EventKind, Journal, Provenance, TimingEvent, TimingKind};
pub use json::Json;
pub use metrics::{Histogram, HistogramSummary};
pub use profile::FlowProfile;
pub use prom::{parse_exposition, prometheus_text};
pub use report::{Report, Section, Value};
pub use vcd::vcd_dump;
