//! VCD-style exporter: gauge time-series as a value-change dump.
//!
//! The level-3 signals worth eyeballing in a waveform viewer — bus grant,
//! loaded FPGA context, FIFO depths — are recorded as gauges; this
//! exporter writes them as a standard VCD file (64-bit two's-complement
//! vectors, 1 tick = 1 ns). Output is deterministic: signals are sorted
//! by name, changes by `(time, signal)`, and consecutive duplicate values
//! are elided as a real dump would.

use crate::collect::Collector;
use std::fmt::Write as _;

/// VCD identifier for signal `i`: printable ASCII, multi-character when
/// more than 94 signals exist.
fn ident(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn binary64(v: i64) -> String {
    format!("{:b}", v as u64)
}

/// Serializes every gauge series as a VCD waveform.
pub fn vcd_dump(collector: &Collector) -> String {
    let gauges = collector.gauges();
    let mut out = String::new();
    out.push_str("$comment symbad telemetry gauge dump $end\n");
    out.push_str("$timescale 1ns $end\n");
    out.push_str("$scope module symbad $end\n");
    for (i, (name, _)) in gauges.iter().enumerate() {
        // VCD identifiers may not contain whitespace; gauge names are
        // dotted already.
        let _ = writeln!(out, "$var integer 64 {} {} $end", ident(i), name);
    }
    out.push_str("$upscope $end\n");
    out.push_str("$enddefinitions $end\n");

    // Flatten to (time, signal index, value), keeping per-signal record
    // order for same-time updates (last write wins in a VCD anyway).
    let mut changes: Vec<(u64, usize, i64)> = Vec::new();
    for (i, (_, series)) in gauges.iter().enumerate() {
        let mut last: Option<i64> = None;
        for &(at, value) in series {
            if last == Some(value) {
                continue;
            }
            last = Some(value);
            changes.push((at, i, value));
        }
    }
    changes.sort_by_key(|&(at, i, _)| (at, i));

    let mut current_time: Option<u64> = None;
    for (at, i, value) in changes {
        if current_time != Some(at) {
            let _ = writeln!(out, "#{at}");
            current_time = Some(at);
        }
        let _ = writeln!(out, "b{} {}", binary64(value), ident(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::Instrument;

    #[test]
    fn dump_contains_declarations_and_changes() {
        let c = Collector::new();
        c.gauge_set("bus.grant", 0, 0);
        c.gauge_set("bus.grant", 5, 2);
        c.gauge_set("bus.grant", 9, 0);
        c.gauge_set("fpga.context", 265, 1);
        let vcd = vcd_dump(&c);
        assert!(vcd.contains("$var integer 64 ! bus.grant $end"));
        assert!(vcd.contains("$var integer 64 \" fpga.context $end"));
        assert!(vcd.contains("#5\nb10 !"));
        assert!(vcd.contains("#265\nb1 \""));
    }

    #[test]
    fn consecutive_duplicates_are_elided() {
        let c = Collector::new();
        c.gauge_set("g", 0, 7);
        c.gauge_set("g", 3, 7);
        c.gauge_set("g", 6, 8);
        let vcd = vcd_dump(&c);
        assert!(!vcd.contains("#3"));
        assert!(vcd.contains("#6"));
    }

    #[test]
    fn negative_values_use_twos_complement() {
        let c = Collector::new();
        c.gauge_set("g", 1, -1);
        let vcd = vcd_dump(&c);
        // -1 as u64 = 64 ones.
        assert!(vcd.contains(&format!("b{} !", "1".repeat(64))));
    }

    #[test]
    fn identifiers_stay_printable_past_94_signals() {
        assert_eq!(ident(0), "!");
        assert_eq!(ident(93), "~");
        assert_eq!(ident(94), "!\"");
        assert!(ident(94 * 94 + 5).chars().all(|c| ('!'..='~').contains(&c)));
    }
}
