//! Counter, gauge and histogram primitives.
//!
//! Histograms keep raw samples (the flows instrumented here record at most
//! a few thousand per run) so percentiles are exact. Every statistic is
//! total — defined for empty and single-sample series — because exporters
//! run unconditionally at the end of a run.

/// An exact-sample histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Arithmetic mean (0.0 when empty — never a division by zero).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() as f64 / self.samples.len() as f64
        }
    }

    /// Nearest-rank percentile for `p` in `0..=100`. Total: returns 0 on
    /// an empty histogram and the sample itself on a single-sample one.
    /// Values of `p` above 100 clamp to the maximum.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        // Round-half-up linear rank over [0, n-1]; integer math keeps the
        // result platform-independent for golden tests.
        let idx = (p.min(100) * (n - 1) + 50) / 100;
        sorted[idx as usize]
    }

    /// Raw samples in record order (exposed so collectors can be merged
    /// by replaying one into another).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Deterministic summary snapshot. Sorts the samples once and derives
    /// every order statistic from the same sorted copy (the naive form
    /// re-sorted per percentile, three times per reported series).
    pub fn summary(&self) -> HistogramSummary {
        if self.samples.is_empty() {
            return HistogramSummary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = |p: u64| sorted[((p * (n - 1) + 50) / 100) as usize];
        HistogramSummary {
            count: n,
            sum: sorted.iter().sum(),
            min: sorted[0],
            max: sorted[n as usize - 1],
            p50: rank(50),
            p95: rank(95),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 95th percentile (nearest rank).
    pub p95: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0), 0);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.percentile(100), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn single_sample_defines_every_statistic() {
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 7.0);
        assert_eq!(h.percentile(0), 7);
        assert_eq!(h.percentile(50), 7);
        assert_eq!(h.percentile(100), 7);
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50] {
            h.record(v);
        }
        assert_eq!(h.percentile(0), 10);
        assert_eq!(h.percentile(50), 30);
        assert_eq!(h.percentile(100), 50);
        // p above 100 clamps instead of indexing out of range.
        assert_eq!(h.percentile(250), 50);
        assert_eq!(h.mean(), 30.0);
    }

    #[test]
    fn summary_matches_parts() {
        let mut h = Histogram::new();
        for v in [3u64, 1, 2] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 6);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert_eq!(s.p50, 2);
        assert_eq!(s.p95, 3);
    }
}
