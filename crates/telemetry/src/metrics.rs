//! Counter, gauge and histogram primitives.
//!
//! Histograms keep raw samples (the flows instrumented here record at most
//! a few thousand per run) so percentiles are exact. Every statistic is
//! total — defined for empty and single-sample series — because exporters
//! run unconditionally at the end of a run.

/// An exact-sample histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.samples.iter().copied().min().unwrap_or(0)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Arithmetic mean (0.0 when empty — never a division by zero).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() as f64 / self.samples.len() as f64
        }
    }

    /// Nearest-rank percentile for `p` in `0..=100`. Total: returns 0 on
    /// an empty histogram and the sample itself on a single-sample one.
    /// Values of `p` above 100 clamp to the maximum.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        // Round-half-up linear rank over [0, n-1]; integer math keeps the
        // result platform-independent for golden tests.
        let idx = (p.min(100) * (n - 1) + 50) / 100;
        sorted[idx as usize]
    }

    /// Raw samples in record order (exposed so collectors can be merged
    /// by replaying one into another).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Merges another histogram's samples into this one, preserving both
    /// record orders (self's samples first). Exact-sample representation
    /// makes merge lossless: every statistic of the merge equals the
    /// statistic of the concatenated sample set.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Deterministic summary snapshot. Sorts the samples once and derives
    /// every order statistic from the same sorted copy (the naive form
    /// re-sorted per percentile, three times per reported series).
    pub fn summary(&self) -> HistogramSummary {
        if self.samples.is_empty() {
            return HistogramSummary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        let rank = |p: u64| sorted[((p * (n - 1) + 50) / 100) as usize];
        HistogramSummary {
            count: n,
            sum: sorted.iter().sum(),
            min: sorted[0],
            max: sorted[n as usize - 1],
            p50: rank(50),
            p95: rank(95),
            p99: rank(99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 95th percentile (nearest rank).
    pub p95: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0), 0);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.percentile(100), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn single_sample_defines_every_statistic() {
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 7.0);
        assert_eq!(h.percentile(0), 7);
        assert_eq!(h.percentile(50), 7);
        assert_eq!(h.percentile(100), 7);
        assert_eq!(h.min(), 7);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50] {
            h.record(v);
        }
        assert_eq!(h.percentile(0), 10);
        assert_eq!(h.percentile(50), 30);
        assert_eq!(h.percentile(100), 50);
        // p above 100 clamps instead of indexing out of range.
        assert_eq!(h.percentile(250), 50);
        assert_eq!(h.mean(), 30.0);
    }

    #[test]
    fn summary_matches_parts() {
        let mut h = Histogram::new();
        for v in [3u64, 1, 2] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 6);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert_eq!(s.p50, 2);
        assert_eq!(s.p95, 3);
        assert_eq!(s.p99, 3);
    }

    #[test]
    fn empty_summary_is_total() {
        // An exporter running at the end of an idle run must see a fully
        // defined, all-zero summary — including the new p99 field.
        let s = Histogram::new().summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn single_sample_summary_pins_every_percentile() {
        let mut h = Histogram::new();
        h.record(41);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 41);
        assert_eq!((s.min, s.max), (41, 41));
        assert_eq!((s.p50, s.p95, s.p99), (41, 41, 41));
    }

    #[test]
    fn merge_is_lossless_concatenation() {
        let mut a = Histogram::new();
        for v in [5u64, 1] {
            a.record(v);
        }
        let mut b = Histogram::new();
        for v in [9u64, 3, 7] {
            b.record(v);
        }
        a.merge(&b);
        // Record order preserved: self first, then other.
        assert_eq!(a.samples(), &[5, 1, 9, 3, 7]);
        let s = a.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 25);
        assert_eq!((s.min, s.max), (1, 9));
        assert_eq!(s.p50, 5);
        // Merging an empty histogram is a no-op.
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 5);
        // Merging into an empty histogram copies the other side.
        let mut empty = Histogram::new();
        empty.merge(&b);
        assert_eq!(empty.samples(), b.samples());
    }

    #[test]
    fn p99_on_heavy_tailed_data_uses_nearest_rank() {
        // 99 unit samples plus one huge outlier: nearest-rank p99 over
        // n=100 lands on index (99*99+50)/100 = 98 — the last "normal"
        // sample — while p100 must surface the outlier. This pins the
        // round-half-up linear-rank rule (mirroring the PR-3
        // `Series::percentile` fix) so a platform or refactor drift that
        // switches to interpolation fails loudly.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1_000_000);
        assert_eq!(h.percentile(99), 1);
        assert_eq!(h.percentile(100), 1_000_000);
        let s = h.summary();
        assert_eq!(s.p99, 1);
        assert_eq!(s.max, 1_000_000);
        // With two outliers in the tail (n=100, ranks 98 and 99), p99
        // picks the first of them: index 98.
        let mut g = Histogram::new();
        for _ in 0..98 {
            g.record(2);
        }
        g.record(500);
        g.record(1_000_000);
        assert_eq!(g.percentile(99), 500);
        assert_eq!(g.summary().p99, 500);
    }
}
