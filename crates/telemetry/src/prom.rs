//! Prometheus-style text exposition of a [`Collector`].
//!
//! Renders every counter, gauge and histogram the collector holds in the
//! Prometheus text format (version 0.0.4): counters as `counter` series,
//! gauges as `gauge` series carrying their *latest* value, histograms as
//! `summary` series with pinned `quantile` labels plus `_sum`/`_count`.
//! Metric names are sanitized (`component.snake_case` → `symbad_component_
//! snake_case`) so the future batch server can be scraped directly.
//!
//! The exposition is deterministic: series are emitted in `BTreeMap`
//! name order and numbers use the workspace JSON float formatter, so
//! the output of a deterministic collector is itself golden-testable.

use crate::collect::Collector;
use crate::json::fmt_f64;
use std::fmt::Write as _;

/// Prefix stamped onto every exported metric name.
pub const NAMESPACE: &str = "symbad";

/// Maps a workspace metric name (`bus.wait_ticks`) to a Prometheus
/// metric name (`symbad_bus_wait_ticks`): dots become underscores, any
/// other character outside `[a-zA-Z0-9_]` becomes `_`, and the
/// `symbad_` namespace is prepended.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(NAMESPACE.len() + 1 + name.len());
    out.push_str(NAMESPACE);
    out.push('_');
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the collector's full keyed state as Prometheus exposition
/// text. Counters first, then gauges, then histogram summaries — each
/// block preceded by its `# TYPE` header.
pub fn prometheus_text(collector: &Collector) -> String {
    let mut out = String::new();
    for (name, value) in collector.counters() {
        let metric = sanitize(&name);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, series) in collector.gauges() {
        let metric = sanitize(&name);
        // A gauge exposes its most recent value; the full time-series
        // lives in the VCD/trace exporters.
        let Some((_, value)) = series.last() else {
            continue;
        };
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {value}");
    }
    for (name, histogram) in collector.histograms() {
        let metric = sanitize(&name);
        let s = histogram.summary();
        let _ = writeln!(out, "# TYPE {metric} summary");
        let _ = writeln!(out, "{metric}{{quantile=\"0.5\"}} {}", s.p50);
        let _ = writeln!(out, "{metric}{{quantile=\"0.95\"}} {}", s.p95);
        let _ = writeln!(out, "{metric}{{quantile=\"0.99\"}} {}", s.p99);
        let _ = writeln!(out, "{metric}_sum {}", s.sum);
        let _ = writeln!(out, "{metric}_count {}", s.count);
    }
    out
}

/// One parsed exposition sample: series name (including any label set,
/// verbatim) and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name with labels, e.g. `symbad_bus_wait_ticks{quantile="0.5"}`.
    pub series: String,
    /// Sample value.
    pub value: f64,
}

/// Parses Prometheus exposition text back into samples, validating the
/// format as it goes — this is the checker the `observability-smoke` CI
/// job runs over the example's scrape output. Comment (`#`) and blank
/// lines are skipped; every other line must be `name[{labels}] value`
/// with a well-formed metric name and a finite value.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value_text) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator", lineno + 1))?;
        let name_end = series.find('{').unwrap_or(series.len());
        let (name, labels) = series.split_at(name_end);
        if name.is_empty()
            || name.starts_with(|c: char| c.is_ascii_digit())
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        if !(labels.is_empty() || labels.starts_with('{') && labels.ends_with('}')) {
            return Err(format!("line {}: bad label set {labels:?}", lineno + 1));
        }
        let value: f64 = value_text
            .parse()
            .map_err(|_| format!("line {}: bad value {value_text:?}", lineno + 1))?;
        if !value.is_finite() {
            return Err(format!("line {}: non-finite value", lineno + 1));
        }
        samples.push(Sample {
            series: series.to_owned(),
            value,
        });
    }
    Ok(samples)
}

/// Convenience used by smoke checks: the value of the first sample whose
/// series name (ignoring labels) equals `metric`.
pub fn sample_value(samples: &[Sample], metric: &str) -> Option<f64> {
    samples.iter().find_map(|s| {
        let name = s.series.split('{').next().unwrap_or("");
        (name == metric).then_some(s.value)
    })
}

/// Formats a float value the way the exposition does (shared helper so
/// callers embedding floats stay consistent with the JSON writer).
pub fn fmt_value(v: f64) -> String {
    fmt_f64(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::Instrument;

    #[test]
    fn sanitize_prefixes_and_replaces() {
        assert_eq!(sanitize("bus.wait_ticks"), "symbad_bus_wait_ticks");
        assert_eq!(sanitize("atpg.ga.best"), "symbad_atpg_ga_best");
        assert_eq!(sanitize("weird-name!"), "symbad_weird_name_");
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let c = Collector::new();
        c.counter_add("bus.transactions", 42);
        c.counter_add("sat.conflicts", 7);
        c.gauge_set("fpga.context", 0, 1);
        c.gauge_set("fpga.context", 9, 3);
        for v in [1u64, 2, 3, 4, 100] {
            c.record("bus.wait_ticks", v);
        }
        let text = prometheus_text(&c);
        assert!(text.contains("# TYPE symbad_bus_transactions counter"));
        assert!(text.contains("symbad_bus_transactions 42"));
        // Gauges expose the latest value.
        assert!(text.contains("# TYPE symbad_fpga_context gauge"));
        assert!(text.contains("symbad_fpga_context 3"));
        // Histogram summaries carry quantiles + sum + count.
        assert!(text.contains("symbad_bus_wait_ticks{quantile=\"0.99\"} 100"));
        assert!(text.contains("symbad_bus_wait_ticks_sum 110"));
        assert!(text.contains("symbad_bus_wait_ticks_count 5"));

        let samples = parse_exposition(&text).expect("exposition must parse");
        assert_eq!(
            sample_value(&samples, "symbad_bus_transactions"),
            Some(42.0)
        );
        assert_eq!(sample_value(&samples, "symbad_fpga_context"), Some(3.0));
        assert_eq!(
            sample_value(&samples, "symbad_bus_wait_ticks_count"),
            Some(5.0)
        );
        // Quantile samples are present (labelled series).
        assert!(samples
            .iter()
            .any(|s| s.series == "symbad_bus_wait_ticks{quantile=\"0.5\"}"));
    }

    #[test]
    fn empty_collector_exposes_nothing() {
        let c = Collector::new();
        assert_eq!(prometheus_text(&c), "");
        assert_eq!(parse_exposition("").unwrap(), vec![]);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("just_a_name").is_err());
        assert!(parse_exposition("9bad_name 1").is_err());
        assert!(parse_exposition("name nan").is_err());
        assert!(parse_exposition("name{unclosed 1").is_err());
        assert!(parse_exposition("ok_name 1.5\n# comment\n\n").is_ok());
    }

    #[test]
    fn fmt_value_matches_json_writer() {
        assert_eq!(fmt_value(0.5), "0.5");
        assert_eq!(fmt_value(2.0), "2.0");
    }
}
