//! The [`Instrument`] hook trait and its no-op default.
//!
//! Substrate components (`sim` kernel, `tlm` bus, `platform` FPGA, the
//! verification engines) hold a [`SharedInstrument`] and report activity
//! through it. The default is [`Noop`]: every method is an empty default
//! body, so disabled telemetry costs one devirtualizable call and zero
//! allocations. Components must guard any string formatting behind
//! [`Instrument::enabled`] so the disabled path allocates nothing.

use std::fmt;
use std::rc::Rc;

/// Telemetry sink interface. All methods take `&self` (implementations use
/// interior mutability) and default to no-ops.
///
/// Time arguments are *simulation* ticks (or another deterministic
/// progress axis, e.g. BMC depth for the formal engines) — never wall
/// time; the [`crate::Collector`] records wall time separately and only
/// when explicitly enabled.
pub trait Instrument: fmt::Debug {
    /// Whether records are actually kept. Callers use this to skip
    /// building labels (which allocate) when telemetry is off.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a nested span on `track` at time `start`.
    fn span_begin(&self, _track: &str, _name: &str, _start: u64) {}

    /// Closes the innermost open span on `track` at time `end`.
    fn span_end(&self, _track: &str, _end: u64) {}

    /// Records a complete span in one call (nested under any span
    /// currently open on `track`).
    fn span(&self, _track: &str, _name: &str, _start: u64, _end: u64) {}

    /// Adds `delta` to the monotonic counter `name`.
    fn counter_add(&self, _name: &str, _delta: u64) {}

    /// Appends `(at, value)` to the gauge time-series `name`.
    fn gauge_set(&self, _name: &str, _at: u64, _value: i64) {}

    /// Records one sample into the histogram `name`.
    fn record(&self, _name: &str, _value: u64) {}

    /// Current value of the monotonic counter `name` (0 when the
    /// implementation keeps no counters). Lets a coordinator compute
    /// effort deltas around a phase through the `dyn` handle without
    /// downcasting to a concrete [`crate::Collector`].
    fn counter_value(&self, _name: &str) -> u64 {
        0
    }
}

/// The do-nothing instrument: the default everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Noop;

impl Instrument for Noop {}

/// Cheaply cloneable handle to an instrument. The whole flow is
/// single-threaded (`Rc`-based shared objects), so `Rc` is the right
/// sharing primitive.
pub type SharedInstrument = Rc<dyn Instrument>;

/// A fresh handle to the no-op instrument.
pub fn noop() -> SharedInstrument {
    Rc::new(Noop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let i = noop();
        assert!(!i.enabled());
        // None of these panic or record anything.
        i.span_begin("t", "s", 0);
        i.span_end("t", 1);
        i.span("t", "s", 0, 1);
        i.counter_add("c", 3);
        i.gauge_set("g", 0, -1);
        i.record("h", 42);
        assert_eq!(i.counter_value("c"), 0);
    }
}
