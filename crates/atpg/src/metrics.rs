//! Testbench evaluation: coverage metrics and fault simulation.
//!
//! Every metric runs the design-under-verification many times — once per
//! vector for coverage, once per *fault × vector* for bit coverage — so
//! each entry point takes a [`BehavExec`] engine choice. The default is
//! the bytecode VM (`compile` once, run the whole sweep on reusable
//! state); the tree-walking interpreter remains available as the
//! reference engine and is asserted equivalent in the tests below.

use crate::Testbench;
use behav::bytecode::{compile, BehavExec, Vm};
use behav::interp::{enumerate_bit_faults, BitFault, CallEvent, Interpreter, OobAccess};
use behav::{CoverageSet, Function, VarId};

/// Merged coverage of a set of vectors over a function, under the default
/// engine. See [`evaluate_with`].
pub fn evaluate(func: &Function, vectors: &[Vec<u64>]) -> CoverageSet {
    evaluate_with(func, vectors, BehavExec::default())
}

/// Merged coverage of a set of vectors over a function.
///
/// Returns the merged [`CoverageSet`]; call `.report()` on it for
/// percentages. Vectors that fail to execute (step-limit) are skipped — a
/// testbench must not be credited for runs that never finished.
pub fn evaluate_with(func: &Function, vectors: &[Vec<u64>], exec: BehavExec) -> CoverageSet {
    let mut merged = CoverageSet::new(func);
    match exec {
        BehavExec::Interp => {
            for v in vectors {
                if let Ok(out) = Interpreter::new(func).run(v) {
                    merged.merge(&out.coverage);
                }
            }
        }
        BehavExec::Vm => {
            let mut vm = Vm::new(compile(func));
            for v in vectors {
                if let Ok(out) = vm.run(v) {
                    merged.merge(&out.coverage);
                }
            }
        }
    }
    merged
}

/// Output signature of one run, used to decide fault detection: a fault is
/// detected when any part of the observable behaviour changes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Signature {
    ret: Option<u64>,
    calls: Vec<CallEvent>,
}

fn interp_signature(func: &Function, vector: &[u64], fault: Option<BitFault>) -> Option<Signature> {
    let mut interp = Interpreter::new(func);
    if let Some(f) = fault {
        interp = interp.with_fault(f);
    }
    interp.run(vector).ok().map(|o| Signature {
        ret: o.return_value,
        calls: o.call_trace,
    })
}

fn vm_signature(vm: &mut Vm, vector: &[u64]) -> Option<Signature> {
    vm.run_signature(vector)
        .ok()
        .map(|(ret, calls)| Signature { ret, calls })
}

/// Result of the bit-coverage fault simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitCoverage {
    /// Total faults in the high-level fault list.
    pub total: usize,
    /// Faults detected by at least one vector.
    pub detected: usize,
    /// The faults no vector detected.
    pub undetected: Vec<BitFault>,
}

impl BitCoverage {
    /// Detection percentage.
    pub fn pct(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }
}

/// Fault-simulates the whole bit-fault list under the default engine. See
/// [`bit_coverage_with`].
pub fn bit_coverage(func: &Function, tb: &Testbench) -> BitCoverage {
    bit_coverage_with(func, tb, BehavExec::default())
}

/// Fault-simulates the whole bit-fault list of `func` against a testbench.
///
/// A fault is *detected* when some vector produces a different output
/// signature (return value or resource-call trace) than the fault-free
/// run. This is the hot sweep — `faults × vectors` runs — and the reason
/// the VM engine exists: the program is compiled once and only the
/// injected fault changes between runs.
pub fn bit_coverage_with(func: &Function, tb: &Testbench, exec: BehavExec) -> BitCoverage {
    let faults = enumerate_bit_faults(func);
    let mut undetected = Vec::new();
    let mut detected = 0usize;
    match exec {
        BehavExec::Interp => {
            let golden: Vec<Option<Signature>> = tb
                .vectors
                .iter()
                .map(|v| interp_signature(func, v, None))
                .collect();
            for &fault in &faults {
                let caught = tb
                    .vectors
                    .iter()
                    .zip(&golden)
                    .any(|(v, g)| interp_signature(func, v, Some(fault)) != *g);
                if caught {
                    detected += 1;
                } else {
                    undetected.push(fault);
                }
            }
        }
        BehavExec::Vm => {
            let mut vm = Vm::new(compile(func));
            vm.set_fault(None);
            let golden: Vec<Option<Signature>> = tb
                .vectors
                .iter()
                .map(|v| vm_signature(&mut vm, v))
                .collect();
            for &fault in &faults {
                vm.set_fault(Some(fault));
                let caught = tb
                    .vectors
                    .iter()
                    .zip(&golden)
                    .any(|(v, g)| vm_signature(&mut vm, v) != *g);
                if caught {
                    detected += 1;
                } else {
                    undetected.push(fault);
                }
            }
        }
    }
    BitCoverage {
        total: faults.len(),
        detected,
        undetected,
    }
}

/// Memory-inspection report under the default engine. See
/// [`memory_inspection_with`].
pub fn memory_inspection(func: &Function, tb: &Testbench) -> Vec<(Vec<u64>, VarId, u64)> {
    memory_inspection_with(func, tb, BehavExec::default())
}

/// Memory-inspection report over a testbench: every `(array, index)` read
/// before initialization, with the vector that triggered it.
pub fn memory_inspection_with(
    func: &Function,
    tb: &Testbench,
    exec: BehavExec,
) -> Vec<(Vec<u64>, VarId, u64)> {
    let mut findings = Vec::new();
    let mut vm = match exec {
        BehavExec::Vm => Some(Vm::new(compile(func))),
        BehavExec::Interp => None,
    };
    for v in &tb.vectors {
        let out = match vm.as_mut() {
            Some(vm) => vm.run(v),
            None => Interpreter::new(func).run(v),
        };
        if let Ok(out) = out {
            for (array, idx) in out.uninitialized_reads {
                findings.push((v.clone(), array, idx));
            }
        }
    }
    findings
}

/// Out-of-bounds report over a testbench: every access past an array's end
/// (the write dropped, the read returning garbage), with the vector that
/// triggered it — the other half of the memory-inspection report.
pub fn oob_inspection(
    func: &Function,
    tb: &Testbench,
    exec: BehavExec,
) -> Vec<(Vec<u64>, OobAccess)> {
    let mut findings = Vec::new();
    let mut vm = match exec {
        BehavExec::Vm => Some(Vm::new(compile(func))),
        BehavExec::Interp => None,
    };
    for v in &tb.vectors {
        let out = match vm.as_mut() {
            Some(vm) => vm.run(v),
            None => Interpreter::new(func).run(v),
        };
        if let Ok(out) = out {
            for access in out.out_of_bounds {
                findings.push((v.clone(), access));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use behav::{Expr, FunctionBuilder};

    /// max(a, b) — two branches, easy faults.
    fn max_func() -> Function {
        let mut fb = FunctionBuilder::new("max", 8);
        let a = fb.param("a", 8);
        let b = fb.param("b", 8);
        let m = fb.local("m", 8);
        fb.if_else(
            Expr::ge(Expr::var(a), Expr::var(b)),
            |t| t.assign(m, Expr::var(a)),
            |e| e.assign(m, Expr::var(b)),
        );
        fb.ret(Expr::var(m));
        fb.build()
    }

    #[test]
    fn evaluate_merges_coverage_across_vectors() {
        let f = max_func();
        // One vector covers only one branch…
        let half = evaluate(&f, &[vec![9, 3]]).report();
        assert!(half.branch_pct() < 100.0);
        // …two complementary vectors cover both.
        let full = evaluate(&f, &[vec![9, 3], vec![3, 9]]).report();
        assert_eq!(full.branch_pct(), 100.0);
        assert_eq!(full.statement_pct(), 100.0);
    }

    #[test]
    fn bit_coverage_improves_with_vectors() {
        let f = max_func();
        let weak = bit_coverage(
            &f,
            &Testbench {
                vectors: vec![vec![0, 0]],
            },
        );
        let strong = bit_coverage(
            &f,
            &Testbench {
                vectors: vec![vec![0, 0], vec![255, 0], vec![0, 255], vec![170, 85]],
            },
        );
        assert!(strong.detected > weak.detected);
        assert_eq!(weak.total, strong.total);
        assert_eq!(weak.total, 8 * 2); // m: 8 bits × 2 polarities
        assert_eq!(strong.detected + strong.undetected.len(), strong.total);
    }

    #[test]
    fn all_ones_and_zero_vectors_detect_all_faults_of_identity() {
        // f(a) = a through a local: every stuck bit is observable with
        // the 0x00 and 0xFF inputs.
        let mut fb = FunctionBuilder::new("id", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.assign(x, Expr::var(a));
        fb.ret(Expr::var(x));
        let f = fb.build();
        let cov = bit_coverage(
            &f,
            &Testbench {
                vectors: vec![vec![0x00], vec![0xFF]],
            },
        );
        assert_eq!(cov.detected, cov.total);
        assert!(cov.undetected.is_empty());
        assert_eq!(cov.pct(), 100.0);
    }

    #[test]
    fn memory_inspection_finds_seeded_init_bug() {
        // Initialize only the first half of a buffer, then sum all of it.
        let mut fb = FunctionBuilder::new("sumbuf", 16);
        let n = fb.param("n", 8);
        let buf = fb.array("buf", 16, 8);
        let i = fb.local("i", 8);
        fb.while_(Expr::lt(Expr::var(i), Expr::constant(4, 8)), |b| {
            b.store(buf, Expr::var(i), Expr::constant(1, 16));
            b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 8)));
        });
        let acc = fb.local("acc", 16);
        fb.assign(i, Expr::constant(0, 8));
        fb.while_(Expr::lt(Expr::var(i), Expr::var(n)), |b| {
            b.assign(
                acc,
                Expr::add(Expr::var(acc), Expr::index(buf, Expr::var(i))),
            );
            b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 8)));
        });
        fb.ret(Expr::var(acc));
        let f = fb.build();
        // Reading 4 elements is clean; reading 6 hits uninitialized memory.
        let clean = memory_inspection(
            &f,
            &Testbench {
                vectors: vec![vec![4]],
            },
        );
        assert!(clean.is_empty());
        let dirty = memory_inspection(
            &f,
            &Testbench {
                vectors: vec![vec![6]],
            },
        );
        assert_eq!(dirty.len(), 2); // indices 4 and 5
        assert_eq!(dirty[0].2, 4);
        assert_eq!(dirty[1].2, 5);
    }

    #[test]
    fn oob_inspection_reports_the_vector_and_access() {
        use behav::interp::OobKind;
        let mut fb = FunctionBuilder::new("walk", 16);
        let n = fb.param("n", 8);
        let buf = fb.array("buf", 16, 4);
        let i = fb.local("i", 8);
        fb.while_(Expr::lt(Expr::var(i), Expr::var(n)), |b| {
            b.store(buf, Expr::var(i), Expr::var(i));
            b.assign(i, Expr::add(Expr::var(i), Expr::constant(1, 8)));
        });
        fb.ret(Expr::var(i));
        let f = fb.build();
        for exec in [BehavExec::Interp, BehavExec::Vm] {
            let clean = oob_inspection(
                &f,
                &Testbench {
                    vectors: vec![vec![4]],
                },
                exec,
            );
            assert!(clean.is_empty());
            let dirty = oob_inspection(
                &f,
                &Testbench {
                    vectors: vec![vec![6]],
                },
                exec,
            );
            assert_eq!(dirty.len(), 2); // stores at 4 and 5
            assert_eq!(dirty[0].1.kind, OobKind::Store);
            assert_eq!(dirty[0].1.index, 4);
            assert_eq!(dirty[1].1.index, 5);
        }
    }

    /// Every metric must be engine-independent: interpreter and VM results
    /// are equal, not just close.
    #[test]
    fn engines_agree_on_every_metric() {
        let funcs = [max_func(), {
            let mut fb = FunctionBuilder::new("traced", 8);
            let a = fb.param("a", 8);
            let x = fb.local("x", 8);
            fb.reconfigure(behav::ConfigId(2));
            fb.if_(Expr::gt(Expr::var(a), Expr::constant(4, 8)), |t| {
                t.resource_call("acc", vec![Expr::var(a)], Some(x));
            });
            fb.ret(Expr::var(x));
            fb.build()
        }];
        let tb = Testbench {
            vectors: vec![vec![0, 0], vec![9, 3], vec![3, 9], vec![255, 255]],
        };
        for f in &funcs {
            let tb = Testbench {
                vectors: tb
                    .vectors
                    .iter()
                    .map(|v| v[..f.num_params()].to_vec())
                    .collect(),
            };
            assert_eq!(
                evaluate_with(f, &tb.vectors, BehavExec::Interp),
                evaluate_with(f, &tb.vectors, BehavExec::Vm),
            );
            assert_eq!(
                bit_coverage_with(f, &tb, BehavExec::Interp),
                bit_coverage_with(f, &tb, BehavExec::Vm),
            );
            assert_eq!(
                memory_inspection_with(f, &tb, BehavExec::Interp),
                memory_inspection_with(f, &tb, BehavExec::Vm),
            );
            assert_eq!(
                oob_inspection(f, &tb, BehavExec::Interp),
                oob_inspection(f, &tb, BehavExec::Vm),
            );
        }
    }
}
