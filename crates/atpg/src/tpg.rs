//! Simulation-based test pattern generation: greedy random and genetic.

use crate::metrics::evaluate;
use crate::Testbench;
use behav::{CoverageSet, Function};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn coverage_score(cov: &CoverageSet) -> usize {
    let r = cov.report();
    r.statements_hit + r.branches_hit + r.conditions_hit
}

fn max_score(func: &Function) -> usize {
    let r = CoverageSet::new(func).report();
    r.statements_total + r.branches_total + r.conditions_total
}

fn random_vector(func: &Function, rng: &mut StdRng) -> Vec<u64> {
    func.params()
        .iter()
        .map(|&p| {
            let w = func.var(p).width;
            let m = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            rng.gen::<u64>() & m
        })
        .collect()
}

/// Configuration of the greedy random engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomConfig {
    /// Number of candidate vectors to draw.
    pub rounds: u32,
    /// RNG seed (deterministic reproduction).
    pub seed: u64,
}

/// Greedy random TPG: draws random vectors, keeping only those that
/// increase the combined coverage score. Stops early at full coverage.
pub fn random_tpg(func: &Function, cfg: &RandomConfig) -> Testbench {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let target = max_score(func);
    let mut tb = Testbench::new();
    let mut merged = CoverageSet::new(func);
    let mut score = 0usize;
    for _ in 0..cfg.rounds {
        let v = random_vector(func, &mut rng);
        let cov = evaluate(func, std::slice::from_ref(&v));
        let mut candidate = merged.clone();
        candidate.merge(&cov);
        let new_score = coverage_score(&candidate);
        if new_score > score {
            score = new_score;
            merged = candidate;
            tb.vectors.push(v);
        }
        if score == target {
            break;
        }
    }
    tb
}

/// Configuration of the genetic engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Vectors per individual (testbench length).
    pub vectors_per_individual: usize,
    /// Generations to evolve.
    pub generations: u32,
    /// Probability (per mille) of mutating each input word.
    pub mutation_per_mille: u32,
    /// Tournament size for selection.
    pub tournament: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 24,
            vectors_per_individual: 8,
            generations: 40,
            mutation_per_mille: 60,
            tournament: 3,
            seed: 0xA790_0001,
        }
    }
}

/// Result of a GA run: the best testbench and the per-generation best
/// fitness history (for the convergence plots of experiment E4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaOutcome {
    /// Best individual found.
    pub best: Testbench,
    /// Best fitness (coverage score) per generation.
    pub history: Vec<usize>,
    /// The maximum achievable score for the function.
    pub target: usize,
}

/// Genetic-algorithm TPG in the Laerte++ style: individuals are whole
/// testbenches; fitness is the combined statement+branch+condition score;
/// tournament selection, single-point crossover over the vector list, and
/// per-word mutation.
pub fn genetic_tpg(func: &Function, cfg: &GaConfig) -> GaOutcome {
    genetic_tpg_instrumented(func, cfg, &telemetry::noop())
}

/// [`genetic_tpg`] with telemetry: emits the best-fitness-so-far coverage
/// curve as an `atpg.ga.best` gauge (time axis = generation number) plus
/// generation and evaluation counters — the convergence data of
/// experiment E4, live rather than post-hoc.
pub fn genetic_tpg_instrumented(
    func: &Function,
    cfg: &GaConfig,
    instrument: &telemetry::SharedInstrument,
) -> GaOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let target = max_score(func);
    let fitness = |tb: &Testbench| -> usize { coverage_score(&evaluate(func, &tb.vectors)) };

    let mut population: Vec<Testbench> = (0..cfg.population)
        .map(|_| Testbench {
            vectors: (0..cfg.vectors_per_individual)
                .map(|_| random_vector(func, &mut rng))
                .collect(),
        })
        .collect();
    let mut scores: Vec<usize> = population.iter().map(&fitness).collect();
    let mut history = Vec::with_capacity(cfg.generations as usize);

    for gen in 0..cfg.generations {
        let best_now = scores.iter().copied().max().unwrap_or(0);
        history.push(best_now);
        instrument.gauge_set("atpg.ga.best", gen as u64, best_now as i64);
        instrument.counter_add("atpg.ga.generations", 1);
        instrument.counter_add("atpg.ga.evaluations", scores.len() as u64);
        if best_now == target {
            break;
        }
        let mut next: Vec<Testbench> = Vec::with_capacity(cfg.population);
        // Elitism: carry the single best individual over.
        let best_idx = (0..scores.len()).max_by_key(|&i| scores[i]).unwrap_or(0);
        next.push(population[best_idx].clone());
        while next.len() < cfg.population {
            let pa = tournament(&scores, cfg.tournament, &mut rng);
            let pb = tournament(&scores, cfg.tournament, &mut rng);
            let mut child = crossover(&population[pa], &population[pb], &mut rng);
            mutate(func, &mut child, cfg.mutation_per_mille, &mut rng);
            next.push(child);
        }
        population = next;
        scores = population.iter().map(&fitness).collect();
    }
    let best_idx = (0..scores.len()).max_by_key(|&i| scores[i]).unwrap_or(0);
    history.push(scores[best_idx]);
    GaOutcome {
        best: population[best_idx].clone(),
        history,
        target,
    }
}

fn tournament(scores: &[usize], k: usize, rng: &mut StdRng) -> usize {
    let mut best = rng.gen_range(0..scores.len());
    for _ in 1..k {
        let c = rng.gen_range(0..scores.len());
        if scores[c] > scores[best] {
            best = c;
        }
    }
    best
}

fn crossover(a: &Testbench, b: &Testbench, rng: &mut StdRng) -> Testbench {
    let n = a.vectors.len().min(b.vectors.len());
    if n == 0 {
        return a.clone();
    }
    let cut = rng.gen_range(0..=n);
    let vectors = a.vectors[..cut]
        .iter()
        .chain(b.vectors[cut..n].iter())
        .cloned()
        .collect();
    Testbench { vectors }
}

fn mutate(func: &Function, tb: &mut Testbench, per_mille: u32, rng: &mut StdRng) {
    for v in &mut tb.vectors {
        for (slot, &p) in v.iter_mut().zip(&func.params()) {
            if rng.gen_range(0..1000) < per_mille {
                let w = func.var(p).width;
                let m = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                // Either fresh random value or a single bit flip.
                if rng.gen_bool(0.5) {
                    *slot = rng.gen::<u64>() & m;
                } else {
                    *slot ^= 1u64 << rng.gen_range(0..w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use behav::{Expr, FunctionBuilder};

    /// A function with a narrow branch: a == 0xAB (1 in 256 random chance),
    /// which greedy random finds slowly and the GA finds reliably.
    fn narrow_branch() -> Function {
        let mut fb = FunctionBuilder::new("narrow", 8);
        let a = fb.param("a", 8);
        let out = fb.local("out", 8);
        fb.if_else(
            Expr::eq(Expr::var(a), Expr::constant(0xAB, 8)),
            |t| t.assign(out, Expr::constant(1, 8)),
            |e| e.assign(out, Expr::constant(0, 8)),
        );
        fb.ret(Expr::var(out));
        fb.build()
    }

    #[test]
    fn random_tpg_reaches_full_coverage_on_easy_function() {
        let mut fb = FunctionBuilder::new("easy", 8);
        let a = fb.param("a", 8);
        fb.if_else(
            Expr::ge(Expr::var(a), Expr::constant(128, 8)),
            |t| t.ret(Expr::constant(1, 8)),
            |e| e.ret(Expr::constant(0, 8)),
        );
        let f = fb.build();
        let tb = random_tpg(
            &f,
            &RandomConfig {
                rounds: 64,
                seed: 7,
            },
        );
        let r = metrics::evaluate(&f, &tb.vectors).report();
        assert!(r.is_complete(), "report: {r:?}");
        // Greedy keeps only improving vectors: tiny testbench.
        assert!(tb.len() <= 4);
    }

    #[test]
    fn random_tpg_is_deterministic_per_seed() {
        let f = narrow_branch();
        let cfg = RandomConfig {
            rounds: 100,
            seed: 42,
        };
        assert_eq!(random_tpg(&f, &cfg), random_tpg(&f, &cfg));
    }

    #[test]
    fn instrumented_ga_emits_coverage_curve() {
        let collector = telemetry::Collector::shared();
        let instr: telemetry::SharedInstrument = collector.clone();
        let f = narrow_branch();
        let cfg = GaConfig {
            population: 10,
            vectors_per_individual: 4,
            generations: 5,
            mutation_per_mille: 80,
            tournament: 3,
            seed: 11,
        };
        let outcome = genetic_tpg_instrumented(&f, &cfg, &instr);
        // Instrumentation must not perturb the search.
        assert_eq!(outcome, genetic_tpg(&f, &cfg));
        let curve = collector.gauge_series("atpg.ga.best");
        assert!(!curve.is_empty());
        // The gauge mirrors the outcome's history (minus the final push).
        for (i, &(gen, best)) in curve.iter().enumerate() {
            assert_eq!(gen, i as u64);
            assert_eq!(best, outcome.history[i] as i64);
        }
        assert_eq!(collector.counter("atpg.ga.generations"), curve.len() as u64);
    }

    #[test]
    fn ga_finds_narrow_branch() {
        let f = narrow_branch();
        let outcome = genetic_tpg(
            &f,
            &GaConfig {
                population: 30,
                vectors_per_individual: 6,
                generations: 120,
                mutation_per_mille: 80,
                tournament: 3,
                seed: 11,
            },
        );
        assert_eq!(
            *outcome.history.last().unwrap(),
            outcome.target,
            "GA should reach full coverage; history={:?}",
            outcome.history
        );
        let r = metrics::evaluate(&f, &outcome.best.vectors).report();
        assert!(r.is_complete());
    }

    #[test]
    fn ga_history_is_monotone_thanks_to_elitism() {
        let f = narrow_branch();
        let outcome = genetic_tpg(
            &f,
            &GaConfig {
                population: 10,
                vectors_per_individual: 4,
                generations: 20,
                mutation_per_mille: 100,
                tournament: 2,
                seed: 3,
            },
        );
        for w in outcome.history.windows(2) {
            assert!(
                w[1] >= w[0],
                "history must not regress: {:?}",
                outcome.history
            );
        }
    }
}
