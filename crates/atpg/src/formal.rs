//! SAT-based (formal) test pattern generation.
//!
//! The simulation engines plateau on hard-to-reach branches and
//! hard-to-excite faults; Laerte++'s answer — and this module's — is to
//! compile the question into SAT:
//!
//! * **branch targeting** ([`sat_branch_tpg`]): a reachability *probe* is
//!   planted in the target branch arm and the instrumented function is
//!   synthesized to combinational RTL; a model of "probe output = 1" is a
//!   test vector reaching the branch (or `None` proves the branch dead),
//! * **fault targeting** ([`sat_fault_tpg`]): a stuck-at bit fault is
//!   injected *behaviourally* (masking every assignment to the target
//!   variable), both versions are synthesized, and a miter asks for inputs
//!   on which they differ; `None` proves the fault untestable.
//!
//! Both run on loop-free functions (unroll first — the same precondition as
//! synthesis).

use crate::Testbench;
use behav::interp::{BitFault, Interpreter};
use behav::{CondId, Expr, Function, Stmt, VarId};
use hdl::lower::{lower, BitCtx, CnfBackend};
use hdl::synth::{synthesize, SynthError};
use sat::Lit;

/// Errors from the formal engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormalError {
    /// The function could not be synthesized (loops/arrays/…).
    Synth(SynthError),
    /// The requested branch condition id does not exist.
    NoSuchCondition(CondId),
}

impl From<SynthError> for FormalError {
    fn from(e: SynthError) -> Self {
        FormalError::Synth(e)
    }
}

impl std::fmt::Display for FormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormalError::Synth(e) => write!(f, "synthesis failed: {e}"),
            FormalError::NoSuchCondition(c) => {
                write!(f, "no branch condition with id {}", c.index())
            }
        }
    }
}

impl std::error::Error for FormalError {}

/// Rewrites `func` so that it returns 1 iff the branch `(cond_id, dir)` is
/// executed in direction `dir`. Early returns keep their control effect but
/// the returned value becomes the probe.
fn instrument_branch(func: &Function, cond_id: CondId, dir: bool) -> Option<Function> {
    // The probe is a fresh local appended to the variable table.
    let mut vars = func.vars().to_vec();
    vars.push(behav::VarDecl {
        name: "__probe".to_owned(),
        width: 1,
        kind: behav::VarKind::Local,
    });
    let probe = VarId::from_index(vars.len() - 1);
    let mut found = false;
    let mut body = rewrite_block(func.body(), cond_id, dir, probe, &mut found);
    if !found {
        return None;
    }
    // Final fall-through return of the probe.
    body.push(Stmt::Return {
        id: behav::StmtId::placeholder(),
        value: Some(Expr::var(probe)),
    });
    Some(behav::Function::rebuild(
        format!("{}_probe", func.name()),
        vars,
        func.num_params(),
        1,
        body,
    ))
}

fn rewrite_block(
    stmts: &[Stmt],
    cond_id: CondId,
    dir: bool,
    probe: VarId,
    found: &mut bool,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::If {
                id,
                cond_id: cid,
                cond,
                then_,
                else_,
            } => {
                let mut then_2 = rewrite_block(then_, cond_id, dir, probe, found);
                let mut else_2 = rewrite_block(else_, cond_id, dir, probe, found);
                if *cid == cond_id {
                    *found = true;
                    let mark = Stmt::Assign {
                        id: behav::StmtId::placeholder(),
                        target: probe,
                        value: Expr::constant(1, 1),
                    };
                    if dir {
                        then_2.insert(0, mark);
                    } else {
                        else_2.insert(0, mark);
                    }
                }
                out.push(Stmt::If {
                    id: *id,
                    cond_id: *cid,
                    cond: cond.clone(),
                    then_: then_2,
                    else_: else_2,
                });
            }
            Stmt::Return { id, .. } => {
                // Keep the control effect; the value becomes the probe.
                out.push(Stmt::Return {
                    id: *id,
                    value: Some(Expr::var(probe)),
                });
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// Finds an input vector that drives branch `(cond_id, dir)` of the
/// (loop-free) function, or returns `Ok(None)` — a *proof* that the branch
/// direction is unreachable (dead code).
///
/// # Errors
///
/// Returns [`FormalError`] when the function cannot be synthesized or the
/// condition id does not exist.
pub fn sat_branch_tpg(
    func: &Function,
    cond_id: CondId,
    dir: bool,
) -> Result<Option<Vec<u64>>, FormalError> {
    sat_branch_tpg_cached(func, cond_id, dir, cache::noop())
}

/// [`sat_branch_tpg`] backed by the obligation cache (engine tag
/// `"atpg.branch"`). The fingerprint covers the synthesized probe CNF,
/// the input literal layout, and the probe root, so a hit replays either
/// the stored test vector or the stored unreachability proof without
/// solving. [`cache::noop()`] skips fingerprinting entirely.
///
/// # Errors
///
/// As [`sat_branch_tpg`] (synthesis runs before any cache lookup).
pub fn sat_branch_tpg_cached(
    func: &Function,
    cond_id: CondId,
    dir: bool,
    cache: &cache::ObligationCache,
) -> Result<Option<Vec<u64>>, FormalError> {
    let instrumented =
        instrument_branch(func, cond_id, dir).ok_or(FormalError::NoSuchCondition(cond_id))?;
    let rtl = synthesize(&instrumented)?;
    let mut ctx = CnfBackend::new();
    let input_bits: Vec<Vec<Lit>> = rtl
        .inputs()
        .iter()
        .map(|&i| (0..rtl.width(i)).map(|_| ctx.bit_fresh()).collect())
        .collect();
    let lowered = lower(&rtl, &mut ctx, &input_bits, &[]);
    let probe_bit = lowered.outputs(&rtl)[0].1[0];
    let fp = if cache.is_enabled() {
        let flat: Vec<Lit> = input_bits.iter().flatten().copied().collect();
        let cnf = ctx.builder_mut().solver().export_cnf();
        let fp = cache::FingerprintBuilder::new("atpg.branch")
            .lits(&flat)
            .lits(&[probe_bit])
            .cnf(&cnf)
            .finish();
        if let Some(payload) = cache.lookup_tagged("atpg.branch", fp) {
            if let Some(model) = decode_model(&payload) {
                return Ok(model);
            }
        }
        Some(fp)
    } else {
        None
    };
    let builder = ctx.builder_mut();
    builder.assert_lit(probe_bit);
    let result = if builder.solve().is_unsat() {
        None
    } else {
        Some(read_model(builder, &input_bits))
    };
    if let Some(fp) = fp {
        cache.insert_tagged("atpg.branch", fp, encode_model(result.as_deref()));
    }
    Ok(result)
}

/// Injects a bit fault behaviourally: every assignment to `fault.var` has
/// the faulty bit forced. This mirrors the interpreter's fault semantics,
/// so SAT answers agree with fault simulation.
pub fn inject_fault(func: &Function, fault: BitFault) -> Function {
    let body = inject_block(func.body(), fault, func);
    behav::Function::rebuild(
        format!("{}_faulty", func.name()),
        func.vars().to_vec(),
        func.num_params(),
        func.ret_width(),
        body,
    )
}

fn faulty_value(value: &Expr, fault: BitFault, width: u32) -> Expr {
    if fault.bit >= width {
        return value.clone();
    }
    if fault.stuck_at {
        Expr::or(value.clone(), Expr::constant(1u64 << fault.bit, width))
    } else {
        let m = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        Expr::and(
            value.clone(),
            Expr::constant(m & !(1u64 << fault.bit), width),
        )
    }
}

fn inject_block(stmts: &[Stmt], fault: BitFault, func: &Function) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign { id, target, value } if *target == fault.var => Stmt::Assign {
                id: *id,
                target: *target,
                value: faulty_value(value, fault, func.var(*target).width),
            },
            Stmt::If {
                id,
                cond_id,
                cond,
                then_,
                else_,
            } => Stmt::If {
                id: *id,
                cond_id: *cond_id,
                cond: cond.clone(),
                then_: inject_block(then_, fault, func),
                else_: inject_block(else_, fault, func),
            },
            Stmt::While {
                id,
                cond_id,
                cond,
                body,
            } => Stmt::While {
                id: *id,
                cond_id: *cond_id,
                cond: cond.clone(),
                body: inject_block(body, fault, func),
            },
            other => other.clone(),
        })
        .collect()
}

/// Finds an input vector on which the fault changes the function's output
/// (a *test* for the fault), or `Ok(None)` — a proof the fault is
/// untestable. Loop-free functions only.
///
/// # Errors
///
/// Returns [`FormalError::Synth`] when either version cannot be
/// synthesized.
pub fn sat_fault_tpg(func: &Function, fault: BitFault) -> Result<Option<Vec<u64>>, FormalError> {
    sat_fault_tpg_cached(func, fault, cache::noop())
}

/// [`sat_fault_tpg`] backed by the obligation cache (engine tag
/// `"atpg.fault"`). The fingerprint covers the good/faulty miter CNF, the
/// shared input literal layout, and the "outputs differ" root, so a hit
/// replays the stored test vector or untestability proof without solving.
///
/// # Errors
///
/// As [`sat_fault_tpg`] (both syntheses run before any cache lookup).
pub fn sat_fault_tpg_cached(
    func: &Function,
    fault: BitFault,
    cache: &cache::ObligationCache,
) -> Result<Option<Vec<u64>>, FormalError> {
    let good = synthesize(func)?;
    let bad = synthesize(&inject_fault(func, fault))?;
    let mut ctx = CnfBackend::new();
    let input_bits: Vec<Vec<Lit>> = good
        .inputs()
        .iter()
        .map(|&i| (0..good.width(i)).map(|_| ctx.bit_fresh()).collect())
        .collect();
    let lg = lower(&good, &mut ctx, &input_bits, &[]);
    let lb = lower(&bad, &mut ctx, &input_bits, &[]);
    let out_g = lg.outputs(&good)[0].1.clone();
    let out_b = lb.outputs(&bad)[0].1.clone();
    // Miter: outputs differ in at least one bit.
    let mut diff_bits = Vec::new();
    for (&g, &b) in out_g.iter().zip(&out_b) {
        diff_bits.push(ctx.bit_xor(g, b));
    }
    let builder = ctx.builder_mut();
    let any = diff_bits
        .iter()
        .fold(None::<Lit>, |acc, &d| match acc {
            None => Some(d),
            Some(a) => Some(builder.or_gate(a, d)),
        })
        .expect("at least one output bit");
    let fp = if cache.is_enabled() {
        let flat: Vec<Lit> = input_bits.iter().flatten().copied().collect();
        let cnf = builder.solver().export_cnf();
        let fp = cache::FingerprintBuilder::new("atpg.fault")
            .lits(&flat)
            .lits(&[any])
            .cnf(&cnf)
            .finish();
        if let Some(payload) = cache.lookup_tagged("atpg.fault", fp) {
            if let Some(model) = decode_model(&payload) {
                return Ok(model);
            }
        }
        Some(fp)
    } else {
        None
    };
    builder.assert_lit(any);
    let result = if builder.solve().is_unsat() {
        None
    } else {
        Some(read_model(builder, &input_bits))
    };
    if let Some(fp) = fp {
        cache.insert_tagged("atpg.fault", fp, encode_model(result.as_deref()));
    }
    Ok(result)
}

/// Completes a testbench's *bit coverage* formally: for every fault left
/// undetected by `tb`, asks SAT for a distinguishing vector (appending it)
/// or proves the fault untestable. Returns the extended testbench and the
/// number of proven-untestable faults. Loop-free functions only.
///
/// After this, `metrics::bit_coverage` detects every testable fault — the
/// formal engine finishing what the simulation engines plateaued on,
/// exactly Laerte++'s division of labour.
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn complete_faults_with_sat(
    func: &Function,
    tb: &Testbench,
) -> Result<(Testbench, u32), FormalError> {
    complete_faults_with_sat_mode(func, tb, exec::ExecMode::Sequential)
}

/// [`complete_faults_with_sat`] with each undetected fault generated as an
/// independent obligation, optionally across worker threads. Obligations
/// share nothing (each builds its own miter and solver) and results are
/// merged in fault order, so the extended testbench is bit-identical to
/// the sequential one for every mode.
///
/// # Errors
///
/// Propagates synthesis failures (the first, in fault order).
pub fn complete_faults_with_sat_mode(
    func: &Function,
    tb: &Testbench,
    mode: exec::ExecMode,
) -> Result<(Testbench, u32), FormalError> {
    complete_faults_with_sat_cached(func, tb, mode, cache::noop())
}

/// [`complete_faults_with_sat_mode`] with every per-fault obligation
/// backed by the shared obligation cache.
///
/// # Errors
///
/// As [`complete_faults_with_sat_mode`].
pub fn complete_faults_with_sat_cached(
    func: &Function,
    tb: &Testbench,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
) -> Result<(Testbench, u32), FormalError> {
    let cov = crate::metrics::bit_coverage(func, tb);
    let results = exec::map(mode, cov.undetected, |_, fault| {
        sat_fault_tpg_cached(func, fault, cache)
    });
    let mut out = tb.clone();
    let mut untestable = 0u32;
    for r in results {
        match r? {
            Some(v) => out.vectors.push(v),
            None => untestable += 1,
        }
    }
    Ok((out, untestable))
}

/// Payload codec for TPG results: `none` proves the target untestable /
/// unreachable; `m:v1,v2,…` is a concrete input vector (possibly empty
/// for zero-input functions, encoded as bare `m:`).
fn encode_model(model: Option<&[u64]>) -> String {
    match model {
        None => "none".to_owned(),
        Some(values) => {
            let body: Vec<String> = values.iter().map(u64::to_string).collect();
            format!("m:{}", body.join(","))
        }
    }
}

fn decode_model(payload: &str) -> Option<Option<Vec<u64>>> {
    if payload == "none" {
        return Some(None);
    }
    let body = payload.strip_prefix("m:")?;
    if body.is_empty() {
        return Some(Some(Vec::new()));
    }
    body.split(',')
        .map(|v| v.parse().ok())
        .collect::<Option<Vec<u64>>>()
        .map(Some)
}

fn read_model(builder: &sat::CnfBuilder, input_bits: &[Vec<Lit>]) -> Vec<u64> {
    input_bits
        .iter()
        .map(|bits| {
            let mut v = 0u64;
            for (i, &l) in bits.iter().enumerate() {
                if builder.lit_value(l) {
                    v |= 1 << i;
                }
            }
            v
        })
        .collect()
}

/// Completes a testbench formally: for every branch direction left
/// uncovered by `tb`, asks SAT for a vector (appending it when one exists).
/// Returns the extended testbench and the number of branch directions
/// proven unreachable.
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn complete_with_sat(func: &Function, tb: &Testbench) -> Result<(Testbench, u32), FormalError> {
    complete_with_sat_mode(func, tb, exec::ExecMode::Sequential)
}

/// [`complete_with_sat`] with each uncovered branch targeted as an
/// independent obligation, optionally across worker threads. Vectors are
/// merged in branch order, so the extended testbench is bit-identical to
/// the sequential one for every mode.
///
/// # Errors
///
/// Propagates synthesis failures (the first, in branch order).
pub fn complete_with_sat_mode(
    func: &Function,
    tb: &Testbench,
    mode: exec::ExecMode,
) -> Result<(Testbench, u32), FormalError> {
    complete_with_sat_cached(func, tb, mode, cache::noop())
}

/// [`complete_with_sat_mode`] with every per-branch obligation backed by
/// the shared obligation cache.
///
/// # Errors
///
/// As [`complete_with_sat_mode`].
pub fn complete_with_sat_cached(
    func: &Function,
    tb: &Testbench,
    mode: exec::ExecMode,
    cache: &cache::ObligationCache,
) -> Result<(Testbench, u32), FormalError> {
    let merged = crate::metrics::evaluate(func, &tb.vectors);
    let report = merged.report();
    let results = exec::map(mode, report.uncovered_branches, |_, (cond, dir)| {
        sat_branch_tpg_cached(func, cond, dir, cache)
    });
    let mut out = tb.clone();
    let mut unreachable = 0u32;
    for r in results {
        match r? {
            Some(v) => {
                // Cross-check with the interpreter before trusting SAT.
                let run = Interpreter::new(func).run(&v);
                debug_assert!(run.is_ok());
                out.vectors.push(v);
            }
            None => unreachable += 1,
        }
    }
    Ok((out, unreachable))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use behav::{Expr, FunctionBuilder};

    /// Needle in a 16-bit haystack: a*3+7 == 0x1234 has exactly one
    /// solution, hopeless for random search.
    fn needle() -> Function {
        let mut fb = FunctionBuilder::new("needle", 8);
        let a = fb.param("a", 16);
        let x = fb.local("x", 16);
        fb.assign(
            x,
            Expr::add(
                Expr::mul(Expr::var(a), Expr::constant(3, 16)),
                Expr::constant(7, 16),
            ),
        );
        fb.if_else(
            Expr::eq(Expr::var(x), Expr::constant(0x1234, 16)),
            |t| t.ret(Expr::constant(1, 8)),
            |e| e.ret(Expr::constant(0, 8)),
        );
        fb.build()
    }

    #[test]
    fn sat_finds_the_needle_branch() {
        let f = needle();
        // cond_id 0 is the (only) if condition; direction true.
        let v = sat_branch_tpg(&f, cond_of(&f, 0), true)
            .expect("synthesizable")
            .expect("reachable");
        // The vector genuinely drives the branch.
        let out = Interpreter::new(&f).run(&v).unwrap();
        assert_eq!(out.return_value, Some(1));
    }

    #[test]
    fn dead_branch_is_proven_unreachable() {
        // if (a & 1) == 2 — impossible for a 1-bit result… build an
        // genuinely dead condition: x = a & 0; if x == 1 {…}.
        let mut fb = FunctionBuilder::new("dead", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.assign(x, Expr::and(Expr::var(a), Expr::constant(0, 8)));
        fb.if_else(
            Expr::eq(Expr::var(x), Expr::constant(1, 8)),
            |t| t.ret(Expr::constant(1, 8)),
            |e| e.ret(Expr::constant(0, 8)),
        );
        let f = fb.build();
        let res = sat_branch_tpg(&f, cond_of(&f, 0), true).expect("synthesizable");
        assert_eq!(res, None, "branch must be proven dead");
        // The false direction is reachable.
        assert!(sat_branch_tpg(&f, cond_of(&f, 0), false).unwrap().is_some());
    }

    #[test]
    fn fault_tpg_finds_test_vector() {
        let mut fb = FunctionBuilder::new("inc", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.assign(x, Expr::add(Expr::var(a), Expr::constant(1, 8)));
        fb.ret(Expr::var(x));
        let f = fb.build();
        let x_id = f.var_by_name("x").unwrap();
        let fault = BitFault {
            var: x_id,
            bit: 0,
            stuck_at: false,
        };
        let v = sat_fault_tpg(&f, fault)
            .expect("synthesizable")
            .expect("testable");
        // Verify by fault simulation.
        let good = Interpreter::new(&f).run(&v).unwrap().return_value;
        let bad = Interpreter::new(&f)
            .with_fault(fault)
            .run(&v)
            .unwrap()
            .return_value;
        assert_ne!(good, bad);
    }

    #[test]
    fn untestable_fault_is_proven() {
        // x is assigned but never observed: faults on it are untestable.
        let mut fb = FunctionBuilder::new("deadvar", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.assign(x, Expr::var(a));
        fb.ret(Expr::var(a));
        let f = fb.build();
        let x_id = f.var_by_name("x").unwrap();
        let res = sat_fault_tpg(
            &f,
            BitFault {
                var: x_id,
                bit: 3,
                stuck_at: true,
            },
        )
        .expect("synthesizable");
        assert_eq!(res, None);
    }

    #[test]
    fn complete_with_sat_reaches_full_branch_coverage() {
        let f = needle();
        let tb = Testbench {
            vectors: vec![vec![0], vec![1]], // random-ish: misses the needle
        };
        let before = metrics::evaluate(&f, &tb.vectors).report();
        assert!(before.branch_pct() < 100.0);
        let (completed, unreachable) = complete_with_sat(&f, &tb).expect("works");
        assert_eq!(unreachable, 0);
        let after = metrics::evaluate(&f, &completed.vectors).report();
        assert_eq!(after.branch_pct(), 100.0);
    }

    #[test]
    fn complete_faults_reaches_full_testable_bit_coverage() {
        let f = needle();
        // Start from a weak testbench.
        let tb = Testbench {
            vectors: vec![vec![0]],
        };
        let before = metrics::bit_coverage(&f, &tb);
        assert!(before.detected < before.total);
        let (completed, untestable) = complete_faults_with_sat(&f, &tb).expect("works");
        let after = metrics::bit_coverage(&f, &completed);
        assert_eq!(
            after.detected as u32 + untestable,
            after.total as u32,
            "every fault either detected or proven untestable: {after:?}"
        );
        assert!(after.detected > before.detected);
    }

    #[test]
    fn parallel_completion_is_bit_identical() {
        let f = needle();
        let tb = Testbench {
            vectors: vec![vec![0]],
        };
        let branch_ref = complete_with_sat(&f, &tb).expect("works");
        let fault_ref = complete_faults_with_sat(&f, &tb).expect("works");
        for workers in [2, 8] {
            let mode = exec::ExecMode::Parallel { workers };
            let branches = complete_with_sat_mode(&f, &tb, mode).expect("works");
            assert_eq!(branches.0.vectors, branch_ref.0.vectors);
            assert_eq!(branches.1, branch_ref.1);
            let faults = complete_faults_with_sat_mode(&f, &tb, mode).expect("works");
            assert_eq!(faults.0.vectors, fault_ref.0.vectors);
            assert_eq!(faults.1, fault_ref.1);
        }
    }

    #[test]
    fn cached_tpg_replays_vectors_and_proofs() {
        let f = needle();
        let cache = cache::ObligationCache::new();
        let target = cond_of(&f, 0);
        let cold = sat_branch_tpg_cached(&f, target, true, &cache).expect("synthesizable");
        assert!(cold.is_some());
        let warm = sat_branch_tpg_cached(&f, target, true, &cache).expect("synthesizable");
        assert_eq!(warm, cold);
        assert_eq!(cache.stats().hits, 1);

        // Untestable-fault proofs cache too (`none` payload).
        let mut fb = FunctionBuilder::new("deadvar", 8);
        let a = fb.param("a", 8);
        let x = fb.local("x", 8);
        fb.assign(x, Expr::var(a));
        fb.ret(Expr::var(a));
        let g = fb.build();
        let fault = BitFault {
            var: g.var_by_name("x").unwrap(),
            bit: 3,
            stuck_at: true,
        };
        assert_eq!(sat_fault_tpg_cached(&g, fault, &cache).unwrap(), None);
        assert_eq!(sat_fault_tpg_cached(&g, fault, &cache).unwrap(), None);
        assert_eq!(cache.stats().hits, 2);

        // A cached run equals the uncached reference wholesale.
        let tb = Testbench {
            vectors: vec![vec![0]],
        };
        let reference = complete_faults_with_sat(&f, &tb).expect("works");
        let cached = complete_faults_with_sat_cached(&f, &tb, exec::ExecMode::Sequential, &cache)
            .expect("works");
        assert_eq!(cached.0.vectors, reference.0.vectors);
        assert_eq!(cached.1, reference.1);
    }

    #[test]
    fn model_payloads_round_trip() {
        for model in [None, Some(vec![]), Some(vec![0]), Some(vec![3, u64::MAX])] {
            let encoded = encode_model(model.as_deref());
            assert_eq!(decode_model(&encoded), Some(model));
        }
        assert_eq!(decode_model("m:x"), None);
        assert_eq!(decode_model(""), None);
    }

    /// Helper: the `i`-th condition id of a function.
    fn cond_of(func: &Function, i: usize) -> CondId {
        let mut ids = Vec::new();
        func.visit_stmts(&mut |s| match s {
            Stmt::If { cond_id, .. } | Stmt::While { cond_id, .. } => ids.push(*cond_id),
            _ => {}
        });
        ids[i]
    }
}
