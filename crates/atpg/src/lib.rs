//! Automatic test pattern generation — the Laerte++ analog.
//!
//! Level 1 of the Symbad flow verifies the functional model with a
//! SystemC-based ATPG (Laerte++, reference \[5\]) that combines
//! "simulation-based techniques (e.g., genetic algorithms) and formal-based
//! ones (e.g., SAT-solvers)" and measures coverage with "standard metrics
//! (statement, condition and branch coverage) and … the more accurate
//! bit-coverage metric exploiting high-level faults". This crate
//! re-implements that stack over the `behav` IR:
//!
//! * [`metrics`] — testbench evaluation: statement/branch/condition
//!   coverage plus the bit-coverage fault simulation, and the
//!   memory-inspection report that exposed the case study's
//!   memory-initialization bugs,
//! * [`tpg`] — simulation-based engines: greedy random TPG and a genetic
//!   algorithm over testbenches,
//! * [`formal`] — SAT-based engines targeting individual uncovered
//!   branches (reachability probes) and undetected bit faults (behavioural
//!   fault-injection miters), via `hdl` synthesis and the `sat` solver.
//!
//! # Example
//!
//! ```
//! use behav::{Expr, FunctionBuilder};
//! use atpg::{metrics, tpg};
//!
//! let mut fb = FunctionBuilder::new("f", 8);
//! let a = fb.param("a", 8);
//! fb.if_else(
//!     Expr::lt(Expr::var(a), Expr::constant(7, 8)),
//!     |t| t.ret(Expr::constant(1, 8)),
//!     |e| e.ret(Expr::constant(0, 8)),
//! );
//! let f = fb.build();
//! let tb = tpg::random_tpg(&f, &tpg::RandomConfig { rounds: 50, seed: 1 });
//! let report = metrics::evaluate(&f, &tb.vectors).report();
//! assert_eq!(report.branch_pct(), 100.0);
//! ```

pub mod formal;
pub mod metrics;
pub mod tpg;

/// A testbench: a list of input vectors for one behavioural function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Testbench {
    /// Input vectors, one `Vec<u64>` per run (one entry per parameter).
    pub vectors: Vec<Vec<u64>>,
}

impl Testbench {
    /// Creates an empty testbench.
    pub fn new() -> Self {
        Testbench::default()
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the testbench is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}
