//! Portfolio solving: one CNF, divergently configured solvers, first
//! verdict wins.
//!
//! SAT/UNSAT for a fixed CNF is objective — every correctly configured
//! solver that finishes returns the same verdict — so racing diversified
//! solvers and cancelling the losers preserves bit-identical *verdicts*
//! while letting the luckiest configuration set the pace. Two caveats
//! keep the flow deterministic:
//!
//! * **Models are not part of the contract.** A SAT winner's model
//!   depends on which configuration finished first, which is wall-clock
//!   nondeterministic. Flow code only uses the portfolio where the
//!   *verdict alone* feeds the report (e.g. equivalence miters, which
//!   prove UNSAT); obligations whose models escape as counterexamples
//!   or test vectors run a single canonical solver instead.
//! * **Portfolio solvers are uninstrumented.** Which contestant's
//!   conflicts would be counted depends on the race outcome, so the
//!   contestants emit nothing; callers record deterministic facts only
//!   (how many races ran, their verdicts).

use crate::share::{self, ShareConfig, ShareStats};
use crate::solver::{Cnf, SolveResult, Solver};
use crate::types::Lit;
use exec::ExecMode;

/// One diversified solver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Saved-phase default for fresh variables.
    pub polarity: bool,
    /// Luby restart multiplier (conflicts before first restart).
    pub restart_scale: u64,
    /// Random-branching seed (0 = pure VSIDS, the canonical setting).
    pub seed: u64,
}

impl PortfolioConfig {
    /// The canonical configuration — identical to a plain [`Solver::new`],
    /// and the only contestant that runs in sequential mode.
    pub fn canonical() -> Self {
        PortfolioConfig {
            polarity: false,
            restart_scale: 100,
            seed: 0,
        }
    }

    /// Applies this configuration to a fresh solver (before clauses are
    /// loaded, so the polarity default reaches every variable).
    pub fn apply(&self, solver: &mut Solver) {
        solver.set_default_polarity(self.polarity);
        solver.set_restart_scale(self.restart_scale);
        solver.set_decision_seed(self.seed);
    }
}

/// A diversified portfolio of `n` configurations. Index 0 is always the
/// canonical configuration; later entries vary polarity, restart cadence,
/// and random branching.
pub fn default_configs(n: usize) -> Vec<PortfolioConfig> {
    let diversified = [
        PortfolioConfig::canonical(),
        PortfolioConfig {
            polarity: true,
            restart_scale: 100,
            seed: 0,
        },
        PortfolioConfig {
            polarity: false,
            restart_scale: 32,
            seed: 0x9E3779B97F4A7C15,
        },
        PortfolioConfig {
            polarity: true,
            restart_scale: 400,
            seed: 0xD1B54A32D192ED03,
        },
    ];
    (0..n.max(1))
        .map(|i| {
            let base = diversified[i % diversified.len()];
            PortfolioConfig {
                // Past the fixed table, keep diversifying via the seed.
                seed: base.seed.wrapping_add((i / diversified.len()) as u64),
                ..base
            }
        })
        .collect()
}

/// Outcome of a portfolio race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioOutcome {
    /// The verdict — identical across modes and worker counts.
    pub result: SolveResult,
    /// Which configuration finished first. Diagnostic only: wall-clock
    /// nondeterministic in parallel mode (always 0 sequentially).
    pub winner: usize,
    /// The winner's model when SAT (`model[v]` for variable index `v`).
    /// Diagnostic only in parallel mode — see the module docs.
    pub model: Option<Vec<bool>>,
}

/// Races `mode.workers()` (at most 4) diversified solvers on `cnf`.
/// Sequential mode runs only the canonical configuration, so a
/// sequential portfolio call is exactly one plain solver run.
pub fn solve_portfolio(cnf: &Cnf, mode: ExecMode) -> PortfolioOutcome {
    let configs = default_configs(mode.workers().min(4));
    let (winner, (result, model)) = exec::race(mode, configs, |_, config, cancel| {
        let mut solver = Solver::new();
        config.apply(&mut solver);
        cnf.load_into(&mut solver);
        let verdict = solver.solve_cancellable(&[], cancel.flag())?;
        let model = verdict.is_sat().then(|| {
            (0..cnf.num_vars)
                .map(|i| solver.value(crate::Var(i as u32)) == Some(true))
                .collect()
        });
        Some((verdict, model))
    })
    .expect("at least the canonical contestant finishes");
    PortfolioOutcome {
        result,
        winner,
        model,
    }
}

/// Outcome of a cooperative portfolio run (see
/// [`solve_portfolio_cooperative`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CooperativeOutcome {
    /// The race outcome; the verdict is identical across modes and
    /// worker counts, exactly as for [`solve_portfolio`].
    pub outcome: PortfolioOutcome,
    /// The winner's exported clauses (sorted-literal canonical form),
    /// destined for the cross-obligation lemma pool. In sequential mode
    /// this is the canonical solver's deterministic export set; in
    /// parallel mode it depends on which contestant won — the pool is
    /// effort-advisory, so that is acceptable.
    pub pool_exports: Vec<Vec<Lit>>,
    /// The winner's sharing traffic counters.
    pub stats: ShareStats,
    /// How many seed clauses the winner integrated before searching.
    pub seeds_imported: u64,
}

/// Like [`solve_portfolio`], but the contestants *cooperate*: each
/// solver exports its short/low-glue learnt clauses through bounded
/// lock-free mailboxes to every peer and imports the peers' exports at
/// decision level 0 (solve entry and restarts). `seeds` — typically
/// lemma-pool entries keyed by this CNF's fingerprint — are imported
/// into every contestant before its search starts.
///
/// Sharing changes *effort*, never *answers*: every import is entailed
/// by `cnf` (peer learnt clauses are resolvents of it; seeds are keyed
/// by its canonical fingerprint), so the verdict stays identical to the
/// racing portfolio's. Sequential mode runs only the canonical
/// contestant, whose inboxes stay empty — a sequential cooperative call
/// is exactly one plain solver run plus the seed imports.
pub fn solve_portfolio_cooperative(
    cnf: &Cnf,
    mode: ExecMode,
    config: &ShareConfig,
    seeds: &[Vec<Lit>],
) -> CooperativeOutcome {
    let configs = default_configs(mode.workers().min(4));
    let handles = share::build_group(configs.len(), config);
    let contestants: Vec<(PortfolioConfig, share::SolverShare)> =
        configs.into_iter().zip(handles).collect();
    let (winner, (result, model, pool_exports, stats, seeds_imported)) =
        exec::race(mode, contestants, |_, (config, handle), cancel| {
            let mut solver = Solver::new();
            config.apply(&mut solver);
            cnf.load_into(&mut solver);
            solver.set_share(handle);
            let mut seeds_imported = 0u64;
            for seed in seeds {
                if solver.import_clause(seed) != crate::share::ImportResult::Redundant {
                    seeds_imported += 1;
                }
            }
            let verdict = solver.solve_cancellable(&[], cancel.flag())?;
            let model = verdict.is_sat().then(|| {
                (0..cnf.num_vars)
                    .map(|i| solver.value(crate::Var(i as u32)) == Some(true))
                    .collect::<Vec<bool>>()
            });
            let share = solver.take_share().expect("share endpoint attached above");
            let stats = share.stats();
            Some((
                verdict,
                model,
                share.into_pool_exports(),
                stats,
                seeds_imported,
            ))
        })
        .expect("at least the canonical contestant finishes");
    CooperativeOutcome {
        outcome: PortfolioOutcome {
            result,
            winner,
            model,
        },
        pool_exports,
        stats,
        seeds_imported,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lit;

    fn php_cnf(pigeons: usize, holes: usize) -> Cnf {
        let mut s = Solver::new();
        let x: Vec<Vec<crate::Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &x {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for h in 0..holes {
            for (p1, row1) in x.iter().enumerate() {
                for row2 in x.iter().skip(p1 + 1) {
                    s.add_clause([Lit::neg(row1[h]), Lit::neg(row2[h])]);
                }
            }
        }
        s.export_cnf()
    }

    #[test]
    fn canonical_config_heads_every_portfolio() {
        for n in [1, 2, 4, 9] {
            let configs = default_configs(n);
            assert_eq!(configs.len(), n);
            assert_eq!(configs[0], PortfolioConfig::canonical());
        }
        // Configs past the table differ from their base via the seed.
        let many = default_configs(8);
        assert_ne!(many[4], many[0]);
    }

    #[test]
    fn portfolio_verdict_is_mode_independent() {
        let unsat = php_cnf(5, 4);
        let sat = php_cnf(4, 4);
        for mode in [
            ExecMode::Sequential,
            ExecMode::Parallel { workers: 2 },
            ExecMode::Parallel { workers: 8 },
        ] {
            assert!(solve_portfolio(&unsat, mode).result.is_unsat());
            let outcome = solve_portfolio(&sat, mode);
            assert!(outcome.result.is_sat());
            // Whatever configuration won, its model satisfies the CNF.
            let model = outcome.model.expect("sat outcome carries a model");
            for clause in &sat.clauses {
                assert!(clause
                    .iter()
                    .any(|l| model[l.var().index()] == l.is_positive()));
            }
        }
    }

    #[cfg(not(feature = "share-mutant"))]
    #[test]
    fn cooperative_verdict_matches_racing_portfolio() {
        let unsat = php_cnf(5, 4);
        let sat = php_cnf(4, 4);
        let share_config = ShareConfig::default();
        for mode in [
            ExecMode::Sequential,
            ExecMode::Parallel { workers: 2 },
            ExecMode::Parallel { workers: 8 },
        ] {
            let coop = solve_portfolio_cooperative(&unsat, mode, &share_config, &[]);
            assert_eq!(coop.outcome.result, solve_portfolio(&unsat, mode).result);
            let coop = solve_portfolio_cooperative(&sat, mode, &share_config, &[]);
            assert!(coop.outcome.result.is_sat());
            let model = coop.outcome.model.expect("sat outcome carries a model");
            for clause in &sat.clauses {
                assert!(clause
                    .iter()
                    .any(|l| model[l.var().index()] == l.is_positive()));
            }
        }
    }

    #[cfg(not(feature = "share-mutant"))]
    #[test]
    fn cooperative_seeds_do_not_change_the_verdict() {
        // Seed the second run with the first run's exports — the
        // lemma-pool pattern — and check the verdict is unchanged.
        let cnf = php_cnf(5, 4);
        let share_config = ShareConfig {
            filter: share::ShareFilter::permissive(16),
            ..ShareConfig::default()
        };
        let cold = solve_portfolio_cooperative(&cnf, ExecMode::Sequential, &share_config, &[]);
        assert!(cold.outcome.result.is_unsat());
        assert!(
            !cold.pool_exports.is_empty(),
            "PHP(5,4) must learn exportable clauses"
        );
        let warm = solve_portfolio_cooperative(
            &cnf,
            ExecMode::Sequential,
            &share_config,
            &cold.pool_exports,
        );
        assert!(warm.outcome.result.is_unsat());
        assert!(warm.seeds_imported > 0);
    }

    #[test]
    fn sequential_cooperative_run_is_deterministic() {
        let cnf = php_cnf(5, 4);
        let share_config = ShareConfig::default();
        let a = solve_portfolio_cooperative(&cnf, ExecMode::Sequential, &share_config, &[]);
        let b = solve_portfolio_cooperative(&cnf, ExecMode::Sequential, &share_config, &[]);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.pool_exports, b.pool_exports);
        assert_eq!(a.stats, b.stats);
    }
}
