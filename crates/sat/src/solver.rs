//! The CDCL solver core.
#![allow(clippy::needless_range_loop)]

use crate::share::{ImportResult, SolverShare};
use crate::types::{Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (query it via [`Solver::value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

impl SolveResult {
    /// Whether the result is [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        matches!(self, SolveResult::Sat)
    }

    /// Whether the result is [`SolveResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        matches!(self, SolveResult::Unsat)
    }
}

/// Outcome of a [`Solver::solve_budgeted`] call: either a definite
/// verdict, or a deterministic report that the effort budget ran out
/// before one was reached. Exhaustion is *not* a solver failure — the
/// solver rests at decision level 0, keeps everything it learnt, and a
/// later call (budgeted or not) picks up from there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetedResult {
    /// The search concluded within budget.
    Decided(SolveResult),
    /// A conflict/decision cap was hit first. The caller maps this to an
    /// `Unknown(BudgetExhausted)` verdict, never to Sat/Unsat.
    Exhausted,
}

impl BudgetedResult {
    /// Whether the budget ran out before a verdict.
    pub fn is_exhausted(self) -> bool {
        matches!(self, BudgetedResult::Exhausted)
    }

    /// The verdict, when one was reached.
    pub fn decided(self) -> Option<SolveResult> {
        match self {
            BudgetedResult::Decided(r) => Some(r),
            BudgetedResult::Exhausted => None,
        }
    }
}

/// Period of the test-only `panic-mutant` fault: the solver panics on
/// every propagation whose ordinal is a multiple of this. Chosen so the
/// flow's small obligations finish untouched while substantial ones trip
/// it — giving the supervision tests both healthy and faulted outcomes
/// in one run.
#[cfg(feature = "panic-mutant")]
const PANIC_MUTANT_PERIOD: u64 = 256;

const UNASSIGNED: u8 = 2;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: usize,
    blocker: Lit,
}

/// Activity-ordered variable heap (MiniSat-style).
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<Var>,
    position: Vec<Option<usize>>,
}

impl VarOrder {
    fn grow(&mut self, n: usize) {
        while self.position.len() < n {
            self.position.push(None);
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.position[v.index()].is_some()
    }

    fn push(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.position[v.index()] = Some(self.heap.len());
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.position[top.index()] = None;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index()] = Some(0);
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bump(&mut self, v: Var, act: &[f64]) {
        if let Some(pos) = self.position[v.index()] {
            self.sift_up(pos, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a].index()] = Some(a);
        self.position[self.heap[b].index()] = Some(b);
    }
}

/// A conflict-driven clause-learning SAT solver.
///
/// Supports incremental use: clauses persist across [`solve`](Solver::solve)
/// calls, and [`solve_with`](Solver::solve_with) solves under temporary
/// assumptions.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<u8>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    queue_head: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    polarity: Vec<bool>,
    unsat: bool,
    model: Vec<u8>,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    /// Learnt-clause count, maintained incrementally on attach (there is
    /// no clause-deletion path) so telemetry reads are O(1) instead of a
    /// full clause-database scan.
    num_learnt: usize,
    /// Saved-phase default for freshly allocated variables (portfolio
    /// diversification knob; `false` is the canonical configuration).
    default_polarity: bool,
    /// Luby restart multiplier (conflicts before restart = scale × luby).
    restart_scale: u64,
    /// Xorshift state for occasional random decisions; 0 disables them
    /// (the canonical configuration).
    rng: u64,
    /// Optional telemetry sink; `None` (the default) keeps the search loop
    /// free of any instrumentation cost.
    instrument: Option<telemetry::SharedInstrument>,
    /// Counter values already flushed to the instrument, so incremental
    /// solve calls emit per-call deltas.
    flushed: (u64, u64, u64),
    /// Solve calls flushed so far (the gauge axis for per-call series).
    flush_calls: u64,
    /// Absolute counter ceilings for the budgeted call in flight
    /// ([`Solver::solve_budgeted`]); `None` outside budgeted calls, so
    /// the plain entry points pay one branch per search iteration and
    /// behave exactly as before.
    budget_conflicts: Option<u64>,
    /// See [`Solver::budget_conflicts`](struct field above).
    budget_decisions: Option<u64>,
    /// Optional clause-sharing endpoint (portfolio cooperation and/or
    /// lemma-pool collection). `None` — the default — keeps every
    /// non-sharing path behaviourally identical to the pre-sharing
    /// solver: no glue computation, no clause clones, no import drains.
    share: Option<SolverShare>,
    /// Unit propagations seen by the test-only `mutant` feature, which
    /// silently drops every third one to prove the fuzzer's differential
    /// oracles catch an injected solver bug.
    #[cfg(feature = "mutant")]
    mutant_units: u64,
    /// Budgeted solve calls seen by the test-only `diverge-mutant`
    /// feature, which makes every second one burn its whole budget.
    #[cfg(feature = "diverge-mutant")]
    diverge_calls: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            queue_head: 0,
            activity: Vec::new(),
            // Historical quirk kept for reproducibility: default-constructed
            // solvers (e.g. inside `CnfBuilder::default`) bump activities by
            // 0, so their decision order is allocation order. `Solver::new`
            // enables real VSIDS via `var_inc = 1.0`.
            var_inc: 0.0,
            order: VarOrder::default(),
            polarity: Vec::new(),
            unsat: false,
            model: Vec::new(),
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            num_learnt: 0,
            default_polarity: false,
            restart_scale: 100,
            rng: 0,
            instrument: None,
            flushed: (0, 0, 0),
            flush_calls: 0,
            budget_conflicts: None,
            budget_decisions: None,
            share: None,
            #[cfg(feature = "mutant")]
            mutant_units: 0,
            #[cfg(feature = "diverge-mutant")]
            diverge_calls: 0,
        }
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Sets the saved-phase default for variables allocated *after* this
    /// call (portfolio diversification; canonical default is `false`).
    pub fn set_default_polarity(&mut self, polarity: bool) {
        self.default_polarity = polarity;
    }

    /// Sets the Luby restart multiplier (default 100 conflicts).
    pub fn set_restart_scale(&mut self, scale: u64) {
        self.restart_scale = scale.max(1);
    }

    /// Enables occasional pseudo-random branching seeded with `seed`
    /// (`0` disables it — the canonical configuration). Diversifies a
    /// portfolio; any seed still yields a deterministic solver.
    pub fn set_decision_seed(&mut self, seed: u64) {
        self.rng = seed;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.polarity.push(self.default_polarity);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow(self.assign.len());
        self.order.push(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of stored clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of learnt (conflict-derived) clauses currently stored.
    /// O(1): maintained incrementally by the attach path, not recomputed
    /// by scanning the clause database.
    pub fn num_learnt(&self) -> usize {
        self.num_learnt
    }

    /// Conflicts encountered so far (across all solve calls).
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Decisions made so far (across all solve calls).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Unit propagations performed so far (across all solve calls).
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Attaches a telemetry instrument. After every [`Solver::solve_with`]
    /// the solver emits decision/conflict/propagation counter deltas and a
    /// conflicts-per-call histogram sample.
    pub fn set_instrument(&mut self, instrument: telemetry::SharedInstrument) {
        self.instrument = Some(instrument);
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> u8 {
        let a = self.assign[l.var().index()];
        if a == UNASSIGNED {
            UNASSIGNED
        } else {
            a ^ (l.code() as u8 & 1)
        }
    }

    /// Adds a clause. Returns `false` when the clause (after level-0
    /// simplification) makes the formula trivially unsatisfiable.
    ///
    /// Must be called at decision level 0 (i.e. not between `solve` steps of
    /// a single search; between whole `solve` calls is fine).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        debug_assert!(self.trail_lim.is_empty());
        if self.unsat {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        // Tautology / falsified-literal simplification at level 0.
        let mut simplified = Vec::with_capacity(lits.len());
        let mut i = 0;
        while i < lits.len() {
            let l = lits[i];
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautology: l and ¬l adjacent after sort
            }
            match self.lit_value(l) {
                1 => return true,        // already satisfied at level 0
                0 => {}                  // falsified at level 0: drop it
                _ => simplified.push(l), // unassigned: keep
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                if !self.enqueue(simplified[0], None) {
                    self.unsat = true;
                    return false;
                }
                if self.propagate().is_some() {
                    self.unsat = true;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    /// Attaches a clause-sharing endpoint (see [`crate::share`]). The
    /// solver then exports learnt clauses that pass the endpoint's
    /// length/glue filter and drains the endpoint's inboxes at solve
    /// entry and on every restart — always at decision level 0, so CDCL
    /// invariants hold.
    pub fn set_share(&mut self, share: SolverShare) {
        self.share = Some(share);
    }

    /// Detaches and returns the sharing endpoint (with its pool-bound
    /// exports and traffic stats), if one was attached.
    pub fn take_share(&mut self) -> Option<SolverShare> {
        self.share.take()
    }

    /// Integrates one *entailed* foreign clause — a peer's learnt clause
    /// over the same CNF, or a lemma-pool entry keyed by this CNF's
    /// canonical fingerprint — at decision level 0. The clause attaches
    /// as a learnt clause, so [`Solver::export_cnf`] keeps reporting the
    /// original problem. Clauses referencing unallocated variables are
    /// rejected as [`ImportResult::Redundant`] (the defensive stance for
    /// pool entries read back from disk). An imported *unit* lands on
    /// the level-0 trail and therefore shows up in later `export_cnf`
    /// snapshots; the snapshot stays equisatisfiable because imports are
    /// entailed.
    ///
    /// Returning [`ImportResult::Conflict`] means the formula is now
    /// unsatisfiable at level 0 — a real verdict, not a failure, again
    /// because imports are entailed.
    pub fn import_clause(&mut self, lits: &[Lit]) -> ImportResult {
        debug_assert!(self.trail_lim.is_empty());
        if self.unsat {
            return ImportResult::Conflict;
        }
        if lits.iter().any(|l| l.var().index() >= self.num_vars()) {
            return ImportResult::Redundant;
        }
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort_unstable();
        lits.dedup();
        let mut simplified = Vec::with_capacity(lits.len());
        let mut i = 0;
        while i < lits.len() {
            let l = lits[i];
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return ImportResult::Redundant; // tautology
            }
            match self.lit_value(l) {
                1 => return ImportResult::Redundant, // satisfied at level 0
                0 => {}                              // falsified at level 0: drop
                _ => simplified.push(l),
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.unsat = true;
                ImportResult::Conflict
            }
            1 => {
                if !self.enqueue(simplified[0], None) || self.propagate().is_some() {
                    self.unsat = true;
                    ImportResult::Conflict
                } else {
                    ImportResult::Added
                }
            }
            _ => {
                self.attach_clause(simplified, true);
                ImportResult::Added
            }
        }
    }

    /// Drains the share endpoint's inboxes (bounded by its import
    /// budget) and integrates each clause. Returns `false` when an
    /// import closed the formula — a sound Unsat verdict. Must be called
    /// at decision level 0.
    fn drain_shared_imports(&mut self) -> bool {
        if self.share.is_none() {
            return true;
        }
        let imports = self
            .share
            .as_mut()
            .map(|s| s.take_imports())
            .unwrap_or_default();
        for clause in imports {
            let result = self.import_clause(&clause);
            if let Some(share) = self.share.as_mut() {
                share.note_import(result);
            }
            if result == ImportResult::Conflict {
                return false;
            }
        }
        true
    }

    /// Glue (LBD) of a just-learnt clause: the number of distinct
    /// decision levels among its literals. Only meaningful between
    /// [`Solver::analyze`] and the subsequent backjump, while the learnt
    /// literals still hold their conflict-time levels.
    fn clause_glue(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// The `k` unassigned variables with the highest VSIDS activity
    /// (ties broken by variable index) — the deterministic split set for
    /// cube-and-conquer after a budgeted solve exhausted. Call at
    /// decision level 0.
    pub fn top_activity_vars(&self, k: usize) -> Vec<Var> {
        let mut vars: Vec<usize> = (0..self.num_vars())
            .filter(|&i| self.assign[i] == UNASSIGNED)
            .collect();
        vars.sort_by(|&a, &b| {
            self.activity[b]
                .partial_cmp(&self.activity[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        vars.truncate(k);
        vars.into_iter().map(|i| Var(i as u32)).collect()
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> usize {
        let idx = self.clauses.len();
        let w0 = lits[0];
        let w1 = lits[1];
        self.watches[(!w0).code()].push(Watch {
            clause: idx,
            blocker: w1,
        });
        self.watches[(!w1).code()].push(Watch {
            clause: idx,
            blocker: w0,
        });
        self.num_learnt += learnt as usize;
        self.clauses.push(Clause { lits, learnt });
        idx
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) -> bool {
        match self.lit_value(l) {
            0 => false,
            1 => true,
            _ => {
                let v = l.var().index();
                self.assign[v] = if l.is_positive() { 1 } else { 0 };
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Propagates until fixpoint; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.queue_head < self.trail.len() {
            let p = self.trail[self.queue_head];
            self.queue_head += 1;
            self.propagations += 1;
            #[cfg(feature = "panic-mutant")]
            {
                // Injected fault: a deterministic panic every
                // PANIC_MUTANT_PERIOD-th propagation of this solver
                // instance. Small queries finish below the threshold;
                // substantial obligations trip it, which is exactly the
                // detection-power fixture the supervision layer's tests
                // and the `supervision-smoke` CI job need. The message
                // carries the "injected panic" marker recognised by
                // `exec::silence_injected_panics`.
                if self.propagations.is_multiple_of(PANIC_MUTANT_PERIOD) {
                    panic!(
                        "panic-mutant: injected panic at propagation {}",
                        self.propagations
                    );
                }
            }
            let mut watch_list = std::mem::take(&mut self.watches[p.code()]);
            let mut keep = 0;
            let mut conflict = None;
            let mut wi = 0;
            while wi < watch_list.len() {
                let watch = watch_list[wi];
                wi += 1;
                if self.lit_value(watch.blocker) == 1 {
                    watch_list[keep] = watch;
                    keep += 1;
                    continue;
                }
                let ci = watch.clause;
                // Ensure lits[0] is the other watched literal.
                {
                    let clause = &mut self.clauses[ci];
                    if clause.lits[0] == !p {
                        clause.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci].lits[0];
                if first != watch.blocker && self.lit_value(first) == 1 {
                    watch_list[keep] = Watch {
                        clause: ci,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                let len = self.clauses[ci].lits.len();
                for k in 2..len {
                    let cand = self.clauses[ci].lits[k];
                    if self.lit_value(cand) != 0 {
                        self.clauses[ci].lits.swap(1, k);
                        let new_watch = self.clauses[ci].lits[1];
                        self.watches[(!new_watch).code()].push(Watch {
                            clause: ci,
                            blocker: first,
                        });
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                watch_list[keep] = Watch {
                    clause: ci,
                    blocker: first,
                };
                keep += 1;
                #[cfg(feature = "mutant")]
                {
                    // Injected bug: every third unit implication is
                    // silently dropped, so "SAT" models can violate a
                    // clause. The fuzz crate's model validation must
                    // catch this (see `fuzz/tests/mutant_detection.rs`).
                    self.mutant_units += 1;
                    if self.mutant_units % 3 == 0 {
                        continue;
                    }
                }
                if !self.enqueue(first, Some(ci)) {
                    // Conflict: keep the remaining watches and bail out.
                    while wi < watch_list.len() {
                        watch_list[keep] = watch_list[wi];
                        keep += 1;
                        wi += 1;
                    }
                    self.queue_head = self.trail.len();
                    conflict = Some(ci);
                }
            }
            watch_list.truncate(keep);
            self.watches[p.code()] = watch_list;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bump(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backtrack level).
    fn analyze(&mut self, mut conflict: usize) -> (Vec<Lit>, u32) {
        let mut seen = vec![false; self.num_vars()];
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder for asserting lit
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current_level = self.trail_lim.len() as u32;

        loop {
            let start = if p.is_none() { 0 } else { 1 };
            let lits: Vec<Lit> = self.clauses[conflict].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find next literal to resolve on.
            loop {
                index -= 1;
                let l = self.trail[index];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found").var();
            seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("found");
                break;
            }
            conflict = self.reason[pv.index()].expect("non-decision has reason");
        }

        // Backtrack level: second-highest decision level in the clause.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt_level)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("non-empty");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty");
                let v = l.var();
                self.polarity[v.index()] = l.is_positive();
                self.assign[v.index()] = UNASSIGNED;
                self.reason[v.index()] = None;
                self.order.push(v, &self.activity);
            }
        }
        // Never advance past unpropagated literals: when the solver is
        // already at (or below) `level` — e.g. a restart right after a
        // backjump to level 0 enqueued an asserting unit — the pending
        // tail of the trail must still be propagated, not skipped.
        self.queue_head = self.queue_head.min(self.trail.len());
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v.index()] == UNASSIGNED {
                return Some(v);
            }
        }
        None
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_under_assumptions(&[])
    }

    /// Solves under temporary `assumptions` — literals forced true for
    /// this call only, retracted afterwards. This is the incremental
    /// entry point: everything the previous calls paid for — learnt
    /// clauses, variable activities, saved phases — is retained, so a
    /// caller that keeps one solver alive (the BMC unroller adding frame
    /// k+1 on top of frame k, or k-induction sharing the transition
    /// relation between base and step cases) re-solves only what the new
    /// clauses add. Keeping learnt clauses across calls is sound because
    /// each one is a resolvent of the *permanent* clause set: assumptions
    /// enter the search as scoped decisions, never as clauses, so no
    /// learnt clause can depend on a retracted assumption.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_inner(assumptions, None)
            .expect("uninterrupted solve always reaches a verdict")
    }

    /// Alias of [`Solver::solve_under_assumptions`] kept for the
    /// workspace's historical call sites.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_under_assumptions(assumptions)
    }

    /// Like [`Solver::solve_with`], but abandons the search (returning
    /// `None`) once `interrupt` becomes true — the cancellation hook for
    /// portfolio races. The solver is left at decision level 0 and stays
    /// usable; no telemetry is flushed for an abandoned call.
    pub fn solve_cancellable(
        &mut self,
        assumptions: &[Lit],
        interrupt: &AtomicBool,
    ) -> Option<SolveResult> {
        self.solve_inner(assumptions, Some(interrupt))
    }

    /// Like [`Solver::solve_with`], but gives up deterministically once
    /// the search has spent `effort`'s conflict or decision allowance
    /// (measured from this call's starting counters, so budgets compose
    /// across incremental calls). An unbounded `effort` is exactly
    /// `solve_with`. Budgets are effort-based, never wall-clock: the same
    /// query with the same budget exhausts at the same point on every
    /// machine and worker count. On exhaustion the solver backtracks to
    /// level 0 and keeps its learnt clauses, so retrying with a larger
    /// budget resumes rather than restarts.
    pub fn solve_budgeted(&mut self, assumptions: &[Lit], effort: &exec::Effort) -> BudgetedResult {
        #[cfg(feature = "diverge-mutant")]
        {
            // Injected fault: every second *budgeted* call on a solver
            // pretends the search diverged, burning the whole allowance
            // without progress. Scoped to budgeted calls so the
            // unsupervised paths (which would hang forever on a real
            // divergence) stay usable for the control half of the tests.
            self.diverge_calls += 1;
            if self.diverge_calls.is_multiple_of(2) && effort.bounds_sat() {
                if let Some(cap) = effort.sat_conflicts {
                    self.conflicts = self.conflicts.saturating_add(cap);
                }
                if let Some(cap) = effort.sat_decisions {
                    self.decisions = self.decisions.saturating_add(cap);
                }
                self.note_budget_exhausted();
                return BudgetedResult::Exhausted;
            }
        }
        self.budget_conflicts = effort
            .sat_conflicts
            .map(|cap| self.conflicts.saturating_add(cap));
        self.budget_decisions = effort
            .sat_decisions
            .map(|cap| self.decisions.saturating_add(cap));
        let result = self.solve_inner(assumptions, None);
        self.budget_conflicts = None;
        self.budget_decisions = None;
        match result {
            Some(r) => BudgetedResult::Decided(r),
            None => {
                self.note_budget_exhausted();
                BudgetedResult::Exhausted
            }
        }
    }

    /// Records one budget exhaustion: bumps `sat.budget_exhausted` and
    /// flushes the effort the abandoned call did spend (which
    /// [`Solver::solve_inner`] skips for verdict-less returns).
    fn note_budget_exhausted(&mut self) {
        if let Some(i) = self.instrument.as_ref().filter(|i| i.enabled()) {
            i.counter_add("sat.budget_exhausted", 1);
        }
        self.flush_telemetry();
    }

    fn solve_inner(
        &mut self,
        assumptions: &[Lit],
        interrupt: Option<&AtomicBool>,
    ) -> Option<SolveResult> {
        if self.unsat {
            self.flush_telemetry();
            return Some(SolveResult::Unsat);
        }
        if self.propagate().is_some() {
            self.unsat = true;
            self.flush_telemetry();
            return Some(SolveResult::Unsat);
        }
        if !self.drain_shared_imports() {
            self.unsat = true;
            self.flush_telemetry();
            return Some(SolveResult::Unsat);
        }
        let result = self.search(assumptions, interrupt);
        if let Some(r) = result {
            if r.is_sat() {
                // Snapshot the model before clearing search state.
                self.model = self.assign.clone();
            }
        }
        // Leave level-0 state only.
        self.backtrack_to(0);
        if result.is_some() {
            self.flush_telemetry();
        }
        result
    }

    /// Emits counter deltas accumulated since the previous flush plus one
    /// conflicts-per-call histogram sample.
    fn flush_telemetry(&mut self) {
        let Some(i) = self.instrument.as_ref().filter(|i| i.enabled()) else {
            return;
        };
        let (dec, con, prop) = self.flushed;
        self.flush_calls += 1;
        i.counter_add("sat.solve_calls", 1);
        // Calls after the first on the same solver reuse its learnt
        // clauses and activities — the incremental-solving payoff.
        if self.flush_calls > 1 {
            i.counter_add("sat.incremental_solve_calls", 1);
        }
        i.counter_add("sat.decisions", self.decisions.saturating_sub(dec));
        i.counter_add("sat.conflicts", self.conflicts.saturating_sub(con));
        i.counter_add("sat.propagations", self.propagations.saturating_sub(prop));
        i.record(
            "sat.conflicts_per_solve",
            self.conflicts.saturating_sub(con),
        );
        // Clause-database growth per call; O(1) thanks to the incremental
        // learnt count (gauge axis = solve-call ordinal).
        i.gauge_set(
            "sat.learnt_clauses",
            self.flush_calls,
            self.num_learnt as i64,
        );
        self.flushed = (self.decisions, self.conflicts, self.propagations);
    }

    fn luby(i: u64) -> u64 {
        // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        let mut k = 1u32;
        loop {
            if i == (1u64 << k) - 1 {
                return 1u64 << (k - 1);
            }
            if i < (1u64 << k) - 1 {
                return Self::luby(i - (1u64 << (k - 1)) + 1);
            }
            k += 1;
        }
    }

    /// Draws the next pseudo-random word (xorshift64; `rng != 0` always).
    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Occasionally (1 in 8 decisions, when seeded) proposes a uniformly
    /// scanned unassigned variable instead of the activity-heap choice.
    fn pick_random_branch(&mut self) -> Option<Var> {
        if self.rng == 0 || self.num_vars() == 0 || !self.next_rand().is_multiple_of(8) {
            return None;
        }
        let n = self.num_vars();
        let start = (self.next_rand() % n as u64) as usize;
        for off in 0..n {
            let i = (start + off) % n;
            if self.assign[i] == UNASSIGNED {
                return Some(Var(i as u32));
            }
        }
        None
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        interrupt: Option<&AtomicBool>,
    ) -> Option<SolveResult> {
        let mut restart_count = 1u64;
        let mut conflict_budget = self.restart_scale * Self::luby(restart_count);
        let mut conflicts_here = 0u64;

        loop {
            if let Some(flag) = interrupt {
                if flag.load(Ordering::Relaxed) {
                    return None;
                }
            }
            // Deterministic effort budget ([`Solver::solve_budgeted`]):
            // abandon the search once either lifetime counter reaches its
            // absolute ceiling. Checked on the same progress axis on every
            // run, so exhaustion is bit-reproducible — unlike wall-clock.
            if self
                .budget_conflicts
                .is_some_and(|cap| self.conflicts >= cap)
                || self
                    .budget_decisions
                    .is_some_and(|cap| self.decisions >= cap)
            {
                return None;
            }
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                conflicts_here += 1;
                // The conflicting clause may be falsified entirely below the
                // current decision level (possible with assumption levels
                // that introduced no assignment). Backtrack to the highest
                // level actually involved so analysis sees a literal at the
                // conflict level.
                let conflict_level = self.clauses[conflict]
                    .lits
                    .iter()
                    .map(|l| self.level[l.var().index()])
                    .max()
                    .unwrap_or(0);
                if conflict_level == 0 {
                    self.unsat = true;
                    return Some(SolveResult::Unsat);
                }
                if conflict_level < self.trail_lim.len() as u32 {
                    self.backtrack_to(conflict_level);
                }
                let (learnt, bt) = self.analyze(conflict);
                // Glue (LBD — distinct decision levels among the learnt
                // literals) must be read *before* backtracking wipes the
                // per-variable levels; the length pre-check keeps the
                // no-sharing path free of the scan.
                let export_glue = match &self.share {
                    Some(share) if share.wants_len(learnt.len()) => Some(self.clause_glue(&learnt)),
                    _ => None,
                };
                self.backtrack_to(bt);
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], None) {
                        self.unsat = true;
                        return Some(SolveResult::Unsat);
                    }
                } else {
                    let ci = self.attach_clause(learnt.clone(), true);
                    if !self.enqueue(learnt[0], Some(ci)) {
                        self.unsat = true;
                        return Some(SolveResult::Unsat);
                    }
                }
                if let Some(glue) = export_glue {
                    if let Some(share) = self.share.as_mut() {
                        share.offer(&learnt, glue);
                    }
                }
                self.decay_activities();
                if conflicts_here >= conflict_budget {
                    // Restart.
                    conflicts_here = 0;
                    restart_count += 1;
                    conflict_budget = self.restart_scale * Self::luby(restart_count);
                    self.backtrack_to(0);
                    // Integrate peer clauses while at decision level 0 —
                    // the only point mid-search where add-clause
                    // invariants hold. A conflicting import is a sound
                    // Unsat verdict (imports are entailed).
                    if !self.drain_shared_imports() {
                        self.unsat = true;
                        return Some(SolveResult::Unsat);
                    }
                }
            } else {
                // Re-apply assumptions that got undone (e.g. by restarts).
                let decision_level = self.trail_lim.len();
                if decision_level < assumptions.len() {
                    let a = assumptions[decision_level];
                    match self.lit_value(a) {
                        1 => {
                            // Already true: open a level anyway to keep the
                            // level/assumption correspondence simple.
                            self.trail_lim.push(self.trail.len());
                        }
                        0 => return Some(SolveResult::Unsat),
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }
                let choice = self.pick_random_branch().or_else(|| self.pick_branch());
                match choice {
                    None => return Some(SolveResult::Sat),
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::with_polarity(v, self.polarity[v.index()]);
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// Value of `var` in the most recent model (complete after a
    /// [`SolveResult::Sat`] answer; variables created later are `None`).
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.model.get(var.index()).copied().unwrap_or(UNASSIGNED) {
            1 => Some(true),
            0 => Some(false),
            _ => None,
        }
    }

    /// Value of a literal in the current assignment.
    pub fn lit_is_true(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| v == lit.is_positive())
    }

    /// Snapshots the *original* problem as a standalone CNF: every
    /// non-learnt clause, plus the level-0 forced literals as unit
    /// clauses (units are enqueued on the trail at add time, never stored
    /// in the clause database), plus the empty clause when the formula is
    /// already known unsatisfiable. Call between solve calls (the solver
    /// rests at decision level 0 then). This is how a portfolio hands the
    /// same problem to independently configured solvers.
    pub fn export_cnf(&self) -> Cnf {
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        if self.unsat {
            clauses.push(Vec::new());
        }
        for &l in &self.trail {
            if self.level[l.var().index()] == 0 {
                clauses.push(vec![l]);
            }
        }
        for c in &self.clauses {
            if !c.learnt {
                clauses.push(c.lits.clone());
            }
        }
        Cnf {
            num_vars: self.num_vars(),
            clauses,
        }
    }
}

/// A standalone CNF snapshot (see [`Solver::export_cnf`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables the clauses range over.
    pub num_vars: usize,
    /// Clauses; an empty inner vector is the empty (unsatisfiable) clause.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads this CNF into a fresh or compatible solver (allocates
    /// variables up to `num_vars` first, preserving variable identity).
    pub fn load_into(&self, solver: &mut Solver) {
        while solver.num_vars() < self.num_vars {
            solver.new_var();
        }
        for clause in &self.clauses {
            solver.add_clause(clause.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn instrument_sees_per_call_deltas() {
        let collector = telemetry::Collector::shared();
        let mut s = Solver::new();
        s.set_instrument(collector.clone());
        let v = vars(&mut s, 3);
        s.add_clause([Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause([Lit::neg(v[0]), Lit::pos(v[2])]);
        assert!(s.solve().is_sat());
        assert!(s.solve_with(&[Lit::neg(v[1])]).is_sat());
        assert_eq!(collector.counter("sat.solve_calls"), 2);
        // Two flushes means two histogram samples, and the counter matches
        // the solver's own running total (deltas, not double-counted sums).
        assert_eq!(collector.histogram("sat.conflicts_per_solve").count(), 2);
        assert_eq!(collector.counter("sat.decisions"), s.decisions());
        assert_eq!(collector.counter("sat.conflicts"), s.conflicts());
        assert_eq!(collector.counter("sat.propagations"), s.propagations());
    }

    #[test]
    fn unit_clauses_force_values() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([Lit::pos(v[0])]);
        s.add_clause([Lit::neg(v[1])]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(false));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        let ok = s.add_clause([Lit::neg(v)]);
        assert!(!ok);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([Lit::pos(v), Lit::neg(v)]));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn three_sat_instance_with_unique_model() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        // Force v0=1, v1=0, v2=1 via implications.
        s.add_clause([Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        s.add_clause([Lit::pos(v[0])]);
        s.add_clause([Lit::neg(v[0]), Lit::neg(v[1])]);
        s.add_clause([Lit::pos(v[1]), Lit::pos(v[2])]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(false));
        assert_eq!(s.value(v[2]), Some(true));
    }

    /// Pigeonhole principle PHP(n+1, n) is unsatisfiable; n=4 forces real
    /// conflict analysis and restarts.
    #[test]
    fn pigeonhole_is_unsat() {
        let pigeons = 5;
        let holes = 4;
        let mut s = Solver::new();
        let mut x = vec![vec![Var(0); holes]; pigeons];
        for p in 0..pigeons {
            for h in 0..holes {
                x[p][h] = s.new_var();
            }
        }
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| Lit::pos(x[p][h])));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([Lit::neg(x[p1][h]), Lit::neg(x[p2][h])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        assert!(s.conflicts() > 0);
    }

    /// Builds the (unsatisfiable) pigeonhole instance PHP(5, 4) — hard
    /// enough that a one-conflict budget cannot finish it. Only used by
    /// the budget tests, which are gated off under `panic-mutant`.
    #[cfg(not(feature = "panic-mutant"))]
    fn pigeonhole_solver() -> Solver {
        let pigeons = 5;
        let holes = 4;
        let mut s = Solver::new();
        let mut x = vec![vec![Var(0); holes]; pigeons];
        for p in 0..pigeons {
            for h in 0..holes {
                x[p][h] = s.new_var();
            }
        }
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| Lit::pos(x[p][h])));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([Lit::neg(x[p1][h]), Lit::neg(x[p2][h])]);
                }
            }
        }
        s
    }

    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    #[test]
    fn unbounded_budget_matches_plain_solve() {
        let mut budgeted = pigeonhole_solver();
        let mut plain = pigeonhole_solver();
        assert_eq!(
            budgeted.solve_budgeted(&[], &exec::Effort::unbounded()),
            BudgetedResult::Decided(plain.solve())
        );
        assert_eq!(budgeted.conflicts(), plain.conflicts());
        assert_eq!(budgeted.decisions(), plain.decisions());
    }

    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    #[test]
    fn tiny_budget_exhausts_deterministically_and_solver_stays_usable() {
        let effort = exec::Effort {
            sat_conflicts: Some(1),
            sat_decisions: None,
            bdd_nodes: None,
        };
        let mut a = pigeonhole_solver();
        let mut b = pigeonhole_solver();
        assert!(a.solve_budgeted(&[], &effort).is_exhausted());
        assert!(b.solve_budgeted(&[], &effort).is_exhausted());
        // Same effort, same query ⇒ exhaustion at the same point.
        assert_eq!(a.conflicts(), b.conflicts());
        assert_eq!(a.decisions(), b.decisions());
        // The solver rests at level 0 and a later unbudgeted call
        // resumes (learnt clauses intact) to the real verdict.
        assert!(a.solve().is_unsat());
    }

    #[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
    #[test]
    fn budget_exhaustion_emits_telemetry_counter() {
        let collector = telemetry::Collector::shared();
        let mut s = pigeonhole_solver();
        s.set_instrument(collector.clone());
        let effort = exec::Effort {
            sat_conflicts: Some(1),
            sat_decisions: None,
            bdd_nodes: None,
        };
        assert!(s.solve_budgeted(&[], &effort).is_exhausted());
        assert_eq!(collector.counter("sat.budget_exhausted"), 1);
        // The abandoned call's effort is still flushed as deltas.
        assert_eq!(collector.counter("sat.solve_calls"), 1);
        assert_eq!(collector.counter("sat.conflicts"), s.conflicts());
    }

    #[cfg(feature = "diverge-mutant")]
    #[test]
    fn diverge_mutant_burns_every_second_budgeted_call() {
        let effort = exec::Effort {
            sat_conflicts: Some(10_000),
            sat_decisions: None,
            bdd_nodes: None,
        };
        let mut s = pigeonhole_solver();
        // Call 1 is honest; PHP(5,4) concludes well within 10k conflicts.
        assert!(!s.solve_budgeted(&[], &effort).is_exhausted());
        // Call 2 diverges and burns the allowance without progress.
        assert!(s.solve_budgeted(&[], &effort).is_exhausted());
        // Unbudgeted and unbounded-budget calls are untouched.
        assert!(s.solve().is_unsat());
        assert!(!s
            .solve_budgeted(&[], &exec::Effort::unbounded())
            .is_exhausted());
    }

    #[test]
    fn satisfiable_graph_coloring() {
        // 3-color a 5-cycle (chromatic number 3 → satisfiable).
        let n = 5;
        let k = 3;
        let mut s = Solver::new();
        let mut c = vec![vec![Var(0); k]; n];
        for (i, row) in c.iter_mut().enumerate() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
                let _ = i;
            }
        }
        for row in &c {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
            for a in 0..k {
                for b in (a + 1)..k {
                    s.add_clause([Lit::neg(row[a]), Lit::neg(row[b])]);
                }
            }
        }
        for i in 0..n {
            let j = (i + 1) % n;
            for color in 0..k {
                s.add_clause([Lit::neg(c[i][color]), Lit::neg(c[j][color])]);
            }
        }
        assert!(s.solve().is_sat());
        // Verify the model is a proper coloring.
        for i in 0..n {
            let color_i = (0..k).find(|&a| s.value(c[i][a]) == Some(true));
            assert!(color_i.is_some());
            let j = (i + 1) % n;
            let color_j = (0..k).find(|&a| s.value(c[j][a]) == Some(true));
            assert_ne!(color_i, color_j);
        }
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::neg(a), Lit::pos(b)]); // a -> b
                                                  // Under assumption a ∧ ¬b: unsat.
        assert!(s.solve_with(&[Lit::pos(a), Lit::neg(b)]).is_unsat());
        // Without assumptions: still sat.
        assert!(s.solve().is_sat());
        // Under a alone: b must be true.
        assert!(s.solve_with(&[Lit::pos(a)]).is_sat());
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s.solve().is_sat());
        s.add_clause([Lit::neg(v[0])]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v[1]), Some(true));
        s.add_clause([Lit::neg(v[1])]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn learnt_count_is_maintained_incrementally() {
        let pigeons = 5;
        let holes = 4;
        let mut s = Solver::new();
        let mut x = vec![vec![Var(0); holes]; pigeons];
        for p in 0..pigeons {
            for h in 0..holes {
                x[p][h] = s.new_var();
            }
        }
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| Lit::pos(x[p][h])));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([Lit::neg(x[p1][h]), Lit::neg(x[p2][h])]);
                }
            }
        }
        assert_eq!(s.num_learnt(), 0);
        assert!(s.solve().is_unsat());
        // The incremental count matches a fresh scan of the database.
        let scanned = s.clauses.iter().filter(|c| c.learnt).count();
        assert!(scanned > 0, "PHP(5,4) must learn clauses");
        assert_eq!(s.num_learnt(), scanned);
    }

    #[test]
    fn divergent_configurations_agree_on_the_verdict() {
        // The same UNSAT instance under every diversification knob.
        let build = |s: &mut Solver| {
            let v = vars(s, 4);
            s.add_clause([Lit::pos(v[0]), Lit::pos(v[1])]);
            s.add_clause([Lit::pos(v[0]), Lit::neg(v[1])]);
            s.add_clause([Lit::neg(v[0]), Lit::pos(v[2])]);
            s.add_clause([Lit::neg(v[0]), Lit::neg(v[2]), Lit::pos(v[3])]);
            s.add_clause([Lit::neg(v[0]), Lit::neg(v[3])]);
            s.add_clause([Lit::neg(v[0]), Lit::pos(v[3]), Lit::neg(v[2])]);
        };
        for (pol, scale, seed) in [
            (false, 100, 0),
            (true, 100, 0),
            (false, 32, 0xDEADBEEF),
            (true, 400, 7),
        ] {
            let mut s = Solver::new();
            s.set_default_polarity(pol);
            s.set_restart_scale(scale);
            s.set_decision_seed(seed);
            build(&mut s);
            assert!(
                s.solve().is_unsat(),
                "config pol={pol} scale={scale} seed={seed}"
            );
        }
    }

    /// Regression: a restart firing right after a backjump to level 0 must
    /// not skip propagation of the just-enqueued asserting unit (the old
    /// `backtrack_to` advanced `queue_head` past it, which could yield
    /// models violating clauses). Restarting on every conflict
    /// (`restart_scale(1)`) makes that window the common case.
    #[test]
    fn aggressive_restarts_never_produce_invalid_models() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..10 {
            let n = 30usize;
            let m = 110usize; // near the 3-SAT phase transition: conflicts abound
            let mut s = Solver::new();
            s.set_restart_scale(1);
            let v = vars(&mut s, n);
            let mut clauses = Vec::new();
            for _ in 0..m {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    let var = v[(next() % n as u64) as usize];
                    let neg = next() % 2 == 0;
                    lits.push(Lit::with_polarity(var, !neg));
                }
                clauses.push(lits.clone());
                s.add_clause(lits);
            }
            if s.solve().is_sat() {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.lit_is_true(l) == Some(true)),
                        "model violates clause under aggressive restarts"
                    );
                }
            }
        }
    }

    #[test]
    fn cancelled_solve_returns_none_and_leaves_solver_usable() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([Lit::pos(v[0]), Lit::pos(v[1])]);
        let cancelled = AtomicBool::new(true);
        assert_eq!(s.solve_cancellable(&[], &cancelled), None);
        // The abandoned call left level-0 state only; solving again works.
        let live = AtomicBool::new(false);
        assert_eq!(s.solve_cancellable(&[], &live), Some(SolveResult::Sat));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn exported_cnf_reproduces_the_problem() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([Lit::pos(v[0])]); // unit → lands on the trail
        s.add_clause([Lit::neg(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        s.add_clause([Lit::neg(v[1]), Lit::neg(v[2])]);
        assert!(s.solve().is_sat());
        let cnf = s.export_cnf();
        // The exported problem contains the unit (trail) and both stored
        // clauses, but no learnt clauses.
        assert_eq!(cnf.num_vars, 3);
        assert!(cnf.clauses.contains(&vec![Lit::pos(v[0])]));
        // A fresh solver loaded from the export agrees, and keeps agreeing
        // after the original formula is strengthened to UNSAT.
        let mut fresh = Solver::new();
        cnf.load_into(&mut fresh);
        assert!(fresh.solve().is_sat());
        assert_eq!(fresh.value(v[0]), Some(true));

        s.add_clause([Lit::pos(v[1])]);
        s.add_clause([Lit::pos(v[2])]);
        assert!(s.solve().is_unsat());
        let mut fresh2 = Solver::new();
        s.export_cnf().load_into(&mut fresh2);
        assert!(fresh2.solve().is_unsat());
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    /// Random 3-SAT at low clause density should be satisfiable and the
    /// model must actually satisfy every clause.
    #[test]
    fn random_3sat_models_verify() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..10 {
            let n = 30usize;
            let m = 60usize;
            let mut s = Solver::new();
            let v = vars(&mut s, n);
            let mut clauses = Vec::new();
            for _ in 0..m {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    let var = v[(next() % n as u64) as usize];
                    let neg = next() % 2 == 0;
                    lits.push(Lit::with_polarity(var, !neg));
                }
                clauses.push(lits.clone());
                s.add_clause(lits);
            }
            if s.solve().is_sat() {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.lit_is_true(l) == Some(true)),
                        "model violates clause"
                    );
                }
            }
        }
    }
}
