//! A CDCL SAT solver.
//!
//! The Symbad flow uses SAT in three places: the formal engine of the
//! Laerte++-style ATPG (level 1), bounded model checking of the RTL
//! (level 4), and property-coverage checking (PCC). This crate is a
//! self-contained conflict-driven clause-learning solver with:
//!
//! * two-watched-literal propagation,
//! * first-UIP conflict analysis,
//! * VSIDS-style activity-based decision heuristics,
//! * Luby-sequence restarts,
//! * incremental solving under assumptions.
//!
//! [`cnf::CnfBuilder`] layers Tseitin gate encodings (AND/OR/XOR/MUX/equality)
//! on top, which is how the `hdl` crate bit-blasts netlists into CNF.
//!
//! # Example
//!
//! ```
//! use sat::{Solver, Lit};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b)  has the unique model a=1, b=1.
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a), Lit::pos(b)]);
//! s.add_clause([Lit::pos(a), Lit::neg(b)]);
//! assert!(s.solve().is_sat());
//! assert_eq!(s.value(a), Some(true));
//! assert_eq!(s.value(b), Some(true));
//! ```

#![warn(missing_docs)]

pub mod cnf;
pub mod cube;
pub mod dimacs;
pub mod portfolio;
pub mod share;
pub mod solver;
pub mod types;

pub use cnf::CnfBuilder;
pub use cube::CubeReport;
pub use dimacs::Dimacs;
pub use portfolio::{
    solve_portfolio, solve_portfolio_cooperative, CooperativeOutcome, PortfolioConfig,
    PortfolioOutcome,
};
pub use share::{ImportResult, ShareConfig, ShareFilter, ShareStats, SolverShare};
pub use solver::{BudgetedResult, Cnf, SolveResult, Solver};
pub use types::{Lit, Var};
