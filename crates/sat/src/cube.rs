//! Deterministic cube-and-conquer fallback for budget-exhausted queries.
//!
//! When a budgeted solve runs out of `Effort` without a verdict, the
//! caller can split the search space on the solver's highest-activity
//! unassigned variables: `k` split variables yield `2^k` *cubes*
//! (complete sign assignments to the split set), each solved as an
//! independent obligation through [`exec::map`] with the full budget.
//!
//! The merge is deterministic regardless of worker count because
//! `exec::map` is order-preserving and the verdict is taken in cube
//! index order: the first `Sat` cube (by index) wins with its model;
//! `Unsat` only when *every* cube decided `Unsat`; otherwise the split
//! is still exhausted and the caller keeps its `Unknown` verdict. A
//! `Sat` short-circuit past exhausted lower-index cubes is sound —
//! satisfiability of one cube settles the formula no matter what the
//! others would have said.

use crate::solver::{BudgetedResult, Cnf, SolveResult, Solver};
use crate::types::{Lit, Var};

/// Outcome of a cube-and-conquer attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeReport {
    /// The merged verdict, or `None` when at least one cube also
    /// exhausted its budget (and none decided `Sat`).
    pub verdict: Option<SolveResult>,
    /// How many cubes were solved (0 when no split happened).
    pub cubes: usize,
    /// A full model when the verdict is `Sat`, indexed by variable.
    pub model: Option<Vec<bool>>,
}

fn snapshot_model(solver: &Solver, num_vars: usize) -> Vec<bool> {
    (0..num_vars)
        .map(|i| solver.value(Var::from_index(i)) == Some(true))
        .collect()
}

/// Splits `cnf` on `split_on` and conquers the cubes in parallel,
/// merging verdicts in cube index order. Each cube is a fresh solver
/// run under `effort` with the cube literals as assumptions, so the
/// per-call cost is bounded by `2^k · effort`.
pub fn conquer(
    cnf: &Cnf,
    split_on: &[Var],
    effort: &exec::Effort,
    mode: exec::ExecMode,
) -> CubeReport {
    if split_on.is_empty() {
        return CubeReport {
            verdict: None,
            cubes: 0,
            model: None,
        };
    }
    let k = split_on.len().min(usize::BITS as usize - 1);
    let split = &split_on[..k];
    let cubes: Vec<Vec<Lit>> = (0..1usize << k)
        .map(|mask| {
            split
                .iter()
                .enumerate()
                .map(|(bit, &var)| Lit::with_polarity(var, (mask >> bit) & 1 == 1))
                .collect()
        })
        .collect();
    let total = cubes.len();
    let results = exec::map(mode, cubes, |_, cube: Vec<Lit>| {
        let mut solver = Solver::new();
        cnf.load_into(&mut solver);
        let result = solver.solve_budgeted(&cube, effort);
        let model = match result {
            BudgetedResult::Decided(SolveResult::Sat) => {
                Some(snapshot_model(&solver, cnf.num_vars))
            }
            _ => None,
        };
        (result, model)
    });
    let mut all_unsat = true;
    for (result, model) in results {
        match result {
            BudgetedResult::Decided(SolveResult::Sat) => {
                return CubeReport {
                    verdict: Some(SolveResult::Sat),
                    cubes: total,
                    model,
                };
            }
            BudgetedResult::Decided(SolveResult::Unsat) => {}
            BudgetedResult::Exhausted => all_unsat = false,
        }
    }
    CubeReport {
        verdict: all_unsat.then_some(SolveResult::Unsat),
        cubes: total,
        model: None,
    }
}

/// Full cube-and-conquer entry: a direct budgeted attempt first, then —
/// only if that exhausts — a split on the probe's `split_vars` hottest
/// unassigned variables (VSIDS activity from the failed attempt, ties
/// broken by variable index so the split set is deterministic).
pub fn solve_cube_and_conquer(
    cnf: &Cnf,
    effort: &exec::Effort,
    split_vars: usize,
    mode: exec::ExecMode,
) -> CubeReport {
    let mut probe = Solver::new();
    cnf.load_into(&mut probe);
    match probe.solve_budgeted(&[], effort) {
        BudgetedResult::Decided(result) => {
            let model = (result == SolveResult::Sat).then(|| snapshot_model(&probe, cnf.num_vars));
            CubeReport {
                verdict: Some(result),
                cubes: 0,
                model,
            }
        }
        BudgetedResult::Exhausted => {
            let split = probe.top_activity_vars(split_vars.max(1));
            conquer(cnf, &split, effort, mode)
        }
    }
}

#[cfg(test)]
#[cfg(not(any(feature = "panic-mutant", feature = "diverge-mutant")))]
mod tests {
    use super::*;

    /// Pigeonhole CNF: `pigeons` into `holes`, unsatisfiable when
    /// pigeons > holes. Hard for CDCL, so small budgets exhaust on it.
    fn php_cnf(pigeons: usize, holes: usize) -> Cnf {
        let var = |p: usize, h: usize| Var::from_index(p * holes + h);
        let mut clauses = Vec::new();
        for p in 0..pigeons {
            clauses.push((0..holes).map(|h| Lit::pos(var(p, h))).collect());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    clauses.push(vec![Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        Cnf {
            num_vars: pigeons * holes,
            clauses,
        }
    }

    fn model_satisfies(cnf: &Cnf, model: &[bool]) -> bool {
        cnf.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|lit| model[lit.var().index()] == lit.is_positive())
        })
    }

    #[test]
    fn direct_decision_skips_the_split() {
        let cnf = Cnf {
            num_vars: 2,
            clauses: vec![
                vec![Lit::pos(Var::from_index(0))],
                vec![Lit::neg(Var::from_index(1))],
            ],
        };
        let report = solve_cube_and_conquer(
            &cnf,
            &exec::Effort::bounded(64),
            2,
            exec::ExecMode::Sequential,
        );
        assert_eq!(report.verdict, Some(SolveResult::Sat));
        assert_eq!(report.cubes, 0);
        assert!(model_satisfies(&cnf, report.model.as_ref().unwrap()));
    }

    #[test]
    fn exhausted_unsat_query_is_decided_by_cubes() {
        // PHP(6,5) exhausts a tiny conflict budget directly, but each
        // cube (with two pigeons pinned) is easier; with the cube-side
        // budget high enough the split decides Unsat.
        let cnf = php_cnf(6, 5);
        let starved = exec::Effort {
            sat_conflicts: Some(20),
            sat_decisions: None,
            bdd_nodes: None,
        };
        let mut probe = Solver::new();
        cnf.load_into(&mut probe);
        assert!(probe.solve_budgeted(&[], &starved).is_exhausted());

        let split = probe.top_activity_vars(3);
        assert_eq!(split.len(), 3);
        let generous = exec::Effort {
            sat_conflicts: Some(100_000),
            sat_decisions: None,
            bdd_nodes: None,
        };
        let report = conquer(&cnf, &split, &generous, exec::ExecMode::Sequential);
        assert_eq!(report.cubes, 8);
        assert_eq!(report.verdict, Some(SolveResult::Unsat));
    }

    #[test]
    fn cube_report_is_identical_across_worker_counts() {
        let cnf = php_cnf(6, 5);
        let effort = exec::Effort {
            sat_conflicts: Some(100_000),
            sat_decisions: None,
            bdd_nodes: None,
        };
        let mut probe = Solver::new();
        cnf.load_into(&mut probe);
        let starved = exec::Effort {
            sat_conflicts: Some(20),
            sat_decisions: None,
            bdd_nodes: None,
        };
        let _ = probe.solve_budgeted(&[], &starved);
        let split = probe.top_activity_vars(2);

        let baseline = conquer(&cnf, &split, &effort, exec::ExecMode::Sequential);
        for workers in [1usize, 2, 8] {
            let got = conquer(&cnf, &split, &effort, exec::ExecMode::Parallel { workers });
            assert_eq!(got, baseline, "workers={workers}");
        }
    }

    #[test]
    fn sat_cube_yields_a_validated_model() {
        // Satisfiable random-ish CNF; force the split path by starving
        // the probe on a harder instance is unnecessary — exercise
        // `conquer` directly on a chosen split.
        let cnf = Cnf {
            num_vars: 4,
            clauses: vec![
                vec![Lit::pos(Var::from_index(0)), Lit::pos(Var::from_index(1))],
                vec![Lit::neg(Var::from_index(0)), Lit::pos(Var::from_index(2))],
                vec![Lit::neg(Var::from_index(1)), Lit::pos(Var::from_index(3))],
            ],
        };
        let report = conquer(
            &cnf,
            &[Var::from_index(0), Var::from_index(1)],
            &exec::Effort::bounded(1024),
            exec::ExecMode::Sequential,
        );
        assert_eq!(report.verdict, Some(SolveResult::Sat));
        assert_eq!(report.cubes, 4);
        assert!(model_satisfies(&cnf, report.model.as_ref().unwrap()));
    }
}
