//! Learnt-clause sharing between cooperating solvers.
//!
//! The portfolio historically *raced* divergent configurations and threw
//! the losers' work away. This module upgrades racing to cooperation:
//! solvers export short, low-glue learnt clauses through bounded
//! lock-free single-producer/single-consumer mailboxes, and import each
//! other's exports at decision level 0 between restarts.
//!
//! Soundness rests on three legs (see DESIGN.md §16):
//!
//! 1. **Entailment.** Every learnt clause is a resolvent of the solver's
//!    *permanent* clause set (assumptions enter the search as scoped
//!    decisions, never as clauses), so every export is entailed by the
//!    formula all group members share.
//! 2. **Level-0 import.** Imports are integrated only while the importing
//!    solver rests at decision level 0 — the same discipline as
//!    [`crate::Solver::add_clause`] — so watched-literal and trail
//!    invariants are never violated mid-search.
//! 3. **Identical formulas.** A share group is built over one CNF; the
//!    cross-obligation lemma pool extends the reach to *distinct*
//!    obligations only through the 128-bit canonical-CNF fingerprint, so
//!    a clause can only ever reach a solver whose formula entails it.
//!
//! Sharing may change *effort* (conflicts, decisions, who wins a race) —
//! never *answers*.

use crate::types::Lit;
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Admission filter for exports: only clauses short enough *and* with low
/// enough glue (LBD — the number of distinct decision levels among the
/// clause's literals at learn time) are worth the import cost on the
/// receiving side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareFilter {
    /// Maximum literal count of an exported clause.
    pub max_len: usize,
    /// Maximum glue (LBD) of an exported clause. Units have glue 1.
    pub max_glue: u32,
}

impl Default for ShareFilter {
    fn default() -> Self {
        ShareFilter {
            max_len: 12,
            max_glue: 6,
        }
    }
}

impl ShareFilter {
    /// A filter that admits everything up to `max_len` literals
    /// regardless of glue — used by tests and the fuzz family to drive
    /// export volume.
    pub fn permissive(max_len: usize) -> Self {
        ShareFilter {
            max_len,
            max_glue: u32::MAX,
        }
    }

    /// Whether a clause of `len` literals and `glue` LBD passes.
    pub fn admits(&self, len: usize, glue: u32) -> bool {
        len <= self.max_len && glue <= self.max_glue
    }
}

/// Configuration of one share group: mailbox depth, per-drain import
/// budget, pool-export cap, and the export filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareConfig {
    /// Capacity of each directed worker-to-worker mailbox. Full mailboxes
    /// drop (sharing is best-effort; dropping is always sound).
    pub mailbox_capacity: usize,
    /// Maximum clauses a solver integrates per drain (one drain at solve
    /// entry, one per restart), bounding the import-side overhead.
    pub import_budget: usize,
    /// Maximum clauses a solver buffers for the cross-obligation lemma
    /// pool.
    pub pool_cap: usize,
    /// Export admission filter.
    pub filter: ShareFilter,
}

impl Default for ShareConfig {
    fn default() -> Self {
        ShareConfig {
            mailbox_capacity: 128,
            import_budget: 64,
            pool_cap: 256,
            filter: ShareFilter::default(),
        }
    }
}

/// Traffic counters of one [`SolverShare`] endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShareStats {
    /// Clauses that passed the filter and were exported.
    pub exported: u64,
    /// Learnt clauses rejected by the length/glue filter.
    pub export_rejected: u64,
    /// Exports dropped because a peer's mailbox was full.
    pub dropped_full: u64,
    /// Imported clauses integrated into the solver.
    pub imported: u64,
    /// Imported clauses that simplified away (already satisfied,
    /// tautological, or out of variable range).
    pub import_redundant: u64,
}

/// Outcome of integrating one foreign clause at decision level 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportResult {
    /// The clause (or its level-0 simplification) was added.
    Added,
    /// The clause was already satisfied/tautological/out-of-range and was
    /// dropped — always sound, the solver is unchanged.
    Redundant,
    /// The clause closed the formula: it is now unsatisfiable at level 0.
    /// Sound because imports are entailed — this is a real verdict.
    Conflict,
}

/// The bounded SPSC ring both endpoints share. `head` is owned by the
/// consumer, `tail` by the producer; the `Release` store on the owner's
/// index paired with the `Acquire` load on the other side publishes the
/// slot contents. The single-producer/single-consumer discipline is
/// enforced by construction: [`mailbox`] returns exactly one non-`Clone`
/// sender and one non-`Clone` receiver, and their methods take `&mut
/// self`.
struct Ring {
    slots: Box<[UnsafeCell<Option<Vec<Lit>>>]>,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: each slot is written only by the unique ShareSender and read
// only by the unique ShareReceiver, and never concurrently for the same
// index — the producer stops at `head - 1` (ring full) and the consumer
// at `tail` (ring empty), with Release/Acquire pairs on the indices
// ordering the slot accesses.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

/// The producing end of one directed clause mailbox (see [`mailbox`]).
pub struct ShareSender {
    ring: Arc<Ring>,
}

/// The consuming end of one directed clause mailbox (see [`mailbox`]).
pub struct ShareReceiver {
    ring: Arc<Ring>,
}

impl fmt::Debug for ShareSender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShareSender")
            .field("capacity", &(self.ring.slots.len() - 1))
            .finish()
    }
}

impl fmt::Debug for ShareReceiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShareReceiver")
            .field("capacity", &(self.ring.slots.len() - 1))
            .finish()
    }
}

/// Creates one bounded single-producer/single-consumer clause mailbox of
/// the given capacity (at least 1). Pushing into a full mailbox drops the
/// clause — sharing is best-effort and dropping is always sound.
pub fn mailbox(capacity: usize) -> (ShareSender, ShareReceiver) {
    let slots = (0..capacity.max(1) + 1)
        .map(|_| UnsafeCell::new(None))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        dropped: AtomicU64::new(0),
    });
    (ShareSender { ring: ring.clone() }, ShareReceiver { ring })
}

impl ShareSender {
    /// Enqueues `clause`, or drops it (returning `false`) when the ring
    /// is full.
    pub fn push(&mut self, clause: Vec<Lit>) -> bool {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let next = (tail + 1) % ring.slots.len();
        if next == ring.head.load(Ordering::Acquire) {
            ring.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: slot `tail` is outside the consumer's visible range
        // until the Release store below, and this is the unique producer.
        unsafe {
            *ring.slots[tail].get() = Some(clause);
        }
        ring.tail.store(next, Ordering::Release);
        true
    }

    /// Clauses dropped so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped.load(Ordering::Relaxed)
    }
}

impl ShareReceiver {
    /// Dequeues the oldest pending clause, if any.
    pub fn pop(&mut self) -> Option<Vec<Lit>> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        if head == ring.tail.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: the Acquire above ordered the producer's slot write
        // before this read, and this is the unique consumer.
        let clause = unsafe { (*ring.slots[head].get()).take() };
        ring.head
            .store((head + 1) % ring.slots.len(), Ordering::Release);
        clause
    }
}

/// One worker's bundle of sharing endpoints, attached to a
/// [`crate::Solver`] via [`crate::Solver::set_share`]: outboxes toward
/// every peer, inboxes from every peer, the export filter/budget, and a
/// bounded buffer of exports destined for the cross-obligation lemma
/// pool.
pub struct SolverShare {
    outboxes: Vec<ShareSender>,
    inboxes: Vec<ShareReceiver>,
    filter: ShareFilter,
    import_budget: usize,
    pool_cap: usize,
    pool_exports: Vec<Vec<Lit>>,
    export_count: u64,
    stats: ShareStats,
}

impl fmt::Debug for SolverShare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverShare")
            .field("peers", &self.outboxes.len())
            .field("filter", &self.filter)
            .field("stats", &self.stats)
            .finish()
    }
}

impl SolverShare {
    /// A mailbox-less endpoint that only collects pool-bound exports —
    /// what the sequential cached paths attach so their learnt clauses
    /// seed the cross-obligation lemma pool.
    pub fn collector(filter: ShareFilter, pool_cap: usize) -> Self {
        SolverShare {
            outboxes: Vec::new(),
            inboxes: Vec::new(),
            filter,
            import_budget: 0,
            pool_cap,
            pool_exports: Vec::new(),
            export_count: 0,
            stats: ShareStats::default(),
        }
    }

    /// Whether a clause of `len` literals could pass the filter at all
    /// (the cheap pre-check the solver runs before computing glue).
    pub(crate) fn wants_len(&self, len: usize) -> bool {
        len <= self.filter.max_len
    }

    /// Offers one just-learnt clause for export. The clause is normalised
    /// (literals sorted) so receivers and the pool see a canonical form.
    pub(crate) fn offer(&mut self, lits: &[Lit], glue: u32) {
        if !self.filter.admits(lits.len(), glue) {
            self.stats.export_rejected += 1;
            return;
        }
        let mut clause = lits.to_vec();
        clause.sort_unstable();
        self.export_count += 1;
        #[cfg(feature = "share-mutant")]
        {
            // Injected bug: every 64th export flips its first literal,
            // breaking entailment. The `share` fuzz family's per-export
            // entailment oracle (and `fuzz/tests/share_mutant.rs`) must
            // catch this; never enable outside that check.
            if self.export_count.is_multiple_of(64) {
                clause[0] = !clause[0];
            }
        }
        for outbox in &mut self.outboxes {
            if !outbox.push(clause.clone()) {
                self.stats.dropped_full += 1;
            }
        }
        if self.pool_exports.len() < self.pool_cap {
            self.pool_exports.push(clause);
        }
        self.stats.exported += 1;
    }

    /// Drains up to `import_budget` pending clauses from the inboxes,
    /// round-robin across peers.
    pub(crate) fn take_imports(&mut self) -> Vec<Vec<Lit>> {
        let mut imports = Vec::new();
        if self.inboxes.is_empty() || self.import_budget == 0 {
            return imports;
        }
        let mut exhausted = vec![false; self.inboxes.len()];
        'outer: loop {
            let mut any = false;
            for (i, inbox) in self.inboxes.iter_mut().enumerate() {
                if exhausted[i] {
                    continue;
                }
                match inbox.pop() {
                    Some(clause) => {
                        imports.push(clause);
                        any = true;
                        if imports.len() >= self.import_budget {
                            break 'outer;
                        }
                    }
                    None => exhausted[i] = true,
                }
            }
            if !any {
                break;
            }
        }
        imports
    }

    /// Records the outcome of integrating one import.
    pub(crate) fn note_import(&mut self, result: ImportResult) {
        match result {
            ImportResult::Added | ImportResult::Conflict => self.stats.imported += 1,
            ImportResult::Redundant => self.stats.import_redundant += 1,
        }
    }

    /// Snapshot of this endpoint's traffic counters.
    pub fn stats(&self) -> ShareStats {
        self.stats
    }

    /// Clauses this endpoint exported so far (sorted-literal canonical
    /// form), without consuming the endpoint.
    pub fn pool_exports(&self) -> &[Vec<Lit>] {
        &self.pool_exports
    }

    /// Consumes the endpoint, yielding its pool-bound exports.
    pub fn into_pool_exports(self) -> Vec<Vec<Lit>> {
        self.pool_exports
    }
}

/// Builds a fully connected share group of `n` workers: `n · (n − 1)`
/// directed mailboxes, bundled into one [`SolverShare`] handle per
/// worker. Worker `i`'s handle owns the sending end of every `i → j`
/// ring and the receiving end of every `j → i` ring.
pub fn build_group(n: usize, config: &ShareConfig) -> Vec<SolverShare> {
    let n = n.max(1);
    let mut outboxes: Vec<Vec<ShareSender>> = (0..n).map(|_| Vec::new()).collect();
    let mut inboxes: Vec<Vec<ShareReceiver>> = (0..n).map(|_| Vec::new()).collect();
    for (i, out) in outboxes.iter_mut().enumerate() {
        for (j, inb) in inboxes.iter_mut().enumerate() {
            if i == j {
                continue;
            }
            let (tx, rx) = mailbox(config.mailbox_capacity);
            out.push(tx);
            inb.push(rx);
        }
    }
    outboxes
        .into_iter()
        .zip(inboxes)
        .map(|(out, inb)| SolverShare {
            outboxes: out,
            inboxes: inb,
            filter: config.filter,
            import_budget: config.import_budget,
            pool_cap: config.pool_cap,
            pool_exports: Vec::new(),
            export_count: 0,
            stats: ShareStats::default(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lit(i: usize, pos: bool) -> Lit {
        Lit::with_polarity(Var::from_index(i), pos)
    }

    #[test]
    fn mailbox_round_trips_in_order() {
        let (mut tx, mut rx) = mailbox(4);
        assert_eq!(rx.pop(), None);
        assert!(tx.push(vec![lit(0, true)]));
        assert!(tx.push(vec![lit(1, false)]));
        assert_eq!(rx.pop(), Some(vec![lit(0, true)]));
        assert_eq!(rx.pop(), Some(vec![lit(1, false)]));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_mailbox_drops_and_counts() {
        let (mut tx, mut rx) = mailbox(2);
        assert!(tx.push(vec![lit(0, true)]));
        assert!(tx.push(vec![lit(1, true)]));
        assert!(!tx.push(vec![lit(2, true)]));
        assert_eq!(tx.dropped(), 1);
        // Draining frees capacity again.
        assert_eq!(rx.pop(), Some(vec![lit(0, true)]));
        assert!(tx.push(vec![lit(3, true)]));
        assert_eq!(rx.pop(), Some(vec![lit(1, true)]));
        assert_eq!(rx.pop(), Some(vec![lit(3, true)]));
    }

    #[test]
    fn mailbox_is_safe_across_threads() {
        let (mut tx, mut rx) = mailbox(8);
        let total = 10_000usize;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..total {
                    // Spin until accepted so every clause arrives.
                    let clause = vec![lit(i % 4, i.is_multiple_of(2))];
                    while !tx.push(clause.clone()) {
                        std::hint::spin_loop();
                    }
                }
            });
            let mut received = 0usize;
            while received < total {
                if let Some(clause) = rx.pop() {
                    assert_eq!(clause, vec![lit(received % 4, received.is_multiple_of(2))]);
                    received += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
    }

    #[test]
    fn filter_gates_exports() {
        let mut share = SolverShare::collector(
            ShareFilter {
                max_len: 2,
                max_glue: 2,
            },
            16,
        );
        share.offer(&[lit(0, true)], 1);
        share.offer(&[lit(1, true), lit(2, false)], 2);
        share.offer(&[lit(1, true), lit(2, false), lit(3, true)], 2); // too long
        share.offer(&[lit(4, true), lit(5, true)], 3); // glue too high
        assert_eq!(share.stats().exported, 2);
        assert_eq!(share.stats().export_rejected, 2);
        assert_eq!(share.pool_exports().len(), 2);
    }

    #[cfg(not(feature = "share-mutant"))]
    #[test]
    fn exports_are_normalised_sorted() {
        let mut share = SolverShare::collector(ShareFilter::permissive(8), 16);
        share.offer(&[lit(3, false), lit(1, true), lit(2, true)], 1);
        let exports = share.pool_exports();
        assert_eq!(exports.len(), 1);
        let mut sorted = exports[0].clone();
        sorted.sort_unstable();
        assert_eq!(exports[0], sorted);
    }

    #[test]
    fn pool_cap_bounds_collection() {
        let mut share = SolverShare::collector(ShareFilter::permissive(8), 3);
        for i in 0..10 {
            share.offer(&[lit(i, true)], 1);
        }
        assert_eq!(share.pool_exports().len(), 3);
        assert_eq!(share.stats().exported, 10);
    }

    #[test]
    fn group_wires_every_direction() {
        let config = ShareConfig::default();
        let mut group = build_group(3, &config);
        assert_eq!(group.len(), 3);
        for handle in &group {
            assert_eq!(handle.outboxes.len(), 2);
            assert_eq!(handle.inboxes.len(), 2);
        }
        // An export from worker 0 reaches workers 1 and 2 but not 0.
        group[0].offer(&[lit(0, true)], 1);
        assert!(group[0].take_imports().is_empty());
        let got1 = group.get_mut(1).unwrap().take_imports();
        let got2 = group.get_mut(2).unwrap().take_imports();
        #[cfg(not(feature = "share-mutant"))]
        {
            assert_eq!(got1, vec![vec![lit(0, true)]]);
            assert_eq!(got2, vec![vec![lit(0, true)]]);
        }
        #[cfg(feature = "share-mutant")]
        {
            assert_eq!(got1.len(), 1);
            assert_eq!(got2.len(), 1);
        }
    }

    #[test]
    fn import_budget_caps_one_drain() {
        let config = ShareConfig {
            import_budget: 3,
            ..ShareConfig::default()
        };
        let mut group = build_group(2, &config);
        for i in 0..10 {
            group[0].offer(&[lit(i, true)], 1);
        }
        let first = group.get_mut(1).unwrap().take_imports();
        assert_eq!(first.len(), 3);
        let second = group.get_mut(1).unwrap().take_imports();
        assert_eq!(second.len(), 3);
    }

    #[cfg(feature = "share-mutant")]
    #[test]
    fn share_mutant_flips_every_64th_export() {
        let mut share = SolverShare::collector(ShareFilter::permissive(4), 1024);
        for i in 0..128 {
            share.offer(&[lit(i, true), lit(i + 1, true)], 1);
        }
        let exports = share.pool_exports();
        // Exports 64 and 128 (1-indexed) carry a flipped first literal.
        let flipped = exports
            .iter()
            .filter(|c| c.iter().any(|l| !l.is_positive()))
            .count();
        assert_eq!(flipped, 2);
    }
}
