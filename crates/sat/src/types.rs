//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, indexed from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from a raw index.
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }

    /// Raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2*var + sign` (sign bit 1 = negated), the conventional
/// packed representation that makes watch lists index directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub fn pos(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub fn neg(var: Var) -> Self {
        Lit((var.0 << 1) | 1)
    }

    /// A literal of `var` with the given polarity (`true` = positive).
    #[inline]
    pub fn with_polarity(var: Var, positive: bool) -> Self {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Packed code (`2*var + sign`), used as a watch-list index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a literal from its packed [`Lit::code`] — the inverse
    /// used when clauses round-trip through persistence as unsigned
    /// codes (the lemma-pool disk format).
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "¬{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrips() {
        let v = Var::from_index(5);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.code(), 10);
        assert_eq!(n.code(), 11);
        assert_eq!(Lit::from_code(10), p);
        assert_eq!(Lit::from_code(11), n);
    }

    #[test]
    fn polarity_constructor_matches() {
        let v = Var::from_index(3);
        assert_eq!(Lit::with_polarity(v, true), Lit::pos(v));
        assert_eq!(Lit::with_polarity(v, false), Lit::neg(v));
    }

    #[test]
    fn display_formats() {
        let v = Var::from_index(2);
        assert_eq!(Lit::pos(v).to_string(), "x2");
        assert_eq!(Lit::neg(v).to_string(), "¬x2");
    }
}
