//! DIMACS CNF interchange.
//!
//! The industry-standard format lets the solver exchange problems with
//! external tools (and lets bug reports against this reproduction be
//! replayed in any off-the-shelf solver).

use crate::solver::Solver;
use crate::types::{Lit, Var};
use std::fmt::Write as _;

/// A parsed CNF: variable count and clauses of DIMACS-signed literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimacs {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses; literals are non-zero integers (negative = negated),
    /// magnitudes in `1..=num_vars`.
    pub clauses: Vec<Vec<i64>>,
}

/// Hard ceiling on the declared variable count. DIMACS headers are
/// attacker-controlled input (files from disk, fuzzer mutations): without
/// a cap, `p cnf 99999999999 0` parses "successfully" and the subsequent
/// [`Dimacs::into_solver`] attempts a multi-gigabyte allocation. Real
/// instances in this workspace are orders of magnitude smaller.
pub const MAX_VARS: usize = 1_000_000;

/// DIMACS parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDimacsError {
    /// No `p cnf <vars> <clauses>` header found before the clauses.
    MissingHeader,
    /// The header was malformed, duplicated, or not `p cnf <vars> <clauses>`.
    BadHeader(String),
    /// A token was not an integer.
    BadLiteral(String),
    /// A literal's magnitude exceeds the declared variable count.
    LiteralOutOfRange(i64),
    /// The declared variable count exceeds [`MAX_VARS`].
    TooManyVariables(usize),
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseDimacsError::MissingHeader => write!(f, "missing `p cnf` header"),
            ParseDimacsError::BadHeader(h) => write!(f, "malformed header `{h}`"),
            ParseDimacsError::BadLiteral(t) => write!(f, "bad literal token `{t}`"),
            ParseDimacsError::LiteralOutOfRange(l) => {
                write!(f, "literal {l} out of declared range")
            }
            ParseDimacsError::TooManyVariables(n) => {
                write!(f, "declared variable count {n} exceeds the cap {MAX_VARS}")
            }
        }
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text (comments and blank lines allowed; clauses are
/// zero-terminated and may span lines).
///
/// Never panics: every malformed input — bad tokens, truncated or
/// duplicated headers, out-of-range or absurdly large declarations —
/// maps to a typed [`ParseDimacsError`]. The declared clause count is
/// informational (real-world files routinely get it wrong) but must be
/// present and numeric; the declared variable count is enforced both as
/// a literal range and against [`MAX_VARS`].
///
/// # Errors
///
/// Returns a [`ParseDimacsError`] on malformed input.
pub fn parse(text: &str) -> Result<Dimacs, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<i64> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            if num_vars.is_some() {
                // A second problem line would silently redefine the
                // variable range the clauses were checked against.
                return Err(ParseDimacsError::BadHeader(line.to_owned()));
            }
            let bad = || ParseDimacsError::BadHeader(line.to_owned());
            let mut parts = line.split_whitespace();
            if parts.next() != Some("p") || parts.next() != Some("cnf") {
                return Err(bad());
            }
            let nv = parts
                .next()
                .and_then(|t| t.parse::<usize>().ok())
                .ok_or_else(bad)?;
            // The clause count must be present and numeric, but its value
            // is not trusted (clauses are counted as they are read).
            parts
                .next()
                .and_then(|t| t.parse::<usize>().ok())
                .ok_or_else(bad)?;
            if parts.next().is_some() {
                return Err(bad());
            }
            if nv > MAX_VARS {
                return Err(ParseDimacsError::TooManyVariables(nv));
            }
            num_vars = Some(nv);
            continue;
        }
        let nv = num_vars.ok_or(ParseDimacsError::MissingHeader)?;
        for tok in line.split_whitespace() {
            let lit: i64 = tok
                .parse()
                .map_err(|_| ParseDimacsError::BadLiteral(tok.to_owned()))?;
            if lit == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if lit.unsigned_abs() as usize > nv {
                    return Err(ParseDimacsError::LiteralOutOfRange(lit));
                }
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Dimacs {
        num_vars: num_vars.ok_or(ParseDimacsError::MissingHeader)?,
        clauses,
    })
}

impl Dimacs {
    /// Loads the CNF into a fresh [`Solver`], returning the solver and the
    /// variable handles (index 0 ↔ DIMACS variable 1).
    pub fn into_solver(&self) -> (Solver, Vec<Var>) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        for clause in &self.clauses {
            solver.add_clause(clause.iter().map(|&l| {
                let v = vars[(l.unsigned_abs() - 1) as usize];
                Lit::with_polarity(v, l > 0)
            }));
        }
        (solver, vars)
    }

    /// Renders as DIMACS text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for &l in clause {
                let _ = write!(out, "{l} ");
            }
            let _ = writeln!(out, "0");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "c a tiny instance\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n";

    #[test]
    fn parse_and_solve() {
        let cnf = parse(SAMPLE).expect("parses");
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 3);
        let (mut solver, vars) = cnf.into_solver();
        assert!(solver.solve().is_sat());
        // Verify the model against the clauses.
        for clause in &cnf.clauses {
            assert!(clause
                .iter()
                .any(|&l| { solver.value(vars[(l.unsigned_abs() - 1) as usize]) == Some(l > 0) }));
        }
    }

    #[test]
    fn roundtrip() {
        let cnf = parse(SAMPLE).expect("parses");
        let text = cnf.render();
        let again = parse(&text).expect("reparses");
        assert_eq!(cnf, again);
    }

    #[test]
    fn unsat_instance() {
        let cnf = parse("p cnf 1 2\n1 0\n-1 0\n").expect("parses");
        let (mut solver, _) = cnf.into_solver();
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn multiline_clause_and_trailing() {
        let cnf = parse("p cnf 4 1\n1 2\n3 4 0").expect("parses");
        assert_eq!(cnf.clauses, vec![vec![1, 2, 3, 4]]);
        // Unterminated final clause is accepted.
        let cnf2 = parse("p cnf 2 1\n1 -2").expect("parses");
        assert_eq!(cnf2.clauses, vec![vec![1, -2]]);
    }

    #[test]
    fn errors() {
        assert_eq!(parse("1 2 0").unwrap_err(), ParseDimacsError::MissingHeader);
        assert!(matches!(
            parse("p dnf 2 1\n1 0").unwrap_err(),
            ParseDimacsError::BadHeader(_)
        ));
        assert!(matches!(
            parse("p cnf 2 1\n1 x 0").unwrap_err(),
            ParseDimacsError::BadLiteral(_)
        ));
        assert_eq!(
            parse("p cnf 2 1\n3 0").unwrap_err(),
            ParseDimacsError::LiteralOutOfRange(3)
        );
    }

    #[test]
    fn truncated_header_is_rejected() {
        // Regression (found by fuzzing): a header with no clause count
        // used to be silently accepted.
        assert!(matches!(
            parse("p cnf 3\n1 2 0").unwrap_err(),
            ParseDimacsError::BadHeader(_)
        ));
        assert!(matches!(
            parse("p cnf\n1 0").unwrap_err(),
            ParseDimacsError::BadHeader(_)
        ));
        assert!(matches!(
            parse("p").unwrap_err(),
            ParseDimacsError::BadHeader(_)
        ));
        // Trailing junk on the header is rejected too.
        assert!(matches!(
            parse("p cnf 3 3 7\n1 0").unwrap_err(),
            ParseDimacsError::BadHeader(_)
        ));
    }

    #[test]
    fn duplicate_header_is_rejected() {
        // Regression (found by fuzzing): a second `p` line used to
        // redefine the range the earlier clauses were validated against.
        assert!(matches!(
            parse("p cnf 3 1\n1 2 0\np cnf 9 1\n9 0").unwrap_err(),
            ParseDimacsError::BadHeader(_)
        ));
    }

    #[test]
    fn absurd_variable_counts_are_rejected_before_allocation() {
        // Regression (found by fuzzing): `into_solver` on a parsed header
        // declaring billions of variables attempted the full allocation.
        let text = format!("p cnf {} 0\n", MAX_VARS + 1);
        assert_eq!(
            parse(&text).unwrap_err(),
            ParseDimacsError::TooManyVariables(MAX_VARS + 1)
        );
        // The cap itself is fine (no clauses, no allocation pressure here).
        assert!(parse(&format!("p cnf {MAX_VARS} 0\n")).is_ok());
    }
}
