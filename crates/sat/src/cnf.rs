//! Tseitin gate encodings on top of the solver.
//!
//! [`CnfBuilder`] is the interface the `hdl` crate uses to bit-blast RTL
//! netlists: every gate output becomes a fresh literal constrained to equal
//! the gate function of its inputs.

use crate::solver::{SolveResult, Solver};
use crate::types::Lit;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GateOp {
    And,
    Xor,
    Mux,
}

/// Incrementally builds a CNF with named gate semantics.
///
/// The builder owns a [`Solver`]; call [`CnfBuilder::solve`] (or extract the
/// solver with [`CnfBuilder::into_solver`]) once constraints are in place.
///
/// # Example
///
/// ```
/// use sat::CnfBuilder;
///
/// let mut b = CnfBuilder::new();
/// let x = b.new_lit();
/// let y = b.new_lit();
/// let xor = b.xor_gate(x, y);
/// b.assert_lit(xor);          // force x ≠ y
/// assert!(b.solve().is_sat());
/// let (vx, vy) = (b.lit_value(x), b.lit_value(y));
/// assert_ne!(vx, vy);
/// ```
#[derive(Debug, Default)]
pub struct CnfBuilder {
    solver: Solver,
    true_lit: Option<Lit>,
    /// Structural-hashing cache: identical gates share one output literal.
    /// This is what keeps equivalence miters of structurally identical
    /// netlists trivial, exactly as in industrial combinational
    /// equivalence checkers.
    gate_cache: HashMap<(GateOp, Lit, Lit, Lit), Lit>,
}

impl CnfBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CnfBuilder::default()
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn new_lit(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// A literal constrained to be true (allocated lazily once).
    pub fn lit_true(&mut self) -> Lit {
        match self.true_lit {
            Some(l) => l,
            None => {
                let l = self.new_lit();
                self.solver.add_clause([l]);
                self.true_lit = Some(l);
                l
            }
        }
    }

    /// A literal constrained to be false.
    pub fn lit_false(&mut self) -> Lit {
        !self.lit_true()
    }

    /// Asserts that `l` holds.
    pub fn assert_lit(&mut self, l: Lit) {
        self.solver.add_clause([l]);
    }

    /// Adds a raw clause.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.solver.add_clause(lits);
    }

    /// Returns a literal equal to `a ∧ b`.
    pub fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return a;
        }
        if a == !b {
            return self.lit_false();
        }
        if let Some(t) = self.true_lit {
            if a == t {
                return b;
            }
            if b == t {
                return a;
            }
            if a == !t || b == !t {
                return !t;
            }
        }
        let (x, y) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        let key = (GateOp::And, x, y, x);
        if let Some(&o) = self.gate_cache.get(&key) {
            return o;
        }
        let o = self.new_lit();
        self.solver.add_clause([!a, !b, o]);
        self.solver.add_clause([a, !o]);
        self.solver.add_clause([b, !o]);
        self.gate_cache.insert(key, o);
        o
    }

    /// Returns a literal equal to `a ∨ b`.
    pub fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and_gate(!a, !b)
    }

    /// Returns a literal equal to `a ⊕ b`.
    pub fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        if a == b {
            return self.lit_false();
        }
        if a == !b {
            return self.lit_true();
        }
        if let Some(t) = self.true_lit {
            if a == t {
                return !b;
            }
            if b == t {
                return !a;
            }
            if a == !t {
                return b;
            }
            if b == !t {
                return a;
            }
        }
        let (x, y) = if a.code() <= b.code() { (a, b) } else { (b, a) };
        let key = (GateOp::Xor, x, y, x);
        if let Some(&o) = self.gate_cache.get(&key) {
            return o;
        }
        let o = self.new_lit();
        self.solver.add_clause([!a, !b, !o]);
        self.solver.add_clause([a, b, !o]);
        self.solver.add_clause([!a, b, o]);
        self.solver.add_clause([a, !b, o]);
        self.gate_cache.insert(key, o);
        o
    }

    /// Returns a literal equal to `sel ? then_ : else_`.
    pub fn mux_gate(&mut self, sel: Lit, then_: Lit, else_: Lit) -> Lit {
        if then_ == else_ {
            return then_;
        }
        if let Some(t) = self.true_lit {
            if sel == t {
                return then_;
            }
            if sel == !t {
                return else_;
            }
        }
        let key = (GateOp::Mux, sel, then_, else_);
        if let Some(&o) = self.gate_cache.get(&key) {
            return o;
        }
        let o = self.new_lit();
        self.solver.add_clause([!sel, !then_, o]);
        self.solver.add_clause([!sel, then_, !o]);
        self.solver.add_clause([sel, !else_, o]);
        self.solver.add_clause([sel, else_, !o]);
        self.gate_cache.insert(key, o);
        o
    }

    /// Returns a literal equal to `a ↔ b`.
    pub fn eq_gate(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor_gate(a, b)
    }

    /// Conjunction of many literals (true for an empty list).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits.split_first() {
            None => self.lit_true(),
            Some((&first, rest)) => {
                let mut acc = first;
                for &l in rest {
                    acc = self.and_gate(acc, l);
                }
                acc
            }
        }
    }

    /// Disjunction of many literals (false for an empty list).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        match lits.split_first() {
            None => self.lit_false(),
            Some((&first, rest)) => {
                let mut acc = first;
                for &l in rest {
                    acc = self.or_gate(acc, l);
                }
                acc
            }
        }
    }

    /// Full adder: returns `(sum, carry)` of `a + b + cin`.
    pub fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let ab = self.xor_gate(a, b);
        let sum = self.xor_gate(ab, cin);
        let c1 = self.and_gate(a, b);
        let c2 = self.and_gate(ab, cin);
        let carry = self.or_gate(c1, c2);
        (sum, carry)
    }

    /// Solves the accumulated constraints.
    pub fn solve(&mut self) -> SolveResult {
        self.solver.solve()
    }

    /// Solves under assumptions.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solver.solve_with(assumptions)
    }

    /// Solves under assumptions with a deterministic effort budget (see
    /// [`Solver::solve_budgeted`]).
    pub fn solve_budgeted(
        &mut self,
        assumptions: &[Lit],
        effort: &exec::Effort,
    ) -> crate::solver::BudgetedResult {
        self.solver.solve_budgeted(assumptions, effort)
    }

    /// Model value of a literal after a SAT answer.
    ///
    /// # Panics
    ///
    /// Panics if the literal's variable is unassigned (no model available).
    pub fn lit_value(&self, l: Lit) -> bool {
        self.solver
            .lit_is_true(l)
            .expect("literal assigned in model")
    }

    /// Access the underlying solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutable access to the underlying solver — the hook the cached
    /// miter paths use to attach a sharing endpoint and import
    /// lemma-pool clauses before solving.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Attaches a telemetry instrument to the underlying solver (see
    /// [`Solver::set_instrument`]).
    pub fn set_instrument(&mut self, instrument: telemetry::SharedInstrument) {
        self.solver.set_instrument(instrument);
    }

    /// Extracts the underlying solver.
    pub fn into_solver(self) -> Solver {
        self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks a 2-input gate encoding against a truth table.
    fn check_gate2(f: impl Fn(&mut CnfBuilder, Lit, Lit) -> Lit, table: [bool; 4]) {
        for (i, &expected) in table.iter().enumerate() {
            let (va, vb) = (i & 1 != 0, i & 2 != 0);
            let mut b = CnfBuilder::new();
            let a = b.new_lit();
            let bb = b.new_lit();
            let o = f(&mut b, a, bb);
            let assumptions = [
                Lit::with_polarity(a.var(), va),
                Lit::with_polarity(bb.var(), vb),
            ];
            assert!(b.solve_with(&assumptions).is_sat());
            assert_eq!(b.lit_value(o), expected, "inputs {va} {vb}");
        }
    }

    #[test]
    fn and_gate_truth_table() {
        check_gate2(|b, x, y| b.and_gate(x, y), [false, false, false, true]);
    }

    #[test]
    fn or_gate_truth_table() {
        check_gate2(|b, x, y| b.or_gate(x, y), [false, true, true, true]);
    }

    #[test]
    fn xor_gate_truth_table() {
        check_gate2(|b, x, y| b.xor_gate(x, y), [false, true, true, false]);
    }

    #[test]
    fn eq_gate_truth_table() {
        check_gate2(|b, x, y| b.eq_gate(x, y), [true, false, false, true]);
    }

    #[test]
    fn mux_selects_correctly() {
        for sel in [false, true] {
            for t in [false, true] {
                for e in [false, true] {
                    let mut b = CnfBuilder::new();
                    let s = b.new_lit();
                    let tl = b.new_lit();
                    let el = b.new_lit();
                    let o = b.mux_gate(s, tl, el);
                    let assumptions = [
                        Lit::with_polarity(s.var(), sel),
                        Lit::with_polarity(tl.var(), t),
                        Lit::with_polarity(el.var(), e),
                    ];
                    assert!(b.solve_with(&assumptions).is_sat());
                    assert_eq!(b.lit_value(o), if sel { t } else { e });
                }
            }
        }
    }

    #[test]
    fn full_adder_truth_table() {
        for bits in 0..8u32 {
            let (va, vb, vc) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let mut b = CnfBuilder::new();
            let a = b.new_lit();
            let bb = b.new_lit();
            let c = b.new_lit();
            let (sum, carry) = b.full_adder(a, bb, c);
            let assumptions = [
                Lit::with_polarity(a.var(), va),
                Lit::with_polarity(bb.var(), vb),
                Lit::with_polarity(c.var(), vc),
            ];
            assert!(b.solve_with(&assumptions).is_sat());
            let total = va as u8 + vb as u8 + vc as u8;
            assert_eq!(b.lit_value(sum), total & 1 == 1);
            assert_eq!(b.lit_value(carry), total >= 2);
        }
    }

    #[test]
    fn and_or_many_reduce() {
        let mut b = CnfBuilder::new();
        let lits: Vec<Lit> = (0..4).map(|_| b.new_lit()).collect();
        let all = b.and_many(&lits);
        b.assert_lit(all);
        assert!(b.solve().is_sat());
        for &l in &lits {
            assert!(b.lit_value(l));
        }

        let mut b2 = CnfBuilder::new();
        let lits2: Vec<Lit> = (0..4).map(|_| b2.new_lit()).collect();
        let any = b2.or_many(&lits2);
        b2.assert_lit(!any);
        assert!(b2.solve().is_sat());
        for &l in &lits2 {
            assert!(!b2.lit_value(l));
        }
    }

    #[test]
    fn empty_reductions_are_constants() {
        let mut b = CnfBuilder::new();
        let t = b.and_many(&[]);
        let f = b.or_many(&[]);
        b.assert_lit(t);
        b.assert_lit(!f);
        assert!(b.solve().is_sat());
    }

    #[test]
    fn gate_simplifications() {
        let mut b = CnfBuilder::new();
        let a = b.new_lit();
        assert_eq!(b.and_gate(a, a), a);
        let contradiction = b.and_gate(a, !a);
        let tautology = b.xor_gate(a, !a);
        b.assert_lit(!contradiction);
        b.assert_lit(tautology);
        assert!(b.solve().is_sat());
    }
}
