//! Zero-dependency worker-pool execution layer.
//!
//! The verification cascade is embarrassingly parallel at the obligation
//! level: per-property BMC runs, per-fault ATPG queries, per-configuration
//! LPV checks, and SAT portfolio races share no mutable state. This crate
//! provides the two primitives those engines need — an order-preserving
//! parallel [`map`] and a first-verdict-wins [`race`] — built on
//! `std::thread::scope` and channels only (the workspace builds offline,
//! so no rayon/crossbeam).
//!
//! Determinism contract: [`map`] returns results in *item order*
//! regardless of completion order, so a caller that merges per-obligation
//! outputs sequentially observes exactly the sequential schedule. [`race`]
//! is reserved for obligations whose *verdict* is objective (e.g. SAT vs
//! UNSAT of one CNF) — any winner yields the same answer.

#![warn(missing_docs)]

pub mod fair;

pub use fair::DrrScheduler;

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning. The worker-pool queue and
/// result slots hold plain data (no invariants can be half-updated by a
/// panicking job, because jobs never mutate them mid-panic), so a
/// poisoned lock only means "some thread panicked while holding it" —
/// the data itself is still consistent and the pool must stay usable.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a caught panic payload as a message. Panics raised by
/// `panic!("…")` carry `String`/`&str` payloads and render exactly;
/// anything else (`panic_any`) gets a fixed placeholder, so the rendering
/// is deterministic regardless of the payload type.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked at …" report for panics whose message contains the
/// marker `injected panic`, delegating every other panic to the
/// previously installed hook. The workspace's fault-injection fixtures
/// (the `panic-mutant` solver feature, the `supervise` fuzz family, the
/// supervision tests) all panic with that marker, and each intentional
/// panic would otherwise spam the captured-output-free stderr of the
/// worker threads that catch them. Real bugs panic without the marker
/// and keep their full report.
pub fn silence_injected_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&'static str>()
                .map(|s| (*s).to_owned())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if !msg.contains("injected panic") {
                previous(info);
            }
        }));
    });
}

/// How one job of a supervised [`map_supervised`] batch ended.
///
/// The supervised pool never aborts the batch: a panicking job is caught
/// with `catch_unwind` and reported as [`JobOutcome::Panicked`] in its
/// slot while every other job runs to completion. `Missing` is the typed
/// replacement for the old `expect("worker delivered every slot")`
/// double-panic: it marks a slot no worker delivered (unreachable under
/// normal operation, but a report instead of an abort if it ever fires).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<R> {
    /// The job returned normally.
    Ok(R),
    /// The job panicked; `message` is the deterministic panic payload
    /// rendering of [`panic_message`].
    Panicked {
        /// The rendered panic payload.
        message: String,
    },
    /// No worker delivered a result for this slot.
    Missing,
}

impl<R> JobOutcome<R> {
    /// The result, when the job completed normally.
    pub fn ok(self) -> Option<R> {
        match self {
            JobOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the job panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, JobOutcome::Panicked { .. })
    }

    /// The panic message, when the job panicked.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            JobOutcome::Panicked { message } => Some(message),
            _ => None,
        }
    }
}

/// Scheduling facts observed while one batch drained: which worker ran
/// which job, and how deep the shared queue was at each dispatch.
///
/// This is *timing-lane* material for the observability journal — it is
/// honest about the actual schedule and therefore differs run to run and
/// across worker counts. Nothing here may feed back into verdicts or the
/// deterministic telemetry stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolRunStats {
    /// Worker threads serving the batch (1 for the sequential path).
    pub workers: usize,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Per job (item order): the worker index that executed it. `None`
    /// only for slots no worker delivered.
    pub worker_for_job: Vec<Option<usize>>,
    /// Queue length observed right after each dispatch, in completion
    /// order.
    pub queue_depth_samples: Vec<usize>,
}

impl PoolRunStats {
    /// Deepest backlog observed while draining (counting the job being
    /// dispatched): the whole batch for a non-empty queue, 0 otherwise.
    pub fn peak_depth(&self) -> usize {
        self.queue_depth_samples
            .iter()
            .map(|d| d + 1)
            .max()
            .unwrap_or(0)
    }

    /// Jobs executed per worker index (occupancy).
    pub fn jobs_per_worker(&self) -> Vec<usize> {
        let mut per = vec![0usize; self.workers];
        for w in self.worker_for_job.iter().flatten() {
            if let Some(slot) = per.get_mut(*w) {
                *slot += 1;
            }
        }
        per
    }
}

/// Deterministic effort budget shared by the verification engines.
///
/// Budgets are *effort*-based — SAT conflicts/decisions, BDD nodes —
/// never wall-clock: an engine that runs out returns a deterministic
/// "budget exhausted" verdict that is bit-identical across machines,
/// schedules, and worker counts. `None` in a field means that axis is
/// unbounded. The caps apply **per engine call** (e.g. per BMC depth's
/// SAT query), not across a whole obligation, so deepening an unrolling
/// degrades at a deterministic depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Effort {
    /// Cap on SAT conflicts per solve call.
    pub sat_conflicts: Option<u64>,
    /// Cap on SAT decisions per solve call.
    pub sat_decisions: Option<u64>,
    /// Cap on live BDD nodes per manager.
    pub bdd_nodes: Option<u64>,
}

impl Effort {
    /// No caps on any axis: supervision stays idle and every engine
    /// behaves exactly as its unbudgeted entry point.
    pub fn unbounded() -> Self {
        Effort::default()
    }

    /// A proportional budget: `scale` conflicts, `16 × scale` decisions,
    /// `256 × scale` BDD nodes.
    pub fn bounded(scale: u64) -> Self {
        Effort {
            sat_conflicts: Some(scale),
            sat_decisions: Some(scale.saturating_mul(16)),
            bdd_nodes: Some(scale.saturating_mul(256)),
        }
    }

    /// Whether every axis is uncapped.
    pub fn is_unbounded(&self) -> bool {
        *self == Effort::default()
    }

    /// Whether any SAT axis is capped.
    pub fn bounds_sat(&self) -> bool {
        self.sat_conflicts.is_some() || self.sat_decisions.is_some()
    }
}

/// How a flow or engine schedules its independent obligations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One obligation at a time, on the calling thread. The reference
    /// schedule: parallel modes must reproduce its outputs bit for bit.
    #[default]
    Sequential,
    /// A pool of `workers` OS threads. `workers <= 1` degenerates to
    /// the sequential schedule.
    Parallel {
        /// Number of worker threads.
        workers: usize,
    },
}

impl ExecMode {
    /// A parallel mode sized to the host (`std::thread::available_parallelism`).
    pub fn host_parallel() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecMode::Parallel { workers }
    }

    /// Effective worker count (always at least 1).
    pub fn workers(&self) -> usize {
        match *self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel { workers } => workers.max(1),
        }
    }

    /// True when this mode actually spawns worker threads.
    pub fn is_parallel(&self) -> bool {
        self.workers() > 1
    }

    /// Parses the `SYMBAD_WORKERS` environment variable: unset, empty,
    /// `0`, or `1` mean sequential; `N > 1` means `Parallel { N }`.
    pub fn from_env() -> Self {
        match std::env::var("SYMBAD_WORKERS") {
            Ok(v) => Self::from_workers(v.trim().parse().unwrap_or(1)),
            Err(_) => ExecMode::Sequential,
        }
    }

    /// `0` or `1` workers mean sequential; more mean parallel.
    pub fn from_workers(workers: usize) -> Self {
        if workers <= 1 {
            ExecMode::Sequential
        } else {
            ExecMode::Parallel { workers }
        }
    }
}

/// Cooperative cancellation token shared by the contestants of a [`race`].
#[derive(Debug, Default)]
pub struct Cancel {
    flag: AtomicBool,
}

impl Cancel {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Cancel::default()
    }

    /// Signals every observer to stop at its next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`Cancel::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw flag, for engines that poll an `&AtomicBool` directly.
    pub fn flag(&self) -> &AtomicBool {
        &self.flag
    }
}

/// Applies `f` to every item and returns the results **in item order**.
///
/// Sequential mode (and `workers <= 1`) runs on the calling thread.
/// Parallel mode spawns up to `workers` scoped threads that pull
/// `(index, item)` pairs from a shared queue; results are slotted back by
/// index, so the output order is independent of the completion order.
/// `f` receives the item index alongside the item.
///
/// Panics in a worker propagate to the caller (the scope joins all
/// threads before returning).
pub fn map<T, R, F>(mode: ExecMode, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = mode.workers().min(items.len().max(1));
    if workers <= 1 {
        // Run on the calling thread with no catch_unwind wrapper, so a
        // sequential panic propagates with its original payload.
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let outcomes = map_outcomes(workers, items, &f);
    outcomes
        .into_iter()
        .map(|outcome| match outcome {
            JobOutcome::Ok(r) => r,
            // Re-panic with the message alone (no wrapper text), so the
            // payload a caller's catch_unwind observes renders the same
            // whether the job ran sequentially or on a worker. The first
            // panicked slot in *item order* wins, matching the item the
            // sequential schedule would have panicked on.
            JobOutcome::Panicked { message } => panic!("{}", message),
            JobOutcome::Missing => panic!("worker delivered no result for a map slot"),
        })
        .collect()
}

/// [`map`] with panic isolation: every job runs under `catch_unwind` and
/// reports a typed [`JobOutcome`] in its slot. One panicking job cannot
/// abort the batch, poison the shared queue, or take down the scope —
/// the pool drains the remaining jobs and stays usable.
///
/// Outcomes — including panic messages — are bit-identical across worker
/// counts as long as `f` itself is deterministic per item: each job's
/// fate depends only on its `(index, item)` pair, never on the schedule.
pub fn map_supervised<T, R, F>(mode: ExecMode, items: Vec<T>, f: F) -> Vec<JobOutcome<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = mode.workers().min(items.len().max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run_caught(&f, i, item))
            .collect();
    }
    map_outcomes(workers, items, &f)
}

/// [`map_supervised`] that also reports the batch's [`PoolRunStats`]
/// (worker-per-job attribution and queue depths) for the observability
/// journal's timing lane. The outcome vector is exactly what
/// [`map_supervised`] would return — stats collection adds no
/// synchronization beyond the channel sends the pool already performs.
pub fn map_supervised_stats<T, R, F>(
    mode: ExecMode,
    items: Vec<T>,
    f: F,
) -> (Vec<JobOutcome<R>>, PoolRunStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = mode.workers().min(n.max(1));
    if workers <= 1 {
        let outcomes: Vec<JobOutcome<R>> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run_caught(&f, i, item))
            .collect();
        return (
            outcomes,
            PoolRunStats {
                workers: 1,
                jobs: n,
                worker_for_job: vec![Some(0); n],
                // The calling thread dispatches in item order: after the
                // i-th dispatch, n-1-i jobs remain.
                queue_depth_samples: (0..n).rev().collect(),
            },
        );
    }
    map_outcomes_stats(workers, items, &f)
}

/// Runs one job under `catch_unwind`, converting a panic into its typed
/// outcome.
fn run_caught<T, R, F>(f: &F, idx: usize, item: T) -> JobOutcome<R>
where
    F: Fn(usize, T) -> R,
{
    match catch_unwind(AssertUnwindSafe(|| f(idx, item))) {
        Ok(r) => JobOutcome::Ok(r),
        Err(payload) => JobOutcome::Panicked {
            message: panic_message(payload),
        },
    }
}

/// The shared worker-pool body: `workers >= 2` scoped threads pull
/// `(index, item)` jobs from a poison-recovering queue, run each under
/// `catch_unwind`, and slot outcomes back by index.
fn map_outcomes<T, R, F>(workers: usize, items: Vec<T>, f: &F) -> Vec<JobOutcome<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    map_outcomes_stats(workers, items, f).0
}

/// [`map_outcomes`] plus scheduling observation: each worker stamps its
/// index and the post-dispatch queue depth onto the result message it was
/// already sending, and the coordinator folds those into [`PoolRunStats`].
fn map_outcomes_stats<T, R, F>(
    workers: usize,
    items: Vec<T>,
    f: &F,
) -> (Vec<JobOutcome<R>>, PoolRunStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, usize, usize, JobOutcome<R>)>();
    let mut slots: Vec<JobOutcome<R>> = (0..n).map(|_| JobOutcome::Missing).collect();
    let mut stats = PoolRunStats {
        workers,
        jobs: n,
        worker_for_job: vec![None; n],
        queue_depth_samples: Vec::with_capacity(n),
    };

    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            scope.spawn(move || loop {
                let (job, depth) = {
                    let mut q = lock_recover(queue);
                    let job = q.pop_front();
                    (job, q.len())
                };
                let Some((idx, item)) = job else { break };
                let out = run_caught(f, idx, item);
                if tx.send((idx, worker_id, depth, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (idx, worker_id, depth, out) in rx {
            slots[idx] = out;
            stats.worker_for_job[idx] = Some(worker_id);
            stats.queue_depth_samples.push(depth);
        }
    });

    (slots, stats)
}

/// Runs the contestant closures until the first one produces a result;
/// the winner's `(index, result)` is returned and every other contestant
/// is told to stop via the shared [`Cancel`] token.
///
/// Contestants must treat cancellation as "abandon, answer unused" —
/// which is only sound when every contestant that *does* finish would
/// produce an equivalent verdict (e.g. a SAT portfolio on one CNF).
///
/// Sequential mode runs **only item 0** (the canonical configuration) to
/// completion — this keeps the sequential schedule independent of the
/// portfolio size. Returns `None` when `items` is empty or no contestant
/// produced a result.
///
/// Panic isolation: every contestant runs under `catch_unwind`. A
/// panicking contestant simply drops out of the race — it produces no
/// result and does *not* cancel the others, so the remaining contestants
/// still decide the obligation. Only when every contestant panics (or
/// returns `None`) does the race return `None`.
pub fn race<T, R, F>(mode: ExecMode, items: Vec<T>, f: F) -> Option<(usize, R)>
where
    T: Send,
    R: Send,
    F: Fn(usize, T, &Cancel) -> Option<R> + Sync,
{
    if items.is_empty() {
        return None;
    }
    let cancel = Cancel::new();
    if !mode.is_parallel() {
        let item = items.into_iter().next().unwrap();
        return catch_unwind(AssertUnwindSafe(|| f(0, item, &cancel)))
            .unwrap_or(None)
            .map(|r| (0, r));
    }

    let contestants = items.len().min(mode.workers());
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut winner = None;
    std::thread::scope(|scope| {
        for (idx, item) in items.into_iter().take(contestants).enumerate() {
            let tx = tx.clone();
            let cancel = &cancel;
            let f = &f;
            scope.spawn(move || {
                match catch_unwind(AssertUnwindSafe(|| f(idx, item, cancel))) {
                    Ok(Some(r)) => {
                        // First sender wins; later sends land in a channel
                        // nobody reads past the first message.
                        let _ = tx.send((idx, r));
                        cancel.cancel();
                    }
                    // A finished contestant with no result concedes and
                    // cancels (the pre-supervision behaviour); a panicked
                    // one just drops out so the others keep searching.
                    Ok(None) => cancel.cancel(),
                    Err(_) => {}
                }
            });
        }
        drop(tx);
        winner = rx.recv().ok();
        cancel.cancel();
        // Scope exit joins the losers; they observe the cancel flag.
    });
    winner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_worker_counts() {
        assert_eq!(ExecMode::Sequential.workers(), 1);
        assert!(!ExecMode::Sequential.is_parallel());
        assert_eq!(ExecMode::Parallel { workers: 0 }.workers(), 1);
        assert_eq!(ExecMode::Parallel { workers: 4 }.workers(), 4);
        assert!(ExecMode::Parallel { workers: 4 }.is_parallel());
        assert_eq!(ExecMode::from_workers(1), ExecMode::Sequential);
        assert_eq!(ExecMode::from_workers(8), ExecMode::Parallel { workers: 8 });
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let seq = map(ExecMode::Sequential, items.clone(), |i, x| {
            (i as u64) * 1000 + x * x
        });
        for workers in [2, 3, 8] {
            let par = map(ExecMode::Parallel { workers }, items.clone(), |i, x| {
                // Stagger completion so late items often finish first.
                if x % 7 == 0 {
                    std::thread::yield_now();
                }
                (i as u64) * 1000 + x * x
            });
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(map(ExecMode::Parallel { workers: 4 }, empty, |_, x: u32| x).is_empty());
        assert_eq!(
            map(ExecMode::Parallel { workers: 4 }, vec![9], |i, x| (i, x)),
            vec![(0, 9)]
        );
    }

    #[test]
    fn sequential_race_runs_canonical_item_only() {
        use std::sync::atomic::AtomicUsize;
        let touched = AtomicUsize::new(0);
        let won = race(ExecMode::Sequential, vec![10, 20, 30], |idx, item, _| {
            touched.fetch_add(1, Ordering::Relaxed);
            Some((idx, item))
        });
        assert_eq!(won, Some((0, (0, 10))));
        assert_eq!(touched.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_race_returns_a_winner_and_cancels_losers() {
        let won = race(
            ExecMode::Parallel { workers: 4 },
            vec![0u64, 1, 2, 3],
            |_, item, cancel| {
                if item == 2 {
                    return Some("fast");
                }
                // Losers spin until cancelled.
                while !cancel.is_cancelled() {
                    std::thread::yield_now();
                }
                None
            },
        );
        let (_, verdict) = won.expect("one contestant finishes");
        assert_eq!(verdict, "fast");
    }

    #[test]
    fn effort_axes_and_constructors() {
        assert!(Effort::unbounded().is_unbounded());
        assert!(!Effort::unbounded().bounds_sat());
        let e = Effort::bounded(10);
        assert!(!e.is_unbounded());
        assert!(e.bounds_sat());
        assert_eq!(e.sat_conflicts, Some(10));
        assert_eq!(e.sat_decisions, Some(160));
        assert_eq!(e.bdd_nodes, Some(2560));
        let sat_only = Effort {
            sat_decisions: Some(1),
            ..Effort::unbounded()
        };
        assert!(sat_only.bounds_sat() && !sat_only.is_unbounded());
    }

    #[test]
    fn supervised_map_isolates_panics_and_keeps_the_pool_usable() {
        silence_injected_panics();
        let items: Vec<u64> = (0..40).collect();
        let expect: Vec<JobOutcome<u64>> = items
            .iter()
            .map(|&x| {
                if x % 13 == 5 {
                    JobOutcome::Panicked {
                        message: format!("injected panic on item {x}"),
                    }
                } else {
                    JobOutcome::Ok(x * x)
                }
            })
            .collect();
        for workers in [1, 2, 3, 8] {
            let got = map_supervised(ExecMode::from_workers(workers), items.clone(), |_, x| {
                if x % 13 == 5 {
                    panic!("injected panic on item {x}");
                }
                x * x
            });
            assert_eq!(got, expect, "workers={workers}");
            // Regression: the panicking batch must leave the pool layer
            // usable — a plain map right after it still completes.
            let follow_up = map(ExecMode::from_workers(workers), items.clone(), |_, x| x + 1);
            assert_eq!(follow_up, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn plain_map_repanics_with_the_original_message() {
        silence_injected_panics();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            map(
                ExecMode::Parallel { workers: 4 },
                vec![0u32, 1, 2, 3],
                |_, x| {
                    if x >= 1 {
                        panic!("injected panic on item {x}");
                    }
                    x
                },
            )
        }));
        let message = panic_message(caught.expect_err("map propagates the panic"));
        // First panicked slot in item order, regardless of completion order.
        assert_eq!(message, "injected panic on item 1");
    }

    #[test]
    fn job_outcome_accessors() {
        let ok: JobOutcome<u8> = JobOutcome::Ok(7);
        assert_eq!(ok.clone().ok(), Some(7));
        assert!(!ok.is_panicked());
        let bad: JobOutcome<u8> = JobOutcome::Panicked {
            message: "m".into(),
        };
        assert!(bad.is_panicked());
        assert_eq!(bad.panic_message(), Some("m"));
        assert_eq!(bad.ok(), None);
        assert_eq!(JobOutcome::<u8>::Missing.ok(), None);
    }

    #[test]
    fn race_survives_panicking_contestants() {
        silence_injected_panics();
        // Contestant 0 panics; contestant 1 wins anyway.
        let won = race(
            ExecMode::Parallel { workers: 4 },
            vec![0u64, 1],
            |_, item, _| {
                if item == 0 {
                    panic!("injected panic in contestant");
                }
                Some("survivor")
            },
        );
        assert_eq!(won.map(|(_, r)| r), Some("survivor"));
        // Every contestant panicking yields no winner — not an abort.
        let none = race(
            ExecMode::Parallel { workers: 2 },
            vec![0u64, 1],
            |_, _, _| -> Option<u32> { panic!("injected panic in contestant") },
        );
        assert!(none.is_none());
        // Sequential mode runs only the canonical contestant; its panic
        // means no result.
        let seq = race(
            ExecMode::Sequential,
            vec![0u64, 1],
            |_, _, _| -> Option<u32> { panic!("injected panic in contestant") },
        );
        assert!(seq.is_none());
    }

    #[test]
    fn supervised_stats_attribute_every_job() {
        let items: Vec<u64> = (0..20).collect();
        // Sequential: everything runs on worker 0, queue drains in order.
        let (outs, stats) = map_supervised_stats(ExecMode::Sequential, items.clone(), |_, x| x);
        assert_eq!(outs.len(), 20);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.jobs, 20);
        assert!(stats.worker_for_job.iter().all(|w| *w == Some(0)));
        assert_eq!(stats.queue_depth_samples.first(), Some(&19));
        assert_eq!(stats.queue_depth_samples.last(), Some(&0));
        assert_eq!(stats.peak_depth(), 20);
        assert_eq!(stats.jobs_per_worker(), vec![20]);

        // Parallel: outcomes match, every job is attributed to a real
        // worker, and occupancy sums to the job count.
        let (pouts, pstats) =
            map_supervised_stats(ExecMode::Parallel { workers: 3 }, items, |_, x| x);
        assert_eq!(pouts, outs);
        assert_eq!(pstats.workers, 3);
        assert!(pstats
            .worker_for_job
            .iter()
            .all(|w| matches!(w, Some(id) if *id < 3)));
        assert_eq!(pstats.queue_depth_samples.len(), 20);
        assert_eq!(pstats.jobs_per_worker().iter().sum::<usize>(), 20);
        assert_eq!(pstats.peak_depth(), 20);

        // Empty batch: no samples, zero peak.
        let (eouts, estats) = map_supervised_stats(
            ExecMode::Parallel { workers: 2 },
            Vec::<u64>::new(),
            |_, x| x,
        );
        assert!(eouts.is_empty());
        assert_eq!(estats.peak_depth(), 0);
    }

    #[test]
    fn race_on_empty_is_none() {
        let r: Option<(usize, u32)> = race(
            ExecMode::Parallel { workers: 2 },
            Vec::<u32>::new(),
            |_, x, _| Some(x),
        );
        assert!(r.is_none());
    }
}
