//! Zero-dependency worker-pool execution layer.
//!
//! The verification cascade is embarrassingly parallel at the obligation
//! level: per-property BMC runs, per-fault ATPG queries, per-configuration
//! LPV checks, and SAT portfolio races share no mutable state. This crate
//! provides the two primitives those engines need — an order-preserving
//! parallel [`map`] and a first-verdict-wins [`race`] — built on
//! `std::thread::scope` and channels only (the workspace builds offline,
//! so no rayon/crossbeam).
//!
//! Determinism contract: [`map`] returns results in *item order*
//! regardless of completion order, so a caller that merges per-obligation
//! outputs sequentially observes exactly the sequential schedule. [`race`]
//! is reserved for obligations whose *verdict* is objective (e.g. SAT vs
//! UNSAT of one CNF) — any winner yields the same answer.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};

/// How a flow or engine schedules its independent obligations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One obligation at a time, on the calling thread. The reference
    /// schedule: parallel modes must reproduce its outputs bit for bit.
    #[default]
    Sequential,
    /// A pool of `workers` OS threads. `workers <= 1` degenerates to
    /// the sequential schedule.
    Parallel {
        /// Number of worker threads.
        workers: usize,
    },
}

impl ExecMode {
    /// A parallel mode sized to the host (`std::thread::available_parallelism`).
    pub fn host_parallel() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecMode::Parallel { workers }
    }

    /// Effective worker count (always at least 1).
    pub fn workers(&self) -> usize {
        match *self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel { workers } => workers.max(1),
        }
    }

    /// True when this mode actually spawns worker threads.
    pub fn is_parallel(&self) -> bool {
        self.workers() > 1
    }

    /// Parses the `SYMBAD_WORKERS` environment variable: unset, empty,
    /// `0`, or `1` mean sequential; `N > 1` means `Parallel { N }`.
    pub fn from_env() -> Self {
        match std::env::var("SYMBAD_WORKERS") {
            Ok(v) => Self::from_workers(v.trim().parse().unwrap_or(1)),
            Err(_) => ExecMode::Sequential,
        }
    }

    /// `0` or `1` workers mean sequential; more mean parallel.
    pub fn from_workers(workers: usize) -> Self {
        if workers <= 1 {
            ExecMode::Sequential
        } else {
            ExecMode::Parallel { workers }
        }
    }
}

/// Cooperative cancellation token shared by the contestants of a [`race`].
#[derive(Debug, Default)]
pub struct Cancel {
    flag: AtomicBool,
}

impl Cancel {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Cancel::default()
    }

    /// Signals every observer to stop at its next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`Cancel::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw flag, for engines that poll an `&AtomicBool` directly.
    pub fn flag(&self) -> &AtomicBool {
        &self.flag
    }
}

/// Applies `f` to every item and returns the results **in item order**.
///
/// Sequential mode (and `workers <= 1`) runs on the calling thread.
/// Parallel mode spawns up to `workers` scoped threads that pull
/// `(index, item)` pairs from a shared queue; results are slotted back by
/// index, so the output order is independent of the completion order.
/// `f` receives the item index alongside the item.
///
/// Panics in a worker propagate to the caller (the scope joins all
/// threads before returning).
pub fn map<T, R, F>(mode: ExecMode, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = mode.workers().min(items.len().max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let n = items.len();
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || loop {
                let job = queue.lock().unwrap().pop_front();
                let Some((idx, item)) = job else { break };
                let out = f(idx, item);
                if tx.send((idx, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (idx, out) in rx {
            slots[idx] = Some(out);
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("worker delivered every slot"))
        .collect()
}

/// Runs the contestant closures until the first one produces a result;
/// the winner's `(index, result)` is returned and every other contestant
/// is told to stop via the shared [`Cancel`] token.
///
/// Contestants must treat cancellation as "abandon, answer unused" —
/// which is only sound when every contestant that *does* finish would
/// produce an equivalent verdict (e.g. a SAT portfolio on one CNF).
///
/// Sequential mode runs **only item 0** (the canonical configuration) to
/// completion — this keeps the sequential schedule independent of the
/// portfolio size. Returns `None` when `items` is empty or no contestant
/// produced a result.
pub fn race<T, R, F>(mode: ExecMode, items: Vec<T>, f: F) -> Option<(usize, R)>
where
    T: Send,
    R: Send,
    F: Fn(usize, T, &Cancel) -> Option<R> + Sync,
{
    if items.is_empty() {
        return None;
    }
    let cancel = Cancel::new();
    if !mode.is_parallel() {
        let item = items.into_iter().next().unwrap();
        return f(0, item, &cancel).map(|r| (0, r));
    }

    let contestants = items.len().min(mode.workers());
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut winner = None;
    std::thread::scope(|scope| {
        for (idx, item) in items.into_iter().take(contestants).enumerate() {
            let tx = tx.clone();
            let cancel = &cancel;
            let f = &f;
            scope.spawn(move || {
                if let Some(r) = f(idx, item, cancel) {
                    // First sender wins; later sends land in a channel
                    // nobody reads past the first message.
                    let _ = tx.send((idx, r));
                }
                cancel.cancel();
            });
        }
        drop(tx);
        winner = rx.recv().ok();
        cancel.cancel();
        // Scope exit joins the losers; they observe the cancel flag.
    });
    winner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_worker_counts() {
        assert_eq!(ExecMode::Sequential.workers(), 1);
        assert!(!ExecMode::Sequential.is_parallel());
        assert_eq!(ExecMode::Parallel { workers: 0 }.workers(), 1);
        assert_eq!(ExecMode::Parallel { workers: 4 }.workers(), 4);
        assert!(ExecMode::Parallel { workers: 4 }.is_parallel());
        assert_eq!(ExecMode::from_workers(1), ExecMode::Sequential);
        assert_eq!(ExecMode::from_workers(8), ExecMode::Parallel { workers: 8 });
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let seq = map(ExecMode::Sequential, items.clone(), |i, x| {
            (i as u64) * 1000 + x * x
        });
        for workers in [2, 3, 8] {
            let par = map(ExecMode::Parallel { workers }, items.clone(), |i, x| {
                // Stagger completion so late items often finish first.
                if x % 7 == 0 {
                    std::thread::yield_now();
                }
                (i as u64) * 1000 + x * x
            });
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(map(ExecMode::Parallel { workers: 4 }, empty, |_, x: u32| x).is_empty());
        assert_eq!(
            map(ExecMode::Parallel { workers: 4 }, vec![9], |i, x| (i, x)),
            vec![(0, 9)]
        );
    }

    #[test]
    fn sequential_race_runs_canonical_item_only() {
        use std::sync::atomic::AtomicUsize;
        let touched = AtomicUsize::new(0);
        let won = race(ExecMode::Sequential, vec![10, 20, 30], |idx, item, _| {
            touched.fetch_add(1, Ordering::Relaxed);
            Some((idx, item))
        });
        assert_eq!(won, Some((0, (0, 10))));
        assert_eq!(touched.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_race_returns_a_winner_and_cancels_losers() {
        let won = race(
            ExecMode::Parallel { workers: 4 },
            vec![0u64, 1, 2, 3],
            |_, item, cancel| {
                if item == 2 {
                    return Some("fast");
                }
                // Losers spin until cancelled.
                while !cancel.is_cancelled() {
                    std::thread::yield_now();
                }
                None
            },
        );
        let (_, verdict) = won.expect("one contestant finishes");
        assert_eq!(verdict, "fast");
    }

    #[test]
    fn race_on_empty_is_none() {
        let r: Option<(usize, u32)> = race(
            ExecMode::Parallel { workers: 2 },
            Vec::<u32>::new(),
            |_, x, _| Some(x),
        );
        assert!(r.is_none());
    }
}
