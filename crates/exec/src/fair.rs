//! Deterministic deficit-round-robin (DRR) fair queueing.
//!
//! The batch service admits jobs from many tenants into one logical
//! queue; draining that queue strictly FIFO would let one tenant's 1000
//! queued jobs starve another's 1. [`DrrScheduler`] holds one lane per
//! tenant and drains them with the classic deficit-round-robin
//! discipline: every round each backlogged lane's *deficit* grows by a
//! fixed quantum, and a lane may dispatch work while its deficit covers
//! the head item's cost. Over any window, each backlogged lane therefore
//! receives service proportional to the quantum regardless of how much
//! the others have queued — O(1) per dispatch, no priorities to starve.
//!
//! Determinism contract: the dispatch order is a pure function of the
//! push sequence (lane order is first-push order, the round-robin cursor
//! advances deterministically, and there is no clock anywhere), so a
//! service draining the same submissions produces the same schedule on
//! every host — which is what makes batch reports replayable.

use std::collections::VecDeque;

/// One tenant's backlog.
#[derive(Debug)]
struct Lane<T> {
    /// Lane key (tenant label).
    key: String,
    /// Accumulated service credit, in cost units.
    deficit: u64,
    /// Queued items with their costs, FIFO.
    items: VecDeque<(u64, T)>,
}

/// A deterministic deficit-round-robin scheduler over named lanes.
///
/// ```
/// let mut drr = exec::DrrScheduler::new(1);
/// for i in 0..3 {
///     drr.push("heavy", 1, format!("h{i}"));
/// }
/// drr.push("light", 1, "l0".to_owned());
/// // The backlogged lanes alternate: "light" is served second, not last.
/// let order: Vec<String> = drr.drain().into_iter().map(|(lane, _)| lane).collect();
/// assert_eq!(order, ["heavy", "light", "heavy", "heavy"]);
/// ```
#[derive(Debug)]
pub struct DrrScheduler<T> {
    /// Service credit granted to a backlogged lane per round.
    quantum: u64,
    /// Lanes in first-push order (the deterministic round-robin order).
    lanes: Vec<Lane<T>>,
    /// Index of the lane the next dispatch visits first.
    cursor: usize,
    /// Whether the lane under the cursor already received its quantum
    /// for the current visit (a visit grants once, then serves while the
    /// deficit lasts).
    granted: bool,
    /// Total queued items across lanes.
    len: usize,
}

impl<T> DrrScheduler<T> {
    /// An empty scheduler granting `quantum` cost units of service
    /// credit per round (clamped to ≥ 1 so dispatch always progresses).
    pub fn new(quantum: u64) -> Self {
        DrrScheduler {
            quantum: quantum.max(1),
            lanes: Vec::new(),
            cursor: 0,
            granted: false,
            len: 0,
        }
    }

    /// The per-round service credit.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Enqueues `item` on `lane` with the given scheduling `cost`
    /// (clamped to ≥ 1). A new lane joins the round-robin order at the
    /// back.
    pub fn push(&mut self, lane: &str, cost: u64, item: T) {
        let cost = cost.max(1);
        match self.lanes.iter_mut().find(|l| l.key == lane) {
            Some(l) => l.items.push_back((cost, item)),
            None => self.lanes.push(Lane {
                key: lane.to_owned(),
                deficit: 0,
                items: VecDeque::from([(cost, item)]),
            }),
        }
        self.len += 1;
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current backlog per lane, in round-robin (first-push) order.
    /// Lanes that have gone idle stay listed with a backlog of 0.
    pub fn backlog(&self) -> Vec<(String, usize)> {
        self.lanes
            .iter()
            .map(|l| (l.key.clone(), l.items.len()))
            .collect()
    }

    /// Dispatches the next item in DRR order, returning its lane key.
    ///
    /// A lane keeps dispatching while its deficit covers the head cost
    /// (so a quantum's worth of cheap items stays contiguous), idle
    /// lanes forfeit their deficit (no banking credit while empty), and
    /// a head item costlier than the quantum accumulates credit across
    /// rounds while the other lanes keep being served.
    pub fn pop(&mut self) -> Option<(String, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let nlanes = self.lanes.len();
            let lane = &mut self.lanes[self.cursor];
            if lane.items.is_empty() {
                lane.deficit = 0;
                self.advance(nlanes);
                continue;
            }
            if !self.granted {
                lane.deficit += self.quantum;
                self.granted = true;
            }
            let head_cost = lane.items.front().expect("non-empty lane").0;
            if lane.deficit >= head_cost {
                let (cost, item) = lane.items.pop_front().expect("non-empty lane");
                lane.deficit -= cost;
                let key = lane.key.clone();
                if lane.items.is_empty() {
                    lane.deficit = 0;
                    self.advance(nlanes);
                }
                self.len -= 1;
                return Some((key, item));
            }
            // Not enough credit this visit; the deficit persists and the
            // next lane gets its turn.
            self.advance(nlanes);
        }
    }

    /// Moves the round-robin cursor to the next lane, ending the current
    /// visit (the next arrival grants a fresh quantum).
    fn advance(&mut self, nlanes: usize) {
        self.cursor = (self.cursor + 1) % nlanes;
        self.granted = false;
    }

    /// Dispatches everything, returning `(lane, item)` pairs in DRR
    /// order.
    pub fn drain(&mut self) -> Vec<(String, T)> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(entry) = self.pop() {
            out.push(entry);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(drr: &mut DrrScheduler<u32>) -> Vec<(String, u32)> {
        drr.drain()
    }

    #[test]
    fn heavy_lane_cannot_starve_light_lane() {
        let mut drr = DrrScheduler::new(1);
        for i in 0..1000 {
            drr.push("heavy", 1, i);
        }
        drr.push("light", 1, 9999);
        let out = order(&mut drr);
        assert_eq!(out.len(), 1001);
        // The light tenant's single job is served on the first full
        // round — position 1, not position 1000.
        let light_at = out.iter().position(|(l, _)| l == "light").unwrap();
        assert_eq!(light_at, 1);
        // FIFO within the heavy lane.
        let heavy: Vec<u32> = out
            .iter()
            .filter(|(l, _)| l == "heavy")
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(heavy, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn dispatch_interleaves_proportionally() {
        let mut drr = DrrScheduler::new(1);
        for i in 0..3 {
            drr.push("a", 1, i);
            drr.push("b", 1, 10 + i);
        }
        let lanes: Vec<String> = order(&mut drr).into_iter().map(|(l, _)| l).collect();
        assert_eq!(lanes, ["a", "b", "a", "b", "a", "b"]);
    }

    #[test]
    fn costly_head_accumulates_credit_across_rounds() {
        let mut drr = DrrScheduler::new(1);
        drr.push("big", 3, 0);
        for i in 0..4 {
            drr.push("small", 1, 1 + i);
        }
        let out = order(&mut drr);
        // The cost-3 job waits until its lane has banked 3 quanta (one
        // per round); the small lane is served meanwhile and never
        // starves.
        let big_at = out.iter().position(|(l, _)| l == "big").unwrap();
        assert_eq!(big_at, 2, "order was {out:?}");
    }

    #[test]
    fn idle_lanes_forfeit_deficit() {
        let mut drr = DrrScheduler::new(5);
        drr.push("a", 2, 0);
        // Serving leaves lane "a" 3 units of unspent credit — forfeited
        // when the lane goes idle.
        assert_eq!(drr.pop(), Some(("a".into(), 0)));
        drr.push("b", 5, 1);
        drr.push("a", 8, 2);
        // Had the 3 units banked, "a" would cover its cost-8 head on the
        // first new visit (3 + 5) and burst ahead of "b"; forfeiting
        // makes it wait a full extra round.
        let lanes: Vec<String> = order(&mut drr).into_iter().map(|(l, _)| l).collect();
        assert_eq!(lanes, ["b", "a"]);
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_push_sequence() {
        let build = || {
            let mut drr: DrrScheduler<u32> = DrrScheduler::new(2);
            for i in 0..5u32 {
                drr.push("t1", 1 + u64::from(i % 2), i);
                drr.push("t2", 1, 100 + i);
            }
            drr.push("t3", 4, 200);
            drr
        };
        let a = order(&mut build());
        let b = order(&mut build());
        assert_eq!(a, b);
        assert_eq!(a.len(), 11);
    }

    #[test]
    fn bookkeeping_and_edge_cases() {
        let mut drr: DrrScheduler<u32> = DrrScheduler::new(0); // clamps to 1
        assert_eq!(drr.quantum(), 1);
        assert!(drr.is_empty());
        assert_eq!(drr.pop(), None);
        drr.push("a", 0, 7); // cost clamps to 1
        drr.push("b", 1, 8);
        assert_eq!(drr.len(), 2);
        assert_eq!(drr.backlog(), vec![("a".into(), 1), ("b".into(), 1)]);
        assert_eq!(drr.pop(), Some(("a".into(), 7)));
        assert_eq!(drr.backlog(), vec![("a".into(), 0), ("b".into(), 1)]);
        assert_eq!(drr.drain(), vec![("b".into(), 8)]);
        assert!(drr.is_empty());
    }
}
