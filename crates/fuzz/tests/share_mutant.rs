//! Mutant sanity check for the clause-sharing oracle: with the
//! `share-mutant` feature the exporter flips one literal in every 64th
//! clause it offers, producing clauses the source formula does not
//! entail. The share differential family must catch the corruption well
//! inside the CI budget, and the reported reproducer must replay to the
//! identical disagreement.
//!
//! Run with `cargo test -p fuzz --features share-mutant`. The test is a
//! no-op without the feature so plain `cargo test` stays green.

#![cfg(feature = "share-mutant")]

use fuzz::{run, run_repro, Family, FuzzConfig};

#[test]
fn the_corrupting_exporter_is_caught_and_its_reproducer_replays() {
    // The bar is "caught in under 1000 iterations"; every iteration's
    // conflict-rich sub-case offers well past the 64-clause corruption
    // stride, so in practice the first few iterations already flag it.
    let config = FuzzConfig {
        seed: 0,
        iters: 40,
        steering: true,
    };
    let outcome = run(Family::Share, &config);
    assert!(
        !outcome.disagreements.is_empty(),
        "the corrupting exporter survived {} iterations of the share oracle",
        config.iters
    );

    // The first disagreement's seed:family:iter ID must regenerate the
    // same case, the same detail, and the same minimized witness.
    let first = &outcome.disagreements[0];
    let replayed = run_repro(&first.repro)
        .unwrap_or_else(|| panic!("replaying {} found nothing", first.repro));
    assert_eq!(
        &replayed, first,
        "replay of {} is not bit-identical",
        first.repro
    );

    // The oracle should localize the unsoundness, not just notice it:
    // at least one disagreement must name a non-entailed export or a
    // verdict flip.
    assert!(
        outcome
            .disagreements
            .iter()
            .any(|d| { d.detail.contains("NOT entailed") || d.detail.contains("flipped") }),
        "no disagreement names the corruption: {:?}",
        outcome
            .disagreements
            .iter()
            .map(|d| &d.detail)
            .collect::<Vec<_>>()
    );
}
