//! Mutant sanity check: with the `vm-mutant` feature the bytecode VM
//! silently skips the width mask on every third scalar assignment. The
//! interpreter-vs-VM differential oracle must catch the injected
//! miscompile within the CI smoke budget, and the reported reproducer
//! must replay to the identical disagreement.
//!
//! Run with `cargo test -p fuzz --features vm-mutant`. The test is a
//! no-op without the feature so plain `cargo test` stays green.

#![cfg(feature = "vm-mutant")]

use fuzz::{run, run_repro, Family, FuzzConfig};

#[test]
fn the_miscompiled_vm_is_caught_and_its_reproducer_replays() {
    let config = FuzzConfig {
        seed: 0,
        iters: 80,
        steering: true,
    };
    let outcome = run(Family::Vm, &config);
    assert!(
        !outcome.disagreements.is_empty(),
        "the mutant VM survived {} iterations of the differential oracle",
        config.iters
    );

    // The first disagreement's seed:family:iter ID must regenerate the
    // same case, the same detail, and the same minimized witness.
    let first = &outcome.disagreements[0];
    let replayed = run_repro(&first.repro)
        .unwrap_or_else(|| panic!("replaying {} found nothing", first.repro));
    assert_eq!(
        &replayed, first,
        "replay of {} is not bit-identical",
        first.repro
    );

    // The minimized witness must still carry the failing function so a
    // bug report is actionable without re-running the fuzzer.
    assert!(
        outcome
            .disagreements
            .iter()
            .all(|d| !d.detail.is_empty() && d.minimized.contains("fuzzed")),
        "disagreements must carry a detail and the minimized function"
    );
}
