//! Mutant sanity check: with the `sat-mutant` feature the CDCL solver
//! silently drops every third unit propagation. The SAT differential
//! oracle must catch the injected bug within the CI smoke budget, and
//! the reported reproducer must replay to the identical disagreement.
//!
//! Run with `cargo test -p fuzz --features sat-mutant`. The test is a
//! no-op without the feature so plain `cargo test` stays green.

#![cfg(feature = "sat-mutant")]

use fuzz::{run, run_repro, Family, FuzzConfig};

#[test]
fn the_broken_solver_is_caught_and_its_reproducer_replays() {
    let config = FuzzConfig {
        seed: 0,
        iters: 60,
        steering: true,
    };
    let outcome = run(Family::Sat, &config);
    assert!(
        !outcome.disagreements.is_empty(),
        "the mutant solver survived {} iterations of the SAT oracle",
        config.iters
    );

    // The first disagreement's seed:family:iter ID must regenerate the
    // same case, the same detail, and the same minimized witness.
    let first = &outcome.disagreements[0];
    let replayed = run_repro(&first.repro)
        .unwrap_or_else(|| panic!("replaying {} found nothing", first.repro));
    assert_eq!(
        &replayed, first,
        "replay of {} is not bit-identical",
        first.repro
    );

    // Differential fuzzing should localize the bug class, not just wave
    // at it: at least one disagreement must come from model validation
    // or a verdict mismatch against an independent engine.
    assert!(
        outcome
            .disagreements
            .iter()
            .any(|d| !d.detail.is_empty() && !d.minimized.is_empty()),
        "disagreements must carry a detail and a minimized case"
    );
}
