//! The supervision oracle family: random panic and budget scripts
//! against the supervised execution layer's survival invariants.
//!
//! Each iteration generates three scripts:
//!
//! 1. **Pool survival** — a batch of jobs, each scripted to panic (with a
//!    unique marker message) or to return a value. The expected
//!    [`exec::JobOutcome`] vector is computed directly from the script;
//!    [`exec::map_supervised`] must reproduce it bit-identically for
//!    worker counts 1, 2, and 3 (panicked slots carry their exact
//!    message; every healthy job still completes), and a follow-up plain
//!    [`exec::map`] proves the process survived the poisoned queues.
//! 2. **Budget determinism** — a random CNF solved under a small random
//!    [`exec::Effort`] by two fresh solvers: both must reach the same
//!    outcome (exhausted at the same point, or the same verdict), and a
//!    decided budgeted verdict must agree with the unbudgeted reference.
//! 3. **Race survival** — a [`exec::race`] whose contestants panic,
//!    concede, or answer by script: the winner (if any) must be a
//!    contestant whose script really answers, and a panicking contestant
//!    must never take the pool down.
//!
//! All injected panics carry the `injected panic` marker so
//! [`exec::silence_injected_panics`] keeps the test output clean.

use crate::rng::FuzzRng;
use crate::{Failure, FamilyOutcome};
use sat::{Lit, Solver, Var};

/// One scripted job for the pool/race scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Job {
    /// Panic with `injected panic #<code>`.
    Panic(u64),
    /// Return the value.
    Value(u64),
    /// (Race only) concede without an answer.
    Concede,
}

/// Generation profile decoded from the coverage-steering bias word.
struct Profile {
    jobs_lo: usize,
    jobs_hi: usize,
    panic_pct: u64,
    vars_lo: usize,
    vars_hi: usize,
    conflict_cap_hi: u64,
}

impl Profile {
    fn from_bias(bias: u64) -> Profile {
        let jobs_lo = 2 + (bias & 3) as usize; // 2..=5
        let vars_lo = 4 + ((bias >> 6) & 3) as usize; // 4..=7
        Profile {
            jobs_lo,
            jobs_hi: jobs_lo + 3 + ((bias >> 2) & 7) as usize,
            panic_pct: 20 + ((bias >> 5) & 1) * 30,
            vars_lo,
            vars_hi: (vars_lo + 1 + ((bias >> 8) & 3) as usize).min(10),
            conflict_cap_hi: 2 + ((bias >> 10) & 15),
        }
    }
}

fn job_message(code: u64) -> String {
    format!("injected panic #{code}")
}

fn run_job(job: Job) -> u64 {
    match job {
        Job::Panic(code) => panic!("{}", job_message(code)),
        Job::Value(v) => v.wrapping_mul(3).wrapping_add(1),
        Job::Concede => unreachable!("concede is race-only"),
    }
}

fn render_jobs(label: &str, jobs: &[Job]) -> String {
    let script: Vec<String> = jobs
        .iter()
        .map(|j| match j {
            Job::Panic(code) => format!("panic#{code}"),
            Job::Value(v) => format!("value:{v}"),
            Job::Concede => "concede".to_owned(),
        })
        .collect();
    format!("{label} script: [{}]", script.join(", "))
}

fn random_cnf(rng: &mut FuzzRng, profile: &Profile) -> (usize, Vec<Vec<i64>>) {
    let num_vars = rng.range_usize(profile.vars_lo, profile.vars_hi);
    let num_clauses = num_vars * 4;
    let clauses = (0..num_clauses)
        .map(|_| {
            let len = 2 + (rng.below(2) as usize);
            (0..len)
                .map(|_| {
                    let v = rng.range_usize(1, num_vars) as i64;
                    if rng.flip() {
                        v
                    } else {
                        -v
                    }
                })
                .collect()
        })
        .collect();
    (num_vars, clauses)
}

fn load_solver(num_vars: usize, clauses: &[Vec<i64>]) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for clause in clauses {
        solver.add_clause(
            clause
                .iter()
                .map(|&l| Lit::with_polarity(vars[(l.unsigned_abs() - 1) as usize], l > 0)),
        );
    }
    solver
}

/// Runs one supervision iteration. See the module docs for the scripts.
pub fn run_one(rng: &mut FuzzRng, bias: u64) -> FamilyOutcome {
    exec::silence_injected_panics();
    let profile = Profile::from_bias(bias);
    let mut counters: Vec<u64> = Vec::new();
    let mut failure: Option<Failure> = None;
    let fail = |failure: &mut Option<Failure>, detail: String, minimized: String| {
        if failure.is_none() {
            *failure = Some(Failure { detail, minimized });
        }
    };

    // ── Script 1: pool survival under scripted panics ─────────────────
    let n = rng.range_usize(profile.jobs_lo, profile.jobs_hi);
    let jobs: Vec<Job> = (0..n)
        .map(|_| {
            if rng.chance(profile.panic_pct, 100) {
                Job::Panic(rng.below(1 << 16))
            } else {
                Job::Value(rng.below(1 << 16))
            }
        })
        .collect();
    let expected: Vec<exec::JobOutcome<u64>> = jobs
        .iter()
        .map(|&j| match j {
            Job::Panic(code) => exec::JobOutcome::Panicked {
                message: job_message(code),
            },
            Job::Value(v) => exec::JobOutcome::Ok(v.wrapping_mul(3).wrapping_add(1)),
            Job::Concede => unreachable!(),
        })
        .collect();
    let panicking = jobs.iter().filter(|j| matches!(j, Job::Panic(_))).count();
    counters.push(n as u64);
    counters.push(panicking as u64);
    for workers in [1usize, 2, 3] {
        let got = exec::map_supervised(
            exec::ExecMode::from_workers(workers),
            jobs.clone(),
            |_, j| run_job(j),
        );
        if got != expected {
            fail(
                &mut failure,
                format!(
                    "map_supervised with {workers} workers diverged from the script: \
                     got {got:?}, expected {expected:?}"
                ),
                render_jobs("pool", &jobs),
            );
        }
    }
    // The process (and any queue mutex) survived every panic: a plain
    // parallel map over fresh values must still complete.
    let probe: Vec<u64> = (0..n as u64).collect();
    let echoed = exec::map(
        exec::ExecMode::Parallel { workers: 2 },
        probe.clone(),
        |_, x| x,
    );
    if echoed != probe {
        fail(
            &mut failure,
            format!("post-panic pool probe returned {echoed:?}"),
            render_jobs("pool", &jobs),
        );
    }

    // ── Script 2: deterministic budget exhaustion ─────────────────────
    let (num_vars, clauses) = random_cnf(rng, &profile);
    let effort = exec::Effort {
        sat_conflicts: Some(rng.below(profile.conflict_cap_hi)),
        sat_decisions: Some(rng.range(1, 64)),
        bdd_nodes: None,
    };
    let outcome_of = |result: &sat::BudgetedResult| match result.decided() {
        None => 0u64,
        Some(r) if r.is_unsat() => 1,
        Some(_) => 2,
    };
    let first = load_solver(num_vars, &clauses).solve_budgeted(&[], &effort);
    let second = load_solver(num_vars, &clauses).solve_budgeted(&[], &effort);
    if outcome_of(&first) != outcome_of(&second) {
        fail(
            &mut failure,
            format!(
                "same CNF + same budget {effort:?} gave different outcomes: \
                 {first:?} vs {second:?}"
            ),
            format!("{num_vars} vars, clauses {clauses:?}"),
        );
    }
    counters.push(outcome_of(&first));
    if let Some(decided) = first.decided() {
        let reference = load_solver(num_vars, &clauses).solve();
        if decided.is_unsat() != reference.is_unsat() {
            fail(
                &mut failure,
                format!(
                    "budgeted verdict {decided:?} disagrees with the unbudgeted \
                     reference {reference:?}"
                ),
                format!("{num_vars} vars, clauses {clauses:?}"),
            );
        }
    }

    // ── Script 3: race survival ───────────────────────────────────────
    let m = rng.range_usize(2, 4);
    let contestants: Vec<Job> = (0..m)
        .map(|_| match rng.below(3) {
            0 => Job::Panic(rng.below(1 << 16)),
            1 => Job::Concede,
            _ => Job::Value(rng.below(1 << 16)),
        })
        .collect();
    let race_f = |idx: usize, j: Job, _cancel: &exec::Cancel| match j {
        Job::Panic(code) => panic!("{}", job_message(code)),
        Job::Concede => None,
        Job::Value(v) => Some((idx as u64) << 32 | v),
    };
    // Sequential race runs contestant 0 only; its outcome is fully
    // scripted.
    let seq = exec::race(exec::ExecMode::Sequential, contestants.clone(), race_f);
    let seq_expected = match contestants[0] {
        Job::Value(v) => Some((0, v)),
        _ => None,
    };
    if seq != seq_expected.map(|(i, v)| (i, (i as u64) << 32 | v)) {
        fail(
            &mut failure,
            format!("sequential race returned {seq:?}, script says {seq_expected:?}"),
            render_jobs("race", &contestants),
        );
    }
    // Parallel race: the winner (if any) must be a contestant whose
    // script answers, carrying its exact scripted value — and an
    // all-panic/concede field must yield no winner at all.
    let par = exec::race(
        exec::ExecMode::Parallel { workers: m },
        contestants.clone(),
        race_f,
    );
    let answerers: Vec<usize> = contestants
        .iter()
        .enumerate()
        .filter_map(|(i, j)| matches!(j, Job::Value(_)).then_some(i))
        .collect();
    match par {
        Some((idx, value)) => {
            let valid = matches!(contestants.get(idx), Some(&Job::Value(v))
                if value == (idx as u64) << 32 | v);
            if !valid {
                fail(
                    &mut failure,
                    format!("race winner ({idx}, {value}) is not a scripted answerer"),
                    render_jobs("race", &contestants),
                );
            }
        }
        None => {
            if !answerers.is_empty() {
                fail(
                    &mut failure,
                    format!("race found no winner but contestants {answerers:?} answer"),
                    render_jobs("race", &contestants),
                );
            }
        }
    }
    counters.push(m as u64);
    counters.push(answerers.len() as u64);

    FamilyOutcome { counters, failure }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repro::ReproId;
    use crate::Family;

    #[test]
    fn scripted_iterations_find_no_failures() {
        for iter in 0..24 {
            let id = ReproId {
                seed: 11,
                family: Family::Supervise,
                iter,
            };
            let mut rng = FuzzRng::for_iter(&id);
            let outcome = run_one(&mut rng, iter.wrapping_mul(0x9E37_79B9));
            assert_eq!(outcome.failure.map(|f| f.detail), None, "iteration {iter}");
            assert!(!outcome.counters.is_empty());
        }
    }

    #[test]
    fn iterations_are_deterministic() {
        let id = ReproId {
            seed: 3,
            family: Family::Supervise,
            iter: 5,
        };
        let a = run_one(&mut FuzzRng::for_iter(&id), 7);
        let b = run_one(&mut FuzzRng::for_iter(&id), 7);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.failure, b.failure);
    }
}
