//! The model-checking oracle family: random sequential netlists with
//! exhaustively known reachable-state ground truth.
//!
//! Cases are built from a [`McCase`] recipe — pools of word- and
//! bit-width signals, random ops, random register feedback — sized so an
//! explicit-state breadth-first search over all states and input
//! combinations is exact and cheap. Every output is input-independent by
//! construction, so an invariant's truth value at a state is well
//! defined; the BFS yields the earliest violation depth, and five
//! independent engines must agree with it and with each other:
//!
//! * [`mc::bmc`] within the bound (earliest-depth trace, replayed
//!   concretely through [`hdl::Rtl::step`]),
//! * [`mc::induction`] (sound verdicts only; `Unknown` is allowed),
//! * [`mc::reach`] BDD reachability (exact),
//! * cached cold/warm runs vs the uncached engine,
//! * [`mc::bmc::check_many`] across worker counts vs the sequential run,
//!   and instrumented vs plain.

use crate::rng::FuzzRng;
use crate::shrink;
use crate::{Evaluation, FamilyOutcome};
use behav::BinOp;
use hdl::Rtl;
use mc::prop::{BoolExpr, Property};
use mc::Verdict;
use std::collections::HashMap;

/// One random op in the recipe; `kind` selects the shape, operand
/// indices are taken modulo the pool sizes so any recipe builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecipe {
    /// Shape selector (interpreted modulo the number of shapes).
    pub kind: u8,
    /// First operand (pool index).
    pub a: usize,
    /// Second operand (pool index).
    pub b: usize,
    /// Third operand (mux selector; pool index).
    pub c: usize,
}

/// One register: value width class, reset value, and the pool index of
/// its next-state driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegRecipe {
    /// True for a 1-bit register, false for a word register.
    pub bit: bool,
    /// Reset value (masked to the width).
    pub init: u64,
    /// Next-state driver (index into the matching pool, modulo its size).
    pub next: usize,
}

/// One invariant atom: `o<output> <cmp> value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomRecipe {
    /// Output index (modulo the output count).
    pub output: usize,
    /// Comparison selector.
    pub cmp: u8,
    /// Right-hand constant (masked to the word width).
    pub value: u64,
}

/// A full model-checking fuzz case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McCase {
    /// Word width for the value pool (bit pool is always width 1).
    pub word_width: u32,
    /// Registers (at least one).
    pub regs: Vec<RegRecipe>,
    /// Primary inputs (`true` = 1-bit, `false` = word).
    pub inputs: Vec<bool>,
    /// Combinational ops layered over the pools.
    pub ops: Vec<OpRecipe>,
    /// Output drivers (indices into the input-independent word pool).
    pub outputs: Vec<usize>,
    /// Invariant atoms (at least one).
    pub atoms: Vec<AtomRecipe>,
    /// True to AND the atoms, false to OR them.
    pub conjunction: bool,
    /// BMC bound.
    pub bound: u32,
    /// Induction depth.
    pub k: u32,
}

/// Generates one random case under the coverage bias.
pub fn generate(rng: &mut FuzzRng, bias: u64) -> McCase {
    let word_width = 2 + (bias & 1) as u32;
    let regs = (0..rng.range(1, 1 + (bias >> 1 & 1)) + 1)
        .map(|_| RegRecipe {
            bit: rng.chance(1, 4),
            init: rng.below(1 << word_width),
            next: rng.range_usize(0, 40),
        })
        .collect();
    let inputs = (0..rng.range(0, 2)).map(|_| rng.flip()).collect();
    let ops = (0..rng.range(2, 6 + (bias >> 2 & 3)))
        .map(|_| OpRecipe {
            kind: rng.below(8) as u8,
            a: rng.range_usize(0, 40),
            b: rng.range_usize(0, 40),
            c: rng.range_usize(0, 40),
        })
        .collect();
    let outputs = (0..rng.range(1, 3))
        .map(|_| rng.range_usize(0, 40))
        .collect();
    let atoms = (0..rng.range(1, 2 + (bias >> 4 & 1)))
        .map(|_| AtomRecipe {
            output: rng.range_usize(0, 8),
            cmp: rng.below(6) as u8,
            value: rng.below(1 << word_width),
        })
        .collect();
    McCase {
        word_width,
        regs,
        inputs,
        ops,
        outputs,
        atoms,
        conjunction: rng.flip(),
        bound: rng.range(2, 6) as u32,
        k: rng.range(1, 4) as u32,
    }
}

/// Builds the recipe into a netlist and its invariant property.
///
/// Construction is total: every index is reduced modulo its pool, so any
/// recipe (including shrunk ones) yields a well-formed [`Rtl`]. Outputs
/// draw only from input-independent signals, which is what makes the
/// explicit-state ground truth in [`ground_truth_depth`] exact.
pub fn build(case: &McCase) -> (Rtl, Property) {
    let mut rtl = Rtl::new("fuzzed");
    let w = case.word_width;
    // (signal, depends-on-input) pools.
    let mut words: Vec<(hdl::SigId, bool)> = Vec::new();
    let mut bits: Vec<(hdl::SigId, bool)> = Vec::new();
    for v in [0u64, 1, (1 << w) - 1] {
        let c = rtl.constant(v, w);
        words.push((c, false));
    }
    for v in [0u64, 1] {
        let c = rtl.constant(v, 1);
        bits.push((c, false));
    }
    let mut reg_ids = Vec::new();
    for (i, r) in case.regs.iter().enumerate() {
        let width = if r.bit { 1 } else { w };
        let id = rtl.reg(&format!("r{i}"), width, r.init & ((1 << width) - 1));
        reg_ids.push(id);
        if r.bit {
            bits.push((id, false));
        } else {
            words.push((id, false));
        }
    }
    for (i, &bit) in case.inputs.iter().enumerate() {
        let id = rtl.input(&format!("i{i}"), if bit { 1 } else { w });
        if bit {
            bits.push((id, true));
        } else {
            words.push((id, true));
        }
    }
    for op in &case.ops {
        match op.kind % 8 {
            0..=2 => {
                let bin = [BinOp::Add, BinOp::Sub, BinOp::Xor][(op.kind % 8) as usize];
                let (a, da) = words[op.a % words.len()];
                let (b, db) = words[op.b % words.len()];
                let id = rtl.binary(bin, a, b);
                words.push((id, da || db));
            }
            3 => {
                let bin = [BinOp::And, BinOp::Or][op.a % 2];
                let (a, da) = words[op.a % words.len()];
                let (b, db) = words[op.b % words.len()];
                let id = rtl.binary(bin, a, b);
                words.push((id, da || db));
            }
            4 => {
                let (s, ds) = bits[op.c % bits.len()];
                let (a, da) = words[op.a % words.len()];
                let (b, db) = words[op.b % words.len()];
                let id = rtl.mux(s, a, b);
                words.push((id, ds || da || db));
            }
            5 => {
                let cmp = [BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Ge][op.c % 4];
                let (a, da) = words[op.a % words.len()];
                let (b, db) = words[op.b % words.len()];
                let id = rtl.binary(cmp, a, b);
                bits.push((id, da || db));
            }
            6 => {
                let bin = [BinOp::And, BinOp::Or, BinOp::Xor][op.c % 3];
                let (a, da) = bits[op.a % bits.len()];
                let (b, db) = bits[op.b % bits.len()];
                let id = rtl.binary(bin, a, b);
                bits.push((id, da || db));
            }
            _ => {
                let (a, da) = words[op.a % words.len()];
                let id = rtl.not(a);
                words.push((id, da));
            }
        }
    }
    for (i, r) in case.regs.iter().enumerate() {
        let pool = if r.bit { &bits } else { &words };
        let (next, _) = pool[r.next % pool.len()];
        rtl.set_next(reg_ids[i], next);
    }
    // Outputs: input-independent word signals only (constants guarantee
    // the candidate list is never empty).
    let free: Vec<hdl::SigId> = words
        .iter()
        .filter(|&&(_, d)| !d)
        .map(|&(s, _)| s)
        .collect();
    for (i, &sel) in case.outputs.iter().enumerate() {
        rtl.output(&format!("o{i}"), free[sel % free.len()]);
    }
    let n_out = case.outputs.len().max(1);
    let mut expr: Option<BoolExpr> = None;
    for atom in &case.atoms {
        let name = format!("o{}", atom.output % n_out);
        let value = atom.value & ((1 << w) - 1);
        let a = match atom.cmp % 6 {
            0 => BoolExpr::eq(&name, value),
            1 => BoolExpr::ne(&name, value),
            2 => BoolExpr::lt(&name, value),
            3 => BoolExpr::le(&name, value),
            4 => BoolExpr::gt(&name, value),
            _ => BoolExpr::ge(&name, value),
        };
        expr = Some(match expr {
            None => a,
            Some(e) if case.conjunction => BoolExpr::and(e, a),
            Some(e) => BoolExpr::or(e, a),
        });
    }
    let prop = Property::invariant("fuzzed", expr.expect("at least one atom"));
    (rtl, prop)
}

/// All input assignments of the netlist, as flat vectors.
fn input_space(rtl: &Rtl) -> Vec<Vec<u64>> {
    let widths: Vec<u32> = rtl.inputs().iter().map(|&i| rtl.width(i)).collect();
    let mut combos = vec![Vec::new()];
    for w in widths {
        let mut next = Vec::new();
        for c in &combos {
            for v in 0..(1u64 << w) {
                let mut c = c.clone();
                c.push(v);
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

/// Whether the invariant holds on the outputs produced in `state`
/// (outputs are input-independent, so any input vector works).
fn holds_in_state(rtl: &Rtl, prop: &Property, state: &[u64], inputs: &[u64]) -> bool {
    let (out_values, _) = rtl.step(inputs, state);
    let frame: Vec<(String, u64)> = rtl
        .outputs()
        .iter()
        .zip(out_values)
        .map(|((name, _), v)| (name.clone(), v))
        .collect();
    prop.holds_on_trace(&[frame])
}

/// Explicit-state BFS ground truth: the earliest cycle at which some
/// reachable state violates the invariant, or `None` if none does.
pub fn ground_truth_depth(rtl: &Rtl, prop: &Property) -> Option<u64> {
    let inputs = input_space(rtl);
    let zero_inputs = &inputs[0];
    let mut depth: HashMap<Vec<u64>, u64> = HashMap::new();
    let mut frontier = vec![rtl.reset_state()];
    depth.insert(frontier[0].clone(), 0);
    let mut violation: Option<u64> = None;
    let mut d = 0u64;
    while !frontier.is_empty() {
        for state in &frontier {
            if violation.is_none() && !holds_in_state(rtl, prop, state, zero_inputs) {
                violation = Some(d);
            }
        }
        if violation.is_some() {
            return violation;
        }
        let mut next_frontier = Vec::new();
        for state in &frontier {
            for iv in &inputs {
                let (_, next) = rtl.step(iv, state);
                if !depth.contains_key(&next) {
                    depth.insert(next.clone(), d + 1);
                    next_frontier.push(next);
                }
            }
        }
        frontier = next_frontier;
        d += 1;
    }
    None
}

/// Replays a BMC counterexample trace through the concrete simulator and
/// the property evaluator; returns a complaint if anything mismatches.
fn validate_trace(rtl: &Rtl, prop: &Property, trace: &mc::CexTrace) -> Option<String> {
    if trace.is_empty() {
        return Some("violation trace is empty".into());
    }
    let mut state = rtl.reset_state();
    for (cycle, frame) in trace.frames.iter().enumerate() {
        if frame.state != state {
            return Some(format!(
                "trace state diverges from Rtl::step at cycle {cycle}"
            ));
        }
        let (out_values, next) = rtl.step(&frame.inputs, &state);
        let expect: Vec<(String, u64)> = rtl
            .outputs()
            .iter()
            .zip(out_values)
            .map(|((name, _), v)| (name.clone(), v))
            .collect();
        if frame.outputs != expect {
            return Some(format!(
                "trace outputs diverge from Rtl::step at cycle {cycle}"
            ));
        }
        state = next;
    }
    let frames: Vec<Vec<(String, u64)>> = trace.frames.iter().map(|f| f.outputs.clone()).collect();
    if prop.holds_on_trace(&frames) {
        return Some("violation trace satisfies the property it claims to refute".into());
    }
    None
}

/// Runs every engine on the case and cross-checks against the BFS truth.
pub fn evaluate(case: &McCase) -> Evaluation {
    let (rtl, prop) = build(case);
    let truth = ground_truth_depth(&rtl, &prop);
    let mut counters = vec![
        u64::from(rtl.state_bits()),
        rtl.num_nodes() as u64,
        truth.map_or(0, |d| d + 1),
    ];
    let fail = |msg: String, counters: Vec<u64>| Evaluation {
        disagreement: Some(msg),
        counters,
    };

    // BDD reachability is exact: Proven iff no reachable violation.
    let reach = mc::reach::check(&rtl, &prop);
    match (&reach, truth) {
        (Verdict::Proven, None) | (Verdict::Violated(_), Some(_)) => {}
        _ => {
            return fail(
                format!("reach said {reach:?} but BFS ground truth is depth {truth:?}"),
                counters,
            )
        }
    }

    // BMC with telemetry: must find exactly the earliest violation depth
    // within the bound, with a concretely replayable trace.
    let collector = telemetry::Collector::shared();
    let instr: telemetry::SharedInstrument = collector.clone();
    let bmc = mc::bmc::check_instrumented(&rtl, &prop, case.bound, &instr);
    counters.push(collector.counter("bmc.sat_calls"));
    counters.push(collector.counter("sat.conflicts"));
    match (&bmc, truth) {
        (Verdict::Violated(trace), Some(d)) if d <= u64::from(case.bound) => {
            if trace.len() as u64 != d + 1 {
                return fail(
                    format!(
                        "bmc trace has {} frames but earliest violation depth is {d}",
                        trace.len()
                    ),
                    counters,
                );
            }
            if let Some(msg) = validate_trace(&rtl, &prop, trace) {
                return fail(format!("bmc {msg}"), counters);
            }
        }
        (Verdict::NoViolationUpTo(b), t) if *b == case.bound => {
            if let Some(d) = t {
                if d <= u64::from(case.bound) {
                    return fail(
                        format!(
                            "bmc missed a depth-{d} violation within bound {}",
                            case.bound
                        ),
                        counters,
                    );
                }
            }
        }
        _ => {
            return fail(
                format!(
                    "bmc said {bmc:?} against truth {truth:?} at bound {}",
                    case.bound
                ),
                counters,
            )
        }
    }

    // Plain (uninstrumented) BMC must agree with the instrumented run.
    let plain = mc::bmc::check(&rtl, &prop, case.bound);
    if plain != bmc {
        return fail("instrumented and plain bmc disagree".into(), counters);
    }

    // k-induction is sound in both directions even when incomplete.
    let ind = mc::induction::check(&rtl, &prop, case.k);
    match &ind {
        Verdict::Proven => {
            if truth.is_some() {
                return fail(
                    format!("induction proved a property violated at depth {truth:?}"),
                    counters,
                );
            }
        }
        Verdict::Violated(trace) => {
            if truth.is_none() {
                return fail("induction refuted a true invariant".into(), counters);
            }
            if let Some(msg) = validate_trace(&rtl, &prop, trace) {
                return fail(format!("induction {msg}"), counters);
            }
        }
        Verdict::Unknown(_) => {}
        other => return fail(format!("induction returned {other:?}"), counters),
    }

    // Cached cold run then warm run: both must equal the uncached verdict.
    let store = cache::ObligationCache::new();
    let cold = mc::bmc::check_cached(&rtl, &prop, case.bound, &telemetry::noop(), &store);
    let warm = mc::bmc::check_cached(&rtl, &prop, case.bound, &telemetry::noop(), &store);
    if cold != bmc || warm != bmc {
        return fail(
            "cached bmc verdict diverges from the uncached engine".into(),
            counters,
        );
    }
    if store.stats().hits != 1 {
        return fail(
            "warm cached bmc rerun did not hit the cache".into(),
            counters,
        );
    }

    // A multi-property batch across worker counts, against per-property runs.
    let props = vec![
        prop.clone(),
        Property::invariant("tight", BoolExpr::le("o0", 0)),
    ];
    let seq = mc::bmc::check_many(
        &rtl,
        &props,
        case.bound,
        exec::ExecMode::Sequential,
        &telemetry::noop(),
    );
    let par = mc::bmc::check_many(
        &rtl,
        &props,
        case.bound,
        exec::ExecMode::Parallel { workers: 3 },
        &telemetry::noop(),
    );
    if seq != par {
        return fail(
            "check_many verdicts differ between 1 and 3 workers".into(),
            counters,
        );
    }
    if seq[0] != bmc {
        return fail(
            "check_many[0] differs from the single-property engine".into(),
            counters,
        );
    }

    Evaluation {
        disagreement: None,
        counters,
    }
}

fn shrink_candidates(case: &McCase) -> Vec<McCase> {
    let mut out = Vec::new();
    // Drop trailing ops first: indices are modular, so the build stays
    // total, but smaller recipes read better.
    if !case.ops.is_empty() {
        let mut c = case.clone();
        c.ops.pop();
        out.push(c);
    }
    for i in 0..case.ops.len() {
        let mut c = case.clone();
        c.ops.remove(i);
        out.push(c);
    }
    if case.outputs.len() > 1 {
        for i in 0..case.outputs.len() {
            let mut c = case.clone();
            c.outputs.remove(i);
            out.push(c);
        }
    }
    if case.atoms.len() > 1 {
        for i in 0..case.atoms.len() {
            let mut c = case.clone();
            c.atoms.remove(i);
            out.push(c);
        }
    }
    if case.regs.len() > 1 {
        let mut c = case.clone();
        c.regs.pop();
        out.push(c);
    }
    if !case.inputs.is_empty() {
        let mut c = case.clone();
        c.inputs.pop();
        out.push(c);
    }
    if case.bound > 1 {
        let mut c = case.clone();
        c.bound -= 1;
        out.push(c);
    }
    if case.k > 1 {
        let mut c = case.clone();
        c.k -= 1;
        out.push(c);
    }
    out
}

/// One fuzz iteration: generate, evaluate, shrink on disagreement.
pub(crate) fn run_one(rng: &mut FuzzRng, bias: u64) -> FamilyOutcome {
    let case = generate(rng, bias);
    let eval = evaluate(&case);
    let failure = eval.disagreement.map(|detail| {
        let min = shrink::minimize(case, 400, shrink_candidates, |c| {
            evaluate(c).disagreement.is_some()
        });
        let (rtl, prop) = build(&min);
        crate::Failure {
            detail,
            minimized: format!("{min:?}\n{rtl}\nproperty: {prop:?}"),
        }
    });
    FamilyOutcome {
        counters: eval.counters,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_matches_reach_on_the_doc_counter() {
        // The mod-5 counter from the mc crate docs: q ≤ 4 proven, q ≠ 3
        // violated at depth 3.
        let mut rtl = Rtl::new("mod5");
        let q = rtl.reg("q", 3, 0);
        let one = rtl.constant(1, 3);
        let four = rtl.constant(4, 3);
        let zero = rtl.constant(0, 3);
        let inc = rtl.binary(BinOp::Add, q, one);
        let at_max = rtl.binary(BinOp::Eq, q, four);
        let next = rtl.mux(at_max, zero, inc);
        rtl.set_next(q, next);
        rtl.output("q", q);
        let good = Property::invariant("bounded", BoolExpr::le("q", 4));
        let bad = Property::invariant("never3", BoolExpr::ne("q", 3));
        assert_eq!(ground_truth_depth(&rtl, &good), None);
        assert_eq!(ground_truth_depth(&rtl, &bad), Some(3));
    }

    #[test]
    #[cfg(not(feature = "sat-mutant"))]
    fn random_recipes_build_and_agree() {
        let mut rng = FuzzRng::new(7);
        for bias in 0..25u64 {
            let case = generate(&mut rng, bias);
            let eval = evaluate(&case);
            assert_eq!(eval.disagreement, None, "case {case:?}");
        }
    }

    #[test]
    fn a_planted_wrong_truth_shrinks() {
        // Force a failing predicate ("BFS finds any violation") and check
        // the shrinker still produces a buildable, smaller recipe.
        let mut rng = FuzzRng::new(11);
        let mut case = None;
        for bias in 0..200u64 {
            let c = generate(&mut rng, bias);
            let (rtl, prop) = build(&c);
            if ground_truth_depth(&rtl, &prop).is_some() {
                case = Some(c);
                break;
            }
        }
        let case = case.expect("some generated case violates its invariant");
        let min = shrink::minimize(case.clone(), 400, shrink_candidates, |c| {
            let (rtl, prop) = build(c);
            ground_truth_depth(&rtl, &prop).is_some()
        });
        let (rtl, prop) = build(&min);
        assert!(ground_truth_depth(&rtl, &prop).is_some());
        assert!(min.ops.len() <= case.ops.len());
    }
}
