//! Greedy delta-debugging.
//!
//! When an oracle finds a disagreement, the raw case is rarely readable
//! (dozens of clauses, a netlist of random gates). The shrinker walks a
//! family-supplied list of reduction candidates and greedily commits any
//! candidate on which the disagreement persists, restarting until a
//! fixpoint — the classic ddmin discipline, kept deterministic so the
//! minimized case is itself part of the reproducer contract.

/// Greedily minimizes `case`. `candidates` proposes strictly smaller
/// variants of the current case (in a deterministic order);
/// `still_fails` re-runs the oracle on a variant. The first failing
/// variant is committed and the search restarts from it; the fixpoint —
/// a case none of whose candidates still fails — is returned.
///
/// `budget` caps the number of `still_fails` evaluations so shrinking a
/// pathological case cannot stall a CI run; the best case found so far
/// is returned when the budget runs out.
pub fn minimize<C: Clone>(
    mut case: C,
    mut budget: u64,
    candidates: impl Fn(&C) -> Vec<C>,
    mut still_fails: impl FnMut(&C) -> bool,
) -> C {
    loop {
        let mut progressed = false;
        for cand in candidates(&case) {
            if budget == 0 {
                return case;
            }
            budget -= 1;
            if still_fails(&cand) {
                case = cand;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return case;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stand-in failure: a list fails while it still contains a 7.
    fn fails(v: &[u32]) -> bool {
        v.contains(&7)
    }

    fn drop_one(v: &[u32]) -> Vec<Vec<u32>> {
        (0..v.len())
            .map(|i| {
                let mut c = v.to_vec();
                c.remove(i);
                c
            })
            .collect()
    }

    #[test]
    fn shrinks_to_the_minimal_failing_case() {
        let case = vec![3, 1, 7, 9, 7, 2];
        let min = minimize(case, 10_000, |c| drop_one(c), |c| fails(c));
        assert_eq!(min, vec![7]);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let case = vec![5, 7, 7, 7, 1];
        let a = minimize(case.clone(), 10_000, |c| drop_one(c), |c| fails(c));
        let b = minimize(case, 10_000, |c| drop_one(c), |c| fails(c));
        assert_eq!(a, b);
    }

    #[test]
    fn budget_zero_returns_the_case_unchanged() {
        let case = vec![7, 7];
        let min = minimize(case.clone(), 0, |c| drop_one(c), |c| fails(c));
        assert_eq!(min, case);
    }
}
