//! The DIMACS oracle family: malformed, truncated, and mutated CNF text
//! thrown at the parser, with a no-panic guarantee.
//!
//! Each iteration renders a small valid instance, then applies a random
//! stack of mutations — truncation, token injection, line duplication,
//! byte substitution, range deletion. The oracle requires that
//! [`sat::dimacs::parse`] either returns `Ok` with a self-consistent
//! instance (validated invariants, panic-free solver load, stable
//! re-render round trip) or a typed [`sat::dimacs::ParseDimacsError`] —
//! never a panic. Parser hardening driven by this family: truncated and
//! duplicated `p` headers are rejected, and declared variable counts are
//! capped (`MAX_VARS`) before `into_solver` can attempt the allocation.

use crate::rng::FuzzRng;
use crate::shrink;
use crate::{Evaluation, FamilyOutcome};
use sat::dimacs::{self, MAX_VARS};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Tokens the mutator splices in: header fragments, giant numbers,
/// non-numeric junk, comment and terminator edge cases.
const INJECT: &[&str] = &[
    "p",
    "cnf",
    "p cnf",
    "p cnf 3",
    "p cnf 2 2",
    "p cnf 999999999999 1",
    "p cnf 18446744073709551616 1",
    "p dnf 2 1",
    "c junk comment",
    "0",
    "-0",
    "--1",
    "99999999999999999999999",
    "-9223372036854775808",
    "x",
    "%",
    "1 -1 0",
];

/// Generates one mutated DIMACS text.
pub fn generate(rng: &mut FuzzRng, bias: u64) -> String {
    // Seed text: a small valid instance (reuses the SAT family generator).
    let seed_case = crate::sat_fuzz::generate(rng, bias);
    let mut text = sat::Dimacs {
        num_vars: seed_case.num_vars,
        clauses: seed_case.clauses,
    }
    .render();
    let mutations = rng.range(0, 4);
    for _ in 0..mutations {
        text = mutate(rng, text);
    }
    text
}

fn mutate(rng: &mut FuzzRng, text: String) -> String {
    let bytes = text.into_bytes();
    let len = bytes.len();
    let mutated = match rng.below(5) {
        0 => {
            // Truncate (also models a torn read).
            let at = rng.range_usize(0, len);
            bytes[..at].to_vec()
        }
        1 => {
            // Inject a token at a random position.
            let at = rng.range_usize(0, len);
            let tok = INJECT[rng.range_usize(0, INJECT.len() - 1)];
            let mut out = bytes[..at].to_vec();
            out.extend_from_slice(b" ");
            out.extend_from_slice(tok.as_bytes());
            out.extend_from_slice(b" ");
            out.extend_from_slice(&bytes[at..]);
            out
        }
        2 => {
            // Delete a random range.
            let a = rng.range_usize(0, len);
            let b = rng.range_usize(a, len);
            let mut out = bytes[..a].to_vec();
            out.extend_from_slice(&bytes[b..]);
            out
        }
        3 => {
            // Duplicate a random line.
            let text = String::from_utf8(bytes).expect("ascii");
            let lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return text;
            }
            let i = rng.range_usize(0, lines.len() - 1);
            let mut out: Vec<&str> = lines.clone();
            out.insert(i, lines[i]);
            return out.join("\n");
        }
        _ => {
            // Replace one byte with structured junk.
            if len == 0 {
                return String::new();
            }
            let mut out = bytes;
            let at = rng.range_usize(0, len - 1);
            const JUNK: &[u8] = b" -0123456789pcnf\nx%";
            out[at] = JUNK[rng.range_usize(0, JUNK.len() - 1)];
            out
        }
    };
    // All inputs and injections are ASCII, so this cannot fail.
    String::from_utf8(mutated).expect("ascii")
}

/// The oracle: parsing must never panic, successes must be
/// self-consistent, failures must be typed errors.
pub fn check(text: &str) -> (Option<String>, Vec<u64>) {
    let parsed = catch_unwind(AssertUnwindSafe(|| dimacs::parse(text)));
    let mut counters = vec![text.len() as u64];
    let parsed = match parsed {
        Err(_) => return (Some("parse panicked".into()), counters),
        Ok(r) => r,
    };
    match parsed {
        Err(e) => {
            // Typed failure: fine by contract. Feed the error class back
            // as coverage so mutation explores every failure path.
            counters.extend([
                1,
                match e {
                    dimacs::ParseDimacsError::MissingHeader => 1,
                    dimacs::ParseDimacsError::BadHeader(_) => 2,
                    dimacs::ParseDimacsError::BadLiteral(_) => 3,
                    dimacs::ParseDimacsError::LiteralOutOfRange(_) => 4,
                    dimacs::ParseDimacsError::TooManyVariables(_) => 5,
                },
            ]);
            (None, counters)
        }
        Ok(d) => {
            counters.extend([2, d.num_vars as u64, d.clauses.len() as u64]);
            if d.num_vars > MAX_VARS {
                return (
                    Some(format!(
                        "accepted variable count {} above MAX_VARS",
                        d.num_vars
                    )),
                    counters,
                );
            }
            for clause in &d.clauses {
                for &l in clause {
                    if l == 0 || l.unsigned_abs() as usize > d.num_vars {
                        return (
                            Some(format!("accepted out-of-contract literal {l}")),
                            counters,
                        );
                    }
                }
            }
            // A parsed instance must load into a solver without panicking
            // (bounded so a legitimately huge accepted header cannot make
            // the smoke run allocate forever).
            if d.num_vars <= 10_000 {
                let loaded = catch_unwind(AssertUnwindSafe(|| {
                    let (mut solver, _) = d.into_solver();
                    solver.solve().is_sat() as u64
                }));
                match loaded {
                    Err(_) => return (Some("into_solver/solve panicked".into()), counters),
                    Ok(sat) => counters.push(sat),
                }
            }
            // Round trip: rendering a parsed instance must reparse to it.
            match dimacs::parse(&d.render()) {
                Ok(again) if again == d => (None, counters),
                Ok(_) => (
                    Some("render/reparse round trip altered the instance".into()),
                    counters,
                ),
                Err(e) => (
                    Some(format!("render of a parsed instance fails to reparse: {e}")),
                    counters,
                ),
            }
        }
    }
}

fn shrink_candidates(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    for i in 0..lines.len() {
        let mut keep = lines.clone();
        keep.remove(i);
        out.push(keep.join("\n"));
    }
    for (i, line) in lines.iter().enumerate() {
        let tokens: Vec<&str> = line.split(' ').collect();
        if tokens.len() <= 1 {
            continue;
        }
        for j in 0..tokens.len() {
            let mut keep_tokens = tokens.clone();
            keep_tokens.remove(j);
            let mut keep = lines.clone();
            let joined = keep_tokens.join(" ");
            keep[i] = &joined;
            out.push(keep.join("\n"));
        }
    }
    if text.len() <= 120 {
        for i in 0..text.len() {
            let mut s = text.as_bytes().to_vec();
            s.remove(i);
            if let Ok(s) = String::from_utf8(s) {
                out.push(s);
            }
        }
    }
    out
}

/// One fuzz iteration: mutate, check, shrink the text on failure.
pub(crate) fn run_one(rng: &mut FuzzRng, bias: u64) -> FamilyOutcome {
    let text = generate(rng, bias);
    let (disagreement, counters) = check(&text);
    let failure = disagreement.map(|detail| {
        let minimized = shrink::minimize(
            text,
            3000,
            |t| shrink_candidates(t),
            |t| check(t).0.is_some(),
        );
        crate::Failure { detail, minimized }
    });
    FamilyOutcome { counters, failure }
}

/// [`check`] boxed as an [`Evaluation`] (used by tests).
pub fn evaluate(text: &str) -> Evaluation {
    let (disagreement, counters) = check(text);
    Evaluation {
        disagreement,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_nasty_inputs_are_handled() {
        for text in [
            "",
            "p",
            "p cnf",
            "p cnf 3",
            "p cnf 3 3",
            "p cnf 3 3\n1 2 0\np cnf 9 9\n9 0",
            "p cnf 99999999999999999999 1\n1 0",
            "p cnf 999999999999 1\n1 0",
            "1 2 0",
            "p cnf 2 1\n--1 0",
            "p cnf 2 1\n1 -0",
            "p cnf 2 1\n-9223372036854775808 0",
            "c only comments\nc nothing else",
        ] {
            let (disagreement, _) = check(text);
            assert_eq!(disagreement, None, "input {text:?}");
        }
    }

    #[test]
    fn mutated_corpus_never_panics() {
        let mut rng = FuzzRng::new(99);
        for bias in 0..60u64 {
            let text = generate(&mut rng, bias);
            let (disagreement, _) = check(&text);
            assert_eq!(disagreement, None, "input {text:?}");
        }
    }
}
