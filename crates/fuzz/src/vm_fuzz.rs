//! The bytecode-VM oracle family: random behavioural functions through
//! the tree-walking [`Interpreter`] and the register-bytecode [`Vm`],
//! whole [`behav::interp::RunOutput`]s compared bit for bit.
//!
//! The interpreter is the executable semantics of the IR; the VM is the
//! decode-once fast path the hot callers use. This family generates
//! functions that exercise every corner the compiler must preserve —
//! nested bounded loops, early returns, mux laziness, uninitialized
//! reads, out-of-bounds array traffic, stores through non-array
//! variables, resource calls and reconfiguration points, injected bit
//! faults, and tiny step limits — and demands that the two engines
//! agree on the *entire* instrumented output: return value, coverage
//! set, op counts, step count, uninitialized reads, out-of-bounds
//! records, and the call trace (or on the identical
//! [`behav::interp::ExecError`]).
//!
//! With the `vm-mutant` feature the VM deliberately skips the width
//! mask on every third scalar assignment; `tests/vm_mutant.rs` proves
//! this family catches that miscompile within the CI smoke budget.

use crate::rng::FuzzRng;
use crate::shrink;
use crate::{Evaluation, FamilyOutcome};
use behav::bytecode::{compile, Vm};
use behav::interp::{enumerate_bit_faults, mask, Interpreter};
use behav::{BlockBuilder, ConfigId, Expr, Function, FunctionBuilder, VarId};
use sim::faults::{fnv1a, mix64};

/// A VM fuzz case: the knobs that deterministically regenerate one
/// random behavioural function plus the inputs it is driven with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmCase {
    /// Seed of the function-shape stream ([`FuzzRng::new`]).
    pub func_seed: u64,
    /// Parameter count (1..=3).
    pub params: u32,
    /// Arrays declared (0..=2).
    pub arrays: u32,
    /// Top-level statement budget (1..=8; nested blocks get half).
    pub stmts: u32,
    /// Maximum `if`/`while` nesting depth (0..=2).
    pub depth: u32,
    /// Loop trip-count bound (1..=6 per loop counter).
    pub trips: u64,
    /// Allow `ResourceCall`/`Reconfigure` statements.
    pub calls: bool,
    /// Input vectors, each `params` wide.
    pub vectors: Vec<Vec<u64>>,
    /// Injected bit fault: an index into [`enumerate_bit_faults`]
    /// (modulo its length), or `None` for a clean run.
    pub fault_pick: Option<u64>,
    /// Dynamic step limit (small values exercise the error path).
    pub step_limit: u64,
}

/// Generates one random case under the coverage bias.
pub fn generate(rng: &mut FuzzRng, bias: u64) -> VmCase {
    let params = rng.range(1, 3) as u32;
    let vectors = (0..rng.range(1, 4))
        .map(|_| (0..params).map(|_| rng.next_u64()).collect())
        .collect();
    VmCase {
        func_seed: rng.next_u64() ^ mix64(bias),
        params,
        arrays: rng.range(0, 2) as u32,
        stmts: rng.range(1, 8) as u32,
        depth: ((bias >> 3) % 3) as u32,
        trips: rng.range(1, 6),
        calls: (bias & 1) == 0 || rng.chance(1, 3),
        vectors,
        fault_pick: if rng.chance(1, 3) {
            Some(rng.next_u64())
        } else {
            None
        },
        step_limit: if rng.chance(1, 6) {
            rng.range(1, 40)
        } else {
            1_000_000
        },
    }
}

/// Bit widths the generator draws from (1-bit flags through full words).
const WIDTHS: [u32; 7] = [1, 5, 8, 13, 16, 32, 64];

/// Narrow widths favoured for locals: a narrow assignment target is where
/// width-mask bugs (the seeded `vm-mutant` miscompile included) surface.
const NARROW: [u32; 5] = [3, 4, 5, 8, 13];

/// The shared deterministic resource-call model both engines consult.
fn resource_model(name: &str, args: &[u64]) -> u64 {
    mix64(fnv1a(name.as_bytes()) ^ args.iter().fold(0u64, |h, &a| mix64(h ^ a)))
}

/// The random-function generator state: the scalar pool statements may
/// assign (loop counters are deliberately excluded so every loop stays
/// bounded by construction), the declared arrays, and the shape stream.
struct Shape {
    rng: FuzzRng,
    scalars: Vec<(VarId, u32)>,
    arrays: Vec<(VarId, u32, u32)>,
    next_loop: u32,
    trips: u64,
    calls: bool,
}

impl Shape {
    fn width(&mut self) -> u32 {
        WIDTHS[self.rng.range_usize(0, WIDTHS.len() - 1)]
    }

    fn narrow(&mut self) -> u32 {
        NARROW[self.rng.range_usize(0, NARROW.len() - 1)]
    }

    fn scalar(&mut self) -> (VarId, u32) {
        self.scalars[self.rng.range_usize(0, self.scalars.len() - 1)]
    }

    /// A random expression of bounded depth. Leaves deliberately include
    /// possibly-uninitialized variables and possibly-out-of-bounds array
    /// indices: both are recorded observations the engines must agree on.
    fn expr(&mut self, depth: u32) -> Expr {
        if depth == 0 || self.rng.chance(1, 3) {
            return match self.rng.below(4) {
                0 => {
                    let w = self.width();
                    Expr::constant(self.rng.next_u64() & mask(w), w)
                }
                1 | 2 => Expr::var(self.scalar().0),
                _ if !self.arrays.is_empty() => {
                    let (arr, _, len) = self.arrays[self.rng.range_usize(0, self.arrays.len() - 1)];
                    // One past the end with probability ~1/3: an OOB read.
                    Expr::index(arr, Expr::constant(self.rng.below(len as u64 + 2), 8))
                }
                _ => Expr::var(self.scalar().0),
            };
        }
        match self.rng.below(8) {
            0 => Expr::not(self.expr(depth - 1)),
            1 => Expr::neg(self.expr(depth - 1)),
            2 => Expr::mux(
                self.cmp(depth - 1),
                self.expr(depth - 1),
                self.expr(depth - 1),
            ),
            _ => {
                let lhs = self.expr(depth - 1);
                let rhs = self.expr(depth - 1);
                match self.rng.below(16) {
                    0 => Expr::add(lhs, rhs),
                    1 => Expr::sub(lhs, rhs),
                    2 => Expr::mul(lhs, rhs),
                    3 => Expr::div(lhs, rhs),
                    4 => Expr::rem(lhs, rhs),
                    5 => Expr::and(lhs, rhs),
                    6 => Expr::or(lhs, rhs),
                    7 => Expr::xor(lhs, rhs),
                    8 => Expr::shl(lhs, rhs),
                    9 => Expr::shr(lhs, rhs),
                    10 => Expr::eq(lhs, rhs),
                    11 => Expr::ne(lhs, rhs),
                    12 => Expr::lt(lhs, rhs),
                    13 => Expr::le(lhs, rhs),
                    14 => Expr::gt(lhs, rhs),
                    _ => Expr::ge(lhs, rhs),
                }
            }
        }
    }

    /// A single random comparison atom.
    fn cmp(&mut self, depth: u32) -> Expr {
        let lhs = self.expr(depth);
        let rhs = self.expr(depth);
        match self.rng.below(6) {
            0 => Expr::eq(lhs, rhs),
            1 => Expr::ne(lhs, rhs),
            2 => Expr::lt(lhs, rhs),
            3 => Expr::le(lhs, rhs),
            4 => Expr::gt(lhs, rhs),
            _ => Expr::ge(lhs, rhs),
        }
    }

    /// A branch/loop condition: one to three comparison atoms combined
    /// with `and`/`or`, so condition-coverage slot bookkeeping is
    /// exercised (the interpreter bug class fixed alongside the VM).
    fn cond(&mut self) -> Expr {
        let mut c = self.cmp(1);
        for _ in 0..self.rng.below(2) {
            let next = self.cmp(1);
            c = if self.rng.flip() {
                Expr::and(c, next)
            } else {
                Expr::or(c, next)
            };
        }
        c
    }

    fn block(&mut self, bb: &mut BlockBuilder<'_>, depth: u32, budget: u32) {
        for _ in 0..budget {
            match self.rng.below(10) {
                0..=3 => {
                    let (v, _) = self.scalar();
                    let e = self.expr(3);
                    bb.assign(v, e);
                }
                4 if !self.arrays.is_empty() => {
                    let (arr, _, len) = if self.rng.chance(1, 8) {
                        // A store through a *scalar* variable: the IR
                        // defines it as counted-but-dropped; the VM
                        // must not turn it into a write.
                        let (v, w) = self.scalar();
                        (v, w, 1)
                    } else {
                        self.arrays[self.rng.range_usize(0, self.arrays.len() - 1)]
                    };
                    let idx = Expr::constant(self.rng.below(len as u64 + 2), 8);
                    let val = self.expr(2);
                    bb.store(arr, idx, val);
                }
                5 if depth > 0 => {
                    let c = self.cond();
                    let inner = (budget / 2).max(1);
                    if self.rng.flip() {
                        // The else arm stays empty (two closures cannot
                        // both borrow the generator); an untaken empty arm
                        // still exercises branch-false coverage.
                        bb.if_else(c, |t| self.block(t, depth - 1, inner), |_| {});
                    } else {
                        bb.if_(c, |t| self.block(t, depth - 1, inner));
                    }
                }
                6 if depth > 0 => {
                    let ctr = bb.local(&format!("ctr{}", self.next_loop), 8);
                    self.next_loop += 1;
                    bb.assign(ctr, Expr::constant(0, 8));
                    let trips = self.rng.range(1, self.trips);
                    let mut c = Expr::lt(Expr::var(ctr), Expr::constant(trips, 8));
                    if self.rng.chance(1, 4) {
                        c = Expr::and(c, self.cmp(1));
                    }
                    let inner = (budget / 2).max(1);
                    bb.while_(c, |body| {
                        self.block(body, depth - 1, inner);
                        body.assign(ctr, Expr::add(Expr::var(ctr), Expr::constant(1, 8)));
                    });
                }
                7 if self.calls => {
                    let name = ["alpha", "beta", "gamma"][self.rng.range_usize(0, 2)];
                    let args = (0..self.rng.below(3)).map(|_| self.expr(2)).collect();
                    let target = if self.rng.flip() {
                        Some(self.scalar().0)
                    } else {
                        None
                    };
                    bb.resource_call(name, args, target);
                }
                8 if self.calls && self.rng.chance(1, 2) => {
                    bb.reconfigure(ConfigId(self.rng.below(3) as u32));
                }
                9 if self.rng.chance(1, 8) => {
                    let e = self.expr(2);
                    bb.ret(e);
                }
                _ => {
                    let (v, _) = self.scalar();
                    let e = self.expr(2);
                    bb.assign(v, e);
                }
            }
        }
    }
}

/// Deterministically rebuilds the case's random function.
pub fn build_function(case: &VmCase) -> Function {
    let mut shape = Shape {
        rng: FuzzRng::new(case.func_seed),
        scalars: Vec::new(),
        arrays: Vec::new(),
        next_loop: 0,
        trips: case.trips.max(1),
        calls: case.calls,
    };
    let ret_width = WIDTHS[shape.rng.range_usize(0, WIDTHS.len() - 1)];
    let mut fb = FunctionBuilder::new("fuzzed", ret_width);
    for i in 0..case.params.max(1) {
        let w = shape.width();
        let v = fb.param(&format!("p{i}"), w);
        shape.scalars.push((v, w));
    }
    for i in 0..shape.rng.range(1, 3) {
        let w = shape.narrow();
        let v = fb.local(&format!("l{i}"), w);
        shape.scalars.push((v, w));
    }
    for i in 0..case.arrays {
        let w = shape.width();
        let len = shape.rng.range(2, 4) as u32;
        let v = fb.array(&format!("a{i}"), w, len);
        shape.arrays.push((v, w, len));
    }
    let (depth, stmts) = (case.depth.min(2), case.stmts.clamp(1, 12));
    // The generator works on `BlockBuilder`s; a trivially-true `if` turns
    // the function body into one (and exercises the constant-condition,
    // zero-atom branch bookkeeping as a bonus).
    fb.if_(Expr::constant(1, 1), |top| shape.block(top, depth, stmts));
    if shape.rng.chance(1, 8) {
        fb.ret_void();
    } else {
        // XOR-fold every scalar into the return value so divergence in
        // *any* register is observable, not just the luckily-read ones.
        let mut e = shape.expr(2);
        for &(v, _) in &shape.scalars {
            e = Expr::xor(e, Expr::var(v));
        }
        fb.ret(e);
    }
    fb.build()
}

/// Runs the differential oracle on the case.
pub fn evaluate(case: &VmCase) -> Evaluation {
    let func = build_function(case);
    let faults = enumerate_bit_faults(&func);
    let fault = case.fault_pick.and_then(|k| {
        if faults.is_empty() {
            None
        } else {
            Some(faults[(k % faults.len() as u64) as usize])
        }
    });
    let mut vm = Vm::new(compile(&func)).with_step_limit(case.step_limit);
    vm.set_fault(fault);
    let mut counters = vec![
        func.num_statements() as u64,
        func.num_conditions() as u64,
        0,
        0,
        0,
        0,
    ];
    for v in &case.vectors {
        let v: Vec<u64> = v
            .iter()
            .copied()
            .chain(std::iter::repeat(0))
            .take(func.num_params())
            .collect();
        let mut interp = Interpreter::new(&func).with_step_limit(case.step_limit);
        if let Some(f) = fault {
            interp = interp.with_fault(f);
        }
        if case.calls {
            interp = interp.with_resource_handler(Box::new(resource_model));
        }
        let reference = interp.run(&v);
        let observed = if case.calls {
            let mut h = resource_model;
            vm.run_with_handler(&v, Some(&mut h))
        } else {
            vm.run(&v)
        };
        if reference != observed {
            return Evaluation {
                disagreement: Some(format!(
                    "vm diverged from interpreter on {v:?} (fault {fault:?}): \
                     interp {reference:?} vs vm {observed:?}"
                )),
                counters,
            };
        }
        match &reference {
            Ok(out) => {
                counters[2] += out.ops.total();
                counters[3] += out.steps;
                counters[4] += (out.uninitialized_reads.len() + out.out_of_bounds.len()) as u64;
                counters[5] += out.call_trace.len() as u64 + u64::from(out.return_value.is_some());
            }
            Err(_) => counters[5] += 1,
        }
    }
    Evaluation {
        disagreement: None,
        counters,
    }
}

fn shrink_candidates(case: &VmCase) -> Vec<VmCase> {
    let mut out = Vec::new();
    if case.stmts > 1 {
        let mut c = case.clone();
        c.stmts -= 1;
        out.push(c);
    }
    if case.depth > 0 {
        let mut c = case.clone();
        c.depth -= 1;
        out.push(c);
    }
    if case.trips > 1 {
        let mut c = case.clone();
        c.trips -= 1;
        out.push(c);
    }
    if case.arrays > 0 {
        let mut c = case.clone();
        c.arrays -= 1;
        out.push(c);
    }
    if case.calls {
        let mut c = case.clone();
        c.calls = false;
        out.push(c);
    }
    if case.fault_pick.is_some() {
        let mut c = case.clone();
        c.fault_pick = None;
        out.push(c);
    }
    if case.step_limit != 1_000_000 {
        let mut c = case.clone();
        c.step_limit = 1_000_000;
        out.push(c);
    }
    if case.vectors.len() > 1 {
        for i in 0..case.vectors.len() {
            let mut c = case.clone();
            c.vectors.remove(i);
            out.push(c);
        }
    }
    out
}

/// One fuzz iteration: generate, evaluate, shrink on disagreement.
pub(crate) fn run_one(rng: &mut FuzzRng, bias: u64) -> FamilyOutcome {
    let case = generate(rng, bias);
    let eval = evaluate(&case);
    let failure = eval.disagreement.map(|detail| {
        let min = shrink::minimize(case, 60, shrink_candidates, |c| {
            evaluate(c).disagreement.is_some()
        });
        let func = build_function(&min);
        crate::Failure {
            detail,
            minimized: format!(
                "{min:?}\n{}",
                behav::pretty::function_to_string(&func, true)
            ),
        }
    });
    FamilyOutcome {
        counters: eval.counters,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_deterministic() {
        let mk = || {
            let mut rng = FuzzRng::new(31);
            generate(&mut rng, 9)
        };
        assert_eq!(mk(), mk());
        let f = build_function(&mk());
        assert_eq!(
            behav::pretty::function_to_string(&f, true),
            behav::pretty::function_to_string(&build_function(&mk()), true)
        );
    }

    #[test]
    #[cfg(not(feature = "vm-mutant"))]
    fn random_cases_agree_across_engines() {
        let mut rng = FuzzRng::new(77);
        for bias in 0..12u64 {
            let case = generate(&mut rng, bias * 7);
            let eval = evaluate(&case);
            assert_eq!(eval.disagreement, None, "case {case:?}");
        }
    }

    #[test]
    fn generator_reaches_loops_calls_and_faults() {
        // The family only earns its keep if the interesting constructs
        // actually appear: across a modest sample there must be cases
        // with conditions, with resource calls, and with injected faults.
        let mut rng = FuzzRng::new(5);
        let (mut conds, mut calls, mut faults) = (0, 0, 0);
        for bias in 0..24u64 {
            let case = generate(&mut rng, bias);
            let func = build_function(&case);
            conds += u64::from(func.num_conditions() > 1);
            calls += u64::from(case.calls);
            faults += u64::from(case.fault_pick.is_some());
        }
        assert!(conds > 0, "no generated function had branch conditions");
        assert!(calls > 0, "no generated case allowed resource calls");
        assert!(faults > 0, "no generated case injected a fault");
    }
}
