//! Replayable reproducer IDs and the fuzzer's environment knobs.
//!
//! Every disagreement the fuzzer finds is reported as a single line
//! `SYMBAD_FUZZ_REPRO=<seed:family:iter>`: the triple fully determines
//! the generated case (the run is deterministic end to end, including
//! coverage steering), so replaying it regenerates the same input, the
//! same disagreement, and the same minimized case, bit for bit.

use crate::Family;
use std::fmt;

/// Iteration budget override (one number, applied to every family).
pub const ITERS_ENV: &str = "SYMBAD_FUZZ_ITERS";

/// Single-case replay: `SYMBAD_FUZZ_REPRO=<seed:family:iter>`.
pub const REPRO_ENV: &str = "SYMBAD_FUZZ_REPRO";

/// The identity of one fuzz iteration: run seed, oracle family, and
/// iteration ordinal within the run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReproId {
    /// The run's base seed.
    pub seed: u64,
    /// The oracle family the case was generated for.
    pub family: Family,
    /// Zero-based iteration ordinal within the run.
    pub iter: u64,
}

impl fmt::Display for ReproId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.seed, self.family.as_str(), self.iter)
    }
}

impl ReproId {
    /// Parses a `seed:family:iter` triple (the [`fmt::Display`] format).
    pub fn parse(text: &str) -> Option<ReproId> {
        let mut parts = text.trim().split(':');
        let seed = parts.next()?.parse().ok()?;
        let family = Family::parse(parts.next()?)?;
        let iter = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(ReproId { seed, family, iter })
    }
}

/// The per-family iteration budget: `SYMBAD_FUZZ_ITERS` when set and
/// parseable, otherwise `default`. Tier-1 tests pass small defaults so
/// `cargo test` stays fast; CI smoke exports 1000.
pub fn iters_from_env(default: u64) -> u64 {
    std::env::var(ITERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// The reproducer requested via `SYMBAD_FUZZ_REPRO`, if any.
pub fn repro_from_env() -> Option<ReproId> {
    ReproId::parse(&std::env::var(REPRO_ENV).ok()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_ids_round_trip_through_text() {
        for family in Family::ALL {
            let id = ReproId {
                seed: 0xDEAD_BEEF,
                family,
                iter: 417,
            };
            assert_eq!(ReproId::parse(&id.to_string()), Some(id));
        }
    }

    #[test]
    fn malformed_ids_are_rejected() {
        for bad in ["", "1:sat", "1:nope:2", "x:sat:2", "1:sat:y", "1:sat:2:3"] {
            assert_eq!(ReproId::parse(bad), None, "{bad:?}");
        }
    }
}
