//! Deterministic coverage-guided differential fuzzing for the
//! verification engines.
//!
//! The flow's engines overlap on purpose — SAT vs BDD vs portfolio, BMC
//! vs k-induction vs BDD reachability, cached vs uncached, sequential vs
//! parallel, instrumented vs plain. This crate turns that redundancy into
//! an oracle: seeded generators produce inputs with *planted* or
//! *exhaustively computed* ground truth, every independent implementation
//! is run on the same input, and any disagreement is shrunk by greedy
//! delta-debugging ([`shrink`]) to a minimal case with a one-line
//! replayable reproducer (`SYMBAD_FUZZ_REPRO=<seed:family:iter>`).
//!
//! Everything is deterministic: no `rand`, no wall clock, no global
//! state. The PRNG ([`rng::FuzzRng`]) is SplitMix64 over the repo's
//! canonical `mix64` finalizer, each iteration draws an independent
//! stream from its [`repro::ReproId`], and even the coverage feedback
//! (telemetry-counter signatures steering the generator bias, see
//! [`coverage`]) evolves as a pure function of the observed counters.
//! Replaying a reproducer therefore regenerates the same case, the same
//! disagreement, and the same minimized witness, bit for bit.
//!
//! ```
//! use fuzz::{run, Family, FuzzConfig};
//!
//! let outcome = run(Family::Sat, &FuzzConfig { seed: 1, iters: 25, steering: true });
//! assert_eq!(outcome.disagreements.len(), 0);
//! assert!(outcome.distinct_signatures > 0);
//! ```

#![warn(missing_docs)]

pub mod coverage;
pub mod dimacs_fuzz;
pub mod mc_fuzz;
pub mod media_fuzz;
pub mod repro;
pub mod rng;
pub mod sat_fuzz;
pub mod share_fuzz;
pub mod shrink;
pub mod sim_fuzz;
pub mod supervise_fuzz;
pub mod vm_fuzz;

pub use repro::{ReproId, ITERS_ENV, REPRO_ENV};

use rng::FuzzRng;
use sim::faults::mix64;

/// The oracle families (one generator + differential-oracle pair each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// CNF instances with planted models / planted unsat cores across
    /// the CDCL solver, the BDD engine, the portfolio, incremental
    /// re-solving, and DIMACS round trips.
    Sat,
    /// Malformed and truncated DIMACS text against the parser's
    /// no-panic contract.
    Dimacs,
    /// Random sequential netlists with BFS-exact reachability ground
    /// truth across BMC, k-induction, BDD reachability, caching, and
    /// worker counts.
    Mc,
    /// Random bus topologies, fault plans, and traffic scripts across
    /// replay determinism, instrumentation, and accounting oracles.
    Sim,
    /// Random datasets and probes through the face-recognition pipeline
    /// and its behavioural-IR kernels.
    Media,
    /// Random panic and budget scripts against the supervised execution
    /// layer: pool survival, deterministic budget exhaustion, race
    /// survival.
    Supervise,
    /// Random behavioural-IR functions through the tree-walking
    /// interpreter and the register bytecode VM, whole instrumented
    /// outputs compared bit for bit.
    Vm,
    /// Learnt-clause sharing: exported clauses brute-force checked for
    /// entailment, mailbox/import/cooperative-portfolio seeding checked
    /// to never change a verdict or invalidate a model.
    Share,
}

impl Family {
    /// Every family, in canonical run order.
    pub const ALL: [Family; 8] = [
        Family::Sat,
        Family::Dimacs,
        Family::Mc,
        Family::Sim,
        Family::Media,
        Family::Supervise,
        Family::Vm,
        Family::Share,
    ];

    /// The short name used in reproducer IDs.
    pub fn as_str(self) -> &'static str {
        match self {
            Family::Sat => "sat",
            Family::Dimacs => "dimacs",
            Family::Mc => "mc",
            Family::Sim => "sim",
            Family::Media => "media",
            Family::Supervise => "supervise",
            Family::Vm => "vm",
            Family::Share => "share",
        }
    }

    /// Parses a short family name.
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.as_str() == s)
    }

    /// The default per-family iteration budget for tier-1 test runs,
    /// scaled to each family's per-iteration cost (overridable through
    /// [`ITERS_ENV`]).
    pub fn default_iters(self) -> u64 {
        match self {
            Family::Sat => 120,
            Family::Dimacs => 250,
            Family::Mc => 25,
            Family::Sim => 60,
            Family::Media => 4,
            Family::Supervise => 50,
            Family::Vm => 80,
            Family::Share => 40,
        }
    }
}

/// The outcome of one oracle evaluation: an optional disagreement and
/// the engine counters used as coverage feedback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evaluation {
    /// Human-readable description of the disagreement, if any.
    pub disagreement: Option<String>,
    /// Engine work counters (conflicts, SAT calls, bus ticks, ...).
    pub counters: Vec<u64>,
}

/// A disagreement found during one iteration, already minimized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// What disagreed (engines and verdicts).
    pub detail: String,
    /// The delta-debugged minimal case, rendered for a bug report.
    pub minimized: String,
}

/// What one fuzz iteration produced (crate-internal family contract).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyOutcome {
    /// Coverage counters for this iteration.
    pub counters: Vec<u64>,
    /// The shrunk disagreement, if the oracles disagreed.
    pub failure: Option<Failure>,
}

/// A disagreement attributed to its replayable origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Disagreement {
    /// The `seed:family:iter` identity that regenerates the case.
    pub repro: ReproId,
    /// What disagreed.
    pub detail: String,
    /// The minimized case.
    pub minimized: String,
}

/// Configuration of one fuzzing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Base seed; every iteration derives its own stream from it.
    pub seed: u64,
    /// Iteration count.
    pub iters: u64,
    /// Enable coverage steering (kept on for reproducers — steering is
    /// itself deterministic, so it is part of the replay contract).
    pub steering: bool,
}

impl FuzzConfig {
    /// The standard configuration for a family: seed 0, the family's
    /// default budget (honouring [`ITERS_ENV`]), steering on.
    pub fn standard(family: Family) -> FuzzConfig {
        FuzzConfig {
            seed: 0,
            iters: repro::iters_from_env(family.default_iters()),
            steering: true,
        }
    }
}

/// Summary of one family's fuzzing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzOutcome {
    /// The family that ran.
    pub family: Family,
    /// Iterations executed.
    pub iters: u64,
    /// Every disagreement found (normally empty).
    pub disagreements: Vec<Disagreement>,
    /// Distinct coverage signatures observed.
    pub distinct_signatures: usize,
    /// Iterations whose signature was new (a proxy for how long the
    /// generator kept finding fresh engine behaviour).
    pub novel_iterations: u64,
}

fn dispatch(family: Family, rng: &mut FuzzRng, bias: u64) -> FamilyOutcome {
    match family {
        Family::Sat => sat_fuzz::run_one(rng, bias),
        Family::Dimacs => dimacs_fuzz::run_one(rng, bias),
        Family::Mc => mc_fuzz::run_one(rng, bias),
        Family::Sim => sim_fuzz::run_one(rng, bias),
        Family::Media => media_fuzz::run_one(rng, bias),
        Family::Supervise => supervise_fuzz::run_one(rng, bias),
        Family::Vm => vm_fuzz::run_one(rng, bias),
        Family::Share => share_fuzz::run_one(rng, bias),
    }
}

/// Runs one family for `config.iters` iterations.
///
/// The loop is a pure function of `config`: iteration `i` draws its
/// case from `FuzzRng::for_iter(seed, family, i)` under the current
/// generator bias, and the bias evolves deterministically — it is kept
/// while the iteration's counter signature is new to the run's
/// [`coverage::CoverageMap`] and re-randomized (by hashing) once the
/// signatures go stale, an AFL-style feedback loop with no
/// instrumentation cost.
pub fn run(family: Family, config: &FuzzConfig) -> FuzzOutcome {
    let mut map = coverage::CoverageMap::new();
    let mut disagreements = Vec::new();
    let mut bias = 0u64;
    let mut stale = 0u64;
    let mut novel = 0u64;
    for iter in 0..config.iters {
        let repro = ReproId {
            seed: config.seed,
            family,
            iter,
        };
        let mut rng = FuzzRng::for_iter(&repro);
        let outcome = dispatch(family, &mut rng, bias);
        if let Some(failure) = outcome.failure {
            disagreements.push(Disagreement {
                repro: repro.clone(),
                detail: failure.detail,
                minimized: failure.minimized,
            });
        }
        if config.steering {
            if map.observe(&outcome.counters) {
                novel += 1;
                stale = 0;
            } else {
                stale += 1;
                if stale >= 8 {
                    // The current profile stopped reaching new engine
                    // behaviour: jump to a fresh deterministic bias.
                    bias = mix64(bias ^ mix64(iter | 1));
                    stale = 0;
                }
            }
        } else {
            map.observe(&outcome.counters);
        }
    }
    FuzzOutcome {
        family,
        iters: config.iters,
        disagreements,
        distinct_signatures: map.distinct(),
        novel_iterations: novel,
    }
}

/// Replays a reproducer: re-runs its family for `id.iter + 1`
/// iterations from `id.seed` (so the coverage-steering state at
/// iteration `id.iter` is identical to the original run) and returns
/// the disagreement found at exactly that iteration, if any.
pub fn run_repro(id: &ReproId) -> Option<Disagreement> {
    let config = FuzzConfig {
        seed: id.seed,
        iters: id.iter + 1,
        steering: true,
    };
    run(id.family, &config)
        .disagreements
        .into_iter()
        .find(|d| d.repro == *id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_round_trip() {
        for family in Family::ALL {
            assert_eq!(Family::parse(family.as_str()), Some(family));
        }
        assert_eq!(Family::parse("nope"), None);
    }

    #[test]
    fn runs_are_deterministic_end_to_end() {
        let config = FuzzConfig {
            seed: 42,
            iters: 30,
            steering: true,
        };
        let a = run(Family::Dimacs, &config);
        let b = run(Family::Dimacs, &config);
        assert_eq!(a, b);
    }

    #[test]
    #[cfg(not(feature = "sat-mutant"))]
    fn coverage_steering_finds_more_signatures_than_a_frozen_profile() {
        // Not a strict theorem, but with these seeds the bias rotation
        // must reach at least as many distinct signatures.
        let steered = run(
            Family::Sat,
            &FuzzConfig {
                seed: 5,
                iters: 60,
                steering: true,
            },
        );
        let frozen = run(
            Family::Sat,
            &FuzzConfig {
                seed: 5,
                iters: 60,
                steering: false,
            },
        );
        assert!(
            steered.distinct_signatures >= frozen.distinct_signatures,
            "steered {} < frozen {}",
            steered.distinct_signatures,
            frozen.distinct_signatures
        );
        assert_eq!(steered.disagreements, vec![]);
        assert_eq!(frozen.disagreements, vec![]);
    }

    #[test]
    fn replaying_a_clean_iteration_finds_nothing() {
        let id = ReproId {
            seed: 9,
            family: Family::Dimacs,
            iter: 7,
        };
        assert_eq!(run_repro(&id), None);
    }
}
