//! The platform-simulation oracle family: random bus topologies, fault
//! plans, and traffic scripts, cross-checked for determinism and
//! accounting consistency.
//!
//! A [`TrafficCase`] describes a bus (preset or custom timing), a set of
//! address regions with deliberate unmapped gaps, a deterministic fault
//! plan, and a script of transfers that includes invalid masters and
//! unroutable addresses on purpose. The oracles:
//!
//! * replaying the same case twice must give bit-identical outcomes and
//!   [`tlm::BusReport`]s (the determinism contract of [`sim::faults`]),
//! * an instrumented bus must behave identically to a plain one, and its
//!   telemetry counters must match the outcomes,
//! * an attached all-zero-rate fault plan must change nothing,
//! * FCFS timing invariants (`now ≤ start ≤ end`, non-decreasing grants)
//!   and report accounting (occupancy, waits, errors sum up) must hold.

use crate::rng::FuzzRng;
use crate::shrink;
use crate::{Evaluation, FamilyOutcome};
use sim::faults::FaultPlan;
use sim::SimTime;
use tlm::{AccessKind, Bus, BusConfig, BusError, Payload, Reservation};

/// One scripted transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Txn {
    /// Ticks since the previous transfer.
    pub dt: u64,
    /// Issuing master (may be out of range on purpose).
    pub master: usize,
    /// Address selector (mapped, gap, or far-unmapped; see `resolve_addr`).
    pub addr_sel: u64,
    /// Write (true) or read.
    pub write: bool,
    /// Burst length in words.
    pub words: u32,
}

/// A full bus-traffic fuzz case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficCase {
    /// 0 = default config, 1 = AHB preset, 2 = custom timing below.
    pub config: u8,
    /// Custom arbitration cycles.
    pub arbitration: u64,
    /// Custom cycles per word.
    pub cycles_per_word: u64,
    /// Custom burst split limit.
    pub max_burst: u32,
    /// Number of registered masters (1..=3).
    pub masters: usize,
    /// Regions as `(size, latency)`; bases are allocated sequentially
    /// with an unmapped gap after each region.
    pub regions: Vec<(u64, u64)>,
    /// Fault plan seed.
    pub fault_seed: u64,
    /// Slave-error rate (ppm) on the first region's address range.
    pub error_ppm: u32,
    /// Transient-stall rate (ppm).
    pub stall_ppm: u32,
    /// Stall length in ticks.
    pub stall_ticks: u64,
    /// The traffic script.
    pub script: Vec<Txn>,
}

const GAP: u64 = 0x40;

/// Generates one random case under the coverage bias.
pub fn generate(rng: &mut FuzzRng, bias: u64) -> TrafficCase {
    let regions = (0..rng.range(1, 3))
        .map(|_| (rng.range(0x20, 0x100), rng.range(0, 4)))
        .collect();
    let script = (0..rng.range(1, 8 + (bias & 7)))
        .map(|_| Txn {
            dt: rng.range(0, 15),
            master: rng.range_usize(0, 3),
            addr_sel: rng.next_u64(),
            write: rng.flip(),
            words: rng.range(0, 40) as u32,
        })
        .collect();
    TrafficCase {
        config: rng.below(3) as u8,
        arbitration: rng.range(0, 3),
        cycles_per_word: rng.range(0, 4),
        max_burst: [1, 4, 16, u32::MAX][rng.range_usize(0, 3)],
        masters: rng.range_usize(1, 3),
        regions,
        fault_seed: rng.next_u64(),
        error_ppm: if rng.chance(1, 2) {
            rng.range(0, 1_000_000) as u32
        } else {
            0
        },
        stall_ppm: if rng.chance(1, 3) {
            rng.range(0, 1_000_000) as u32
        } else {
            0
        },
        stall_ticks: rng.range(1, 20),
        script,
    }
}

fn bus_config(case: &TrafficCase) -> BusConfig {
    match case.config % 3 {
        0 => BusConfig::default(),
        1 => BusConfig::ahb(),
        _ => BusConfig {
            arbitration_cycles: case.arbitration,
            cycles_per_word: case.cycles_per_word,
            max_burst_words: case.max_burst.max(1),
        },
    }
}

/// Region base addresses: sequential with a `GAP`-sized hole after each,
/// so `addr_sel` can land on mapped bytes, holes, or far-unmapped space.
fn region_bases(case: &TrafficCase) -> Vec<u64> {
    let mut bases = Vec::new();
    let mut next = 0u64;
    for &(size, _) in &case.regions {
        bases.push(next);
        next += size.max(1) + GAP;
    }
    bases
}

fn resolve_addr(case: &TrafficCase, sel: u64) -> u64 {
    let bases = region_bases(case);
    let total: u64 = bases.last().map_or(GAP, |&b| {
        b + case.regions.last().map_or(1, |&(s, _)| s.max(1)) + 2 * GAP
    });
    sel % total
}

fn build_bus(case: &TrafficCase, faulted: bool) -> (Bus, u64) {
    let mut bus = Bus::new("fuzzed", bus_config(case));
    let bases = region_bases(case);
    let mut first_size = 1;
    for (i, (&(size, latency), &base)) in case.regions.iter().zip(&bases).enumerate() {
        bus.map_region(&format!("s{i}"), base, size.max(1), latency);
        if i == 0 {
            first_size = size.max(1);
        }
    }
    for m in 0..case.masters {
        bus.add_master(&format!("m{m}"));
    }
    if faulted {
        let plan = FaultPlan::new(case.fault_seed)
            .with_bus_errors(0, first_size, case.error_ppm)
            .with_slave_stalls(case.stall_ppm, case.stall_ticks);
        bus.set_fault_plan(plan.shared());
    }
    (bus, first_size)
}

/// The full outcome of one script replay.
type Run = (Vec<Result<Reservation, BusError>>, tlm::BusReport);

fn replay(case: &TrafficCase, bus: &mut Bus) -> Run {
    let mut now = 0u64;
    let mut outcomes = Vec::with_capacity(case.script.len());
    for txn in &case.script {
        now += txn.dt;
        let kind = if txn.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let payload = Payload::burst(
            txn.master % (case.masters + 1),
            resolve_addr(case, txn.addr_sel),
            kind,
            txn.words,
        );
        outcomes.push(bus.transfer(SimTime::from_ticks(now), &payload));
        now += 1;
    }
    let report = bus.report(SimTime::from_ticks(now.max(1)));
    (outcomes, report)
}

/// Runs every oracle on the case.
pub fn evaluate(case: &TrafficCase) -> Evaluation {
    let (mut bus, _) = build_bus(case, true);
    let (outcomes, report) = replay(case, &mut bus);

    let mut decode = 0u64;
    let mut unknown = 0u64;
    let mut slave_errors = 0u64;
    let mut granted = 0u64;
    let mut waited_total = 0u64;
    let counters = |d: u64, u: u64, s: u64, g: u64, w: u64, busy: u64| {
        vec![case.script.len() as u64, d, u, s, g, w, busy]
    };

    // Timing invariants along the faulted replay.
    let mut now = 0u64;
    let mut last_start = 0u64;
    for (txn, outcome) in case.script.iter().zip(&outcomes) {
        now += txn.dt;
        match outcome {
            Ok(r) => {
                granted += 1;
                waited_total += r.waited;
                let (s, e) = (r.start.ticks(), r.end.ticks());
                if s < now || e < s || s < last_start {
                    return Evaluation {
                        disagreement: Some(format!(
                            "reservation violates FCFS timing: now={now} start={s} end={e} last_start={last_start}"
                        )),
                        counters: counters(decode, unknown, slave_errors, granted, waited_total, 0),
                    };
                }
                if r.waited != s - now {
                    return Evaluation {
                        disagreement: Some(format!(
                            "waited={} but start-now={}",
                            r.waited,
                            s - now
                        )),
                        counters: counters(decode, unknown, slave_errors, granted, waited_total, 0),
                    };
                }
                last_start = s;
            }
            Err(BusError::Decode { .. }) => decode += 1,
            Err(BusError::UnknownMaster { .. }) => unknown += 1,
            Err(BusError::Slave { at, .. }) => {
                slave_errors += 1;
                last_start = last_start.max(at.ticks());
            }
        }
        now += 1;
    }
    let counters = counters(
        decode,
        unknown,
        slave_errors,
        granted,
        waited_total,
        report.total_busy_ticks,
    );
    let fail = |msg: String| Evaluation {
        disagreement: Some(msg),
        counters: counters.clone(),
    };

    // Report accounting must match what the script observed.
    let txns: u64 = report.masters.iter().map(|m| m.transactions).sum();
    let errs: u64 = report.masters.iter().map(|m| m.errors).sum();
    let waits: u64 = report.masters.iter().map(|m| m.wait_ticks).sum();
    let occupancy: u64 = report.masters.iter().map(|m| m.occupancy_ticks).sum();
    if txns != granted + slave_errors {
        return fail(format!(
            "report counts {txns} transactions, script observed {}",
            granted + slave_errors
        ));
    }
    if errs != slave_errors {
        return fail(format!(
            "report counts {errs} errors, script observed {slave_errors}"
        ));
    }
    if waits < waited_total {
        return fail(format!(
            "report wait ticks {waits} below granted-transfer waits {waited_total}"
        ));
    }
    if occupancy != report.total_busy_ticks {
        return fail(format!(
            "per-master occupancy {occupancy} does not sum to total busy ticks {}",
            report.total_busy_ticks
        ));
    }

    // Determinism: an identical second build must replay bit-identically.
    let (mut bus2, _) = build_bus(case, true);
    let second = replay(case, &mut bus2);
    if second != (outcomes.clone(), report.clone()) {
        return fail("same-seed replay diverged between two runs".into());
    }

    // Instrumentation must be observation-only, and the counters it
    // gathers must match the outcome stream.
    let collector = telemetry::Collector::shared();
    let (mut bus3, _) = build_bus(case, true);
    bus3.set_instrument(collector.clone());
    let third = replay(case, &mut bus3);
    if third != (outcomes.clone(), report.clone()) {
        return fail("instrumented bus diverged from the plain bus".into());
    }
    if collector.counter("bus.transactions") != granted + slave_errors {
        return fail("bus.transactions counter disagrees with the outcome stream".into());
    }
    if collector.counter("bus.errors") != slave_errors {
        return fail("bus.errors counter disagrees with the outcome stream".into());
    }

    // An inert (all-zero-rate) plan must be indistinguishable from none.
    let mut inert_case = case.clone();
    inert_case.error_ppm = 0;
    inert_case.stall_ppm = 0;
    let (mut with_plan, _) = build_bus(&inert_case, true);
    let (mut without_plan, _) = build_bus(&inert_case, false);
    if replay(&inert_case, &mut with_plan) != replay(&inert_case, &mut without_plan) {
        return fail("an all-zero-rate fault plan changed bus behaviour".into());
    }

    Evaluation {
        disagreement: None,
        counters,
    }
}

fn shrink_candidates(case: &TrafficCase) -> Vec<TrafficCase> {
    let mut out = Vec::new();
    for i in 0..case.script.len() {
        let mut c = case.clone();
        c.script.remove(i);
        out.push(c);
    }
    if case.regions.len() > 1 {
        let mut c = case.clone();
        c.regions.pop();
        out.push(c);
    }
    if case.error_ppm != 0 || case.stall_ppm != 0 {
        let mut c = case.clone();
        c.error_ppm = 0;
        c.stall_ppm = 0;
        out.push(c);
    }
    for (i, txn) in case.script.iter().enumerate() {
        if txn.words > 1 {
            let mut c = case.clone();
            c.script[i].words /= 2;
            out.push(c);
        }
        if txn.dt > 0 {
            let mut c = case.clone();
            c.script[i].dt = 0;
            out.push(c);
        }
    }
    out
}

/// One fuzz iteration: generate, evaluate, shrink on disagreement.
pub(crate) fn run_one(rng: &mut FuzzRng, bias: u64) -> FamilyOutcome {
    let case = generate(rng, bias);
    let eval = evaluate(&case);
    let failure = eval.disagreement.map(|detail| {
        let min = shrink::minimize(case, 800, shrink_candidates, |c| {
            evaluate(c).disagreement.is_some()
        });
        crate::Failure {
            detail,
            minimized: format!("{min:?}"),
        }
    });
    FamilyOutcome {
        counters: eval.counters,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_scripts_satisfy_every_oracle() {
        let mut rng = FuzzRng::new(3);
        for bias in 0..40u64 {
            let case = generate(&mut rng, bias);
            let eval = evaluate(&case);
            assert_eq!(eval.disagreement, None, "case {case:?}");
        }
    }

    #[test]
    fn scripts_reach_error_paths() {
        // Across a modest corpus the generator must exercise decode
        // errors and unknown masters (counters 1 and 2).
        let mut rng = FuzzRng::new(5);
        let mut decode = 0;
        let mut unknown = 0;
        for bias in 0..60u64 {
            let case = generate(&mut rng, bias);
            let eval = evaluate(&case);
            decode += eval.counters[1];
            unknown += eval.counters[2];
        }
        assert!(decode > 0, "no decode errors exercised");
        assert!(unknown > 0, "no unknown-master errors exercised");
    }
}
