//! The clause-sharing oracle family: every clause a solver exports must
//! be entailed by the formula it was learnt from, and no import may ever
//! change an answer.
//!
//! Each iteration runs three sub-cases:
//!
//! **Small case** (the SAT family's planted generator, ≤ 14 vars): one
//! solver carries a [`sat::SolverShare`] collector across the cold solve
//! plus repeated assumption-pinned re-solves (assumptions enter the
//! search as decisions, never clauses, so every export is entailed by
//! the CNF alone). The legs:
//!
//! 1. **Entailment**: brute force proves `cnf ∧ ¬c` UNSAT for every
//!    exported clause `c` — the ground truth the sharing design rests on.
//! 2. **Mailbox transport**: the exports travel through a real
//!    [`sat::share::mailbox`] ring (randomized capacity) into a fresh
//!    solver at decision level 0; its verdict must match the planted
//!    expectation and the cold solver, and any model must satisfy the
//!    original clauses.
//! 3. **Seeded re-solve**: a solver seeded via [`sat::Solver::import_clause`]
//!    under a randomized import budget agrees with the cold verdict.
//! 4. **Cooperative portfolio**: [`sat::solve_portfolio_cooperative`]
//!    (sequential and 2-worker, seeded with the exports) agrees with the
//!    plain racing portfolio.
//!
//! **Chained cases**: a sequence of small planted cases solved through
//! ONE share handle (mirroring the cross-obligation lemma pool, where a
//! long-lived pool sees many obligations). The share's export counter
//! persists across solves, so the chain reliably walks past the
//! `share-mutant` corruption stride of 64 even though each small case
//! only learns a handful of clauses. Every export is attributed to the
//! case that produced it (pool-export list segments) and checked against
//! that case's *enumerated model set* — exact entailment, no sampling —
//! so a corrupt export is caught wherever in the stream it lands.
//!
//! **Conflict-rich case**: planted random 3-XOR-SAT (satisfiable by
//! construction, resolution-hard), where a single solve learns well
//! past the `share-mutant` corruption stride of 64. Every export must
//! be satisfied by the planted model and by the cold solver's own
//! (directly validated) model — necessary conditions of entailment —
//! and a fresh share-free solver hunts a witness model of `cnf ∧ ¬c`
//! for each early export under a conflict budget; a found witness is
//! re-validated against the clauses before it is flagged, so a flag is
//! irrefutable evidence of a non-entailed export. Entailment on an
//! *unsatisfiable* formula is vacuous, so only a satisfiable
//! conflict-rich family can catch export corruption at volume.
//!
//! With `--features share-mutant` the exporter flips one literal in
//! every 64th offered clause; the conflict-rich legs catch the
//! non-entailed clause within the first few iterations, and the small
//! case's legs 1–4 guard the transport and seeding paths.

use crate::rng::FuzzRng;
use crate::sat_fuzz::{self, CnfCase};
use crate::shrink;
use crate::{Evaluation, FamilyOutcome};
use sat::{Lit, Solver, Var};

/// Exports to accumulate before the transport/seeding legs run — just
/// past the mutant's corruption stride so at least one flipped clause is
/// in flight whenever the feature is compiled in.
const EXPORT_TARGET: usize = 96;

/// Cap on assumption-pinned solve rounds per iteration (keeps an
/// export-starved case from spinning; the chained-case leg, not this
/// loop, is what crosses the mutant stride).
const MAX_ROUNDS: usize = 6;

fn load_solver(case: &CnfCase) -> (Solver, Vec<Var>) {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..case.num_vars).map(|_| solver.new_var()).collect();
    for clause in &case.clauses {
        solver.add_clause(
            clause
                .iter()
                .map(|&l| Lit::with_polarity(vars[(l.unsigned_abs() - 1) as usize], l > 0)),
        );
    }
    (solver, vars)
}

fn extract_model(solver: &Solver, vars: &[Var]) -> Vec<bool> {
    vars.iter()
        .map(|&v| solver.value(v) == Some(true))
        .collect()
}

fn lit_cnf(case: &CnfCase) -> sat::Cnf {
    sat::Cnf {
        num_vars: case.num_vars,
        clauses: case
            .clauses
            .iter()
            .map(|clause| {
                clause
                    .iter()
                    .map(|&l| {
                        Lit::with_polarity(Var::from_index((l.unsigned_abs() - 1) as usize), l > 0)
                    })
                    .collect()
            })
            .collect(),
    }
}

/// Is `clause` (solver literals) entailed by the case's CNF? Brute
/// force: `cnf ∧ ¬clause` must have no model. Callers cap `num_vars`.
pub fn brute_force_entailed(case: &CnfCase, clause: &[Lit]) -> bool {
    let num_vars = case.num_vars;
    (0u64..(1u64 << num_vars)).all(|bits| {
        let satisfies_cnf = case.clauses.iter().all(|c| {
            c.iter()
                .any(|&l| (bits >> (l.unsigned_abs() - 1)) & 1 == (l > 0) as u64)
        });
        if !satisfies_cnf {
            return true;
        }
        // Every CNF model must satisfy the clause.
        clause
            .iter()
            .any(|&l| (bits >> l.var().index()) & 1 == l.is_positive() as u64)
    })
}

/// Drives one solver over `rounds` assumption-pinned re-solves with a
/// single collector share, returning the exported pool clauses. The
/// assumptions vary the search (forcing fresh conflicts) but never enter
/// the clause database, so every export is entailed by the CNF alone.
fn collect_exports(
    case: &CnfCase,
    rng: &mut FuzzRng,
    pool_cap: usize,
) -> (Vec<Vec<Lit>>, sat::ShareStats, bool) {
    let (mut solver, vars) = load_solver(case);
    solver.set_share(sat::SolverShare::collector(
        sat::ShareFilter::permissive(16),
        pool_cap,
    ));
    let cold = solver.solve().is_sat();
    let mut rounds = 0;
    while rounds < MAX_ROUNDS {
        rounds += 1;
        let exported = solver
            .take_share()
            .map(|share| {
                let n = share.pool_exports().len();
                solver.set_share(share);
                n
            })
            .unwrap_or(0);
        if exported >= EXPORT_TARGET.min(pool_cap) {
            break;
        }
        let mut assumptions: Vec<Lit> = Vec::with_capacity(vars.len());
        for &v in &vars {
            if rng.chance(60, 100) {
                assumptions.push(Lit::with_polarity(v, rng.flip()));
            }
        }
        solver.solve_under_assumptions(&assumptions);
    }
    let share = solver.take_share().expect("collector share is attached");
    let stats = share.stats();
    (share.into_pool_exports(), stats, cold)
}

/// Runs every sharing leg on `case` and reports the first disagreement.
pub fn evaluate(case: &CnfCase, rng: &mut FuzzRng) -> Evaluation {
    let pool_cap = 64 + rng.below(4) as usize * 64; // 64..=256
    let mailbox_capacity = 1 + rng.below(128) as usize; // 1..=128
    let import_budget = 1 + rng.below(96) as usize; // 1..=96

    let (exports, stats, cold) = collect_exports(case, rng, pool_cap);
    let counters = vec![
        stats.exported,
        stats.export_rejected,
        exports.len() as u64,
        cold as u64,
        mailbox_capacity as u64,
    ];
    let report = |detail: String| Evaluation {
        disagreement: Some(detail),
        counters: counters.clone(),
    };

    if let Some(expected) = case.expected {
        if cold != expected {
            return report(format!("cold solver says {cold}, planted is {expected}"));
        }
    }

    // Leg 1: every export is entailed by the CNF (brute force).
    if case.num_vars <= 12 {
        for clause in &exports {
            if !brute_force_entailed(case, clause) {
                return report(format!(
                    "exported clause {clause:?} is NOT entailed by the formula"
                ));
            }
        }
    }

    // Leg 2: exports through a real mailbox ring into a fresh solver at
    // decision level 0; the verdict must not move.
    let (mut tx, mut rx) = sat::share::mailbox(mailbox_capacity);
    for clause in &exports {
        tx.push(clause.clone());
    }
    let (mut transported, tvars) = load_solver(case);
    let mut conflicted = false;
    while let Some(clause) = rx.pop() {
        if transported.import_clause(&clause) == sat::ImportResult::Conflict {
            conflicted = true;
            break;
        }
    }
    if conflicted && cold {
        return report("mailbox imports conflicted on a satisfiable case".into());
    }
    let tv = transported.solve().is_sat();
    if tv != cold {
        return report(format!("mailbox-seeded solver flipped {cold} -> {tv}"));
    }
    if tv {
        let model = extract_model(&transported, &tvars);
        if let Some(ci) = sat_fuzz::violated_clause(&case.clauses, &model) {
            return report(format!("mailbox-seeded model violates clause {ci}"));
        }
    }

    // Leg 3: budget-limited seeding via import_clause.
    let (mut seeded, svars) = load_solver(case);
    for clause in exports.iter().take(import_budget) {
        if seeded.import_clause(clause) == sat::ImportResult::Conflict {
            break;
        }
    }
    let sv = seeded.solve().is_sat();
    if sv != cold {
        return report(format!(
            "import-seeded solver (budget {import_budget}) flipped {cold} -> {sv}"
        ));
    }
    if sv {
        let model = extract_model(&seeded, &svars);
        if let Some(ci) = sat_fuzz::violated_clause(&case.clauses, &model) {
            return report(format!("import-seeded model violates clause {ci}"));
        }
    }

    // Leg 4: the cooperative portfolio, seeded with the exports, against
    // the plain racing portfolio.
    let cnf = lit_cnf(case);
    for mode in [
        exec::ExecMode::Sequential,
        exec::ExecMode::Parallel { workers: 2 },
    ] {
        let coop =
            sat::solve_portfolio_cooperative(&cnf, mode, &sat::ShareConfig::default(), &exports);
        if coop.outcome.result.is_sat() != cold {
            return report(format!(
                "cooperative portfolio ({mode:?}) disagrees with cold verdict {cold}"
            ));
        }
        if let Some(model) = &coop.outcome.model {
            if let Some(ci) = sat_fuzz::violated_clause(&case.clauses, model) {
                return report(format!("cooperative portfolio model violates clause {ci}"));
            }
        }
    }

    Evaluation {
        disagreement: None,
        counters,
    }
}

/// Export volume the chained-case leg drives the shared handle past —
/// comfortably beyond the mutant's 64-export corruption stride.
const CHAIN_EXPORT_TARGET: u64 = 80;

/// Cap on chained cases per iteration (bounds a chain of
/// export-starved cases).
const MAX_CHAIN_CASES: u64 = 48;

/// Generates one chain link: unplanted random 3-SAT at 10–12 variables
/// near the threshold ratio — small enough to enumerate every model
/// (the exact entailment reference), dense enough that each solve
/// contributes a few learnt exports toward the stride.
fn generate_chain_case(rng: &mut FuzzRng) -> CnfCase {
    let num_vars = 10 + rng.below(3) as usize; // 10, 11, 12
    let num_clauses = num_vars * 4 + rng.below(6) as usize;
    let clauses: Vec<Vec<i64>> = (0..num_clauses)
        .map(|_| {
            let mut vars: Vec<usize> = Vec::with_capacity(3);
            while vars.len() < 3 {
                let v = rng.range_usize(1, num_vars);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            vars.into_iter()
                .map(|v| if rng.flip() { v as i64 } else { -(v as i64) })
                .collect()
        })
        .collect();
    CnfCase {
        num_vars,
        clauses,
        expected: None,
        planted: None,
    }
}

/// Enumerates every model of a small case as variable bitmasks (bit `v`
/// = DIMACS variable `v + 1`). Exponential — callers cap `num_vars`.
fn enumerate_models(case: &CnfCase) -> Vec<u64> {
    (0u64..(1u64 << case.num_vars))
        .filter(|&bits| {
            case.clauses.iter().all(|clause| {
                clause
                    .iter()
                    .any(|&l| (bits >> (l.unsigned_abs() - 1)) & 1 == (l > 0) as u64)
            })
        })
        .collect()
}

/// Drives many small cases through ONE collector share — the
/// cross-obligation idiom — then exactly checks every export against
/// the *enumerated* model set of the case that produced it: an entailed
/// clause is satisfied by every model, so one violating model convicts
/// the export. On a disagreement, the second return value is the
/// convicting case (reported as the witness instance).
pub fn evaluate_chain(rng: &mut FuzzRng) -> (Evaluation, Option<CnfCase>) {
    let mut share = sat::SolverShare::collector(sat::ShareFilter::permissive(16), 4096);
    let mut segments: Vec<(CnfCase, usize)> = Vec::new();
    let mut case_no = 0u64;
    while case_no < MAX_CHAIN_CASES && share.stats().exported < CHAIN_EXPORT_TARGET {
        case_no += 1;
        let case = generate_chain_case(rng);
        let (mut solver, _) = load_solver(&case);
        solver.set_share(share);
        solver.solve();
        share = solver.take_share().expect("collector share is attached");
        segments.push((case, share.pool_exports().len()));
    }
    let stats = share.stats();
    let exports = share.into_pool_exports();
    let counters = vec![stats.exported, exports.len() as u64, case_no];
    let report = |detail: String| Evaluation {
        disagreement: Some(detail),
        counters: counters.clone(),
    };
    let mut start = 0usize;
    for (case, end) in &segments {
        let segment = &exports[start..*end];
        start = *end;
        if segment.is_empty() {
            continue;
        }
        if case.num_vars <= 12 {
            let models = enumerate_models(case);
            for clause in segment {
                let convicting = models.iter().find(|&&m| {
                    !clause
                        .iter()
                        .any(|&l| (m >> l.var().index()) & 1 == l.is_positive() as u64)
                });
                if let Some(m) = convicting {
                    return (
                        report(format!(
                            "chained export {clause:?} is NOT entailed (model {m:#x} violates it)"
                        )),
                        Some(case.clone()),
                    );
                }
            }
        } else if let Some(planted) = &case.planted {
            for clause in segment {
                let satisfied = clause
                    .iter()
                    .any(|&l| planted[l.var().index()] == l.is_positive());
                if !satisfied {
                    return (
                        report(format!(
                            "chained export {clause:?} is NOT entailed (planted model violates it)"
                        )),
                        Some(case.clone()),
                    );
                }
            }
        }
    }
    (
        Evaluation {
            disagreement: None,
            counters,
        },
        None,
    )
}

/// Generates the conflict-rich sub-case: planted random 3-XOR-SAT. A
/// consistent GF(2) system (parities computed from a planted model, so
/// the case is satisfiable *by construction*) is Tseitin-encoded into 4
/// clauses per equation. XOR systems are resolution-hard, so CDCL
/// learns hundreds of clauses — far past the mutant's 64-export stride
/// — while the planted model keeps entailment checkable: entailment on
/// an UNSAT formula would be vacuous.
pub fn generate_hard(rng: &mut FuzzRng) -> CnfCase {
    let num_vars = 176 + rng.below(3) as usize * 16; // 176, 192, 208
    let num_eqs = num_vars * 108 / 100 + rng.below(num_vars as u64 / 16) as usize;
    let model: Vec<bool> = (0..num_vars).map(|_| rng.flip()).collect();
    let mut clauses: Vec<Vec<i64>> = Vec::with_capacity(num_eqs * 4);
    for _ in 0..num_eqs {
        let mut vars: Vec<usize> = Vec::with_capacity(3);
        while vars.len() < 3 {
            let v = rng.range_usize(1, num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let parity = vars.iter().fold(false, |acc, &v| acc ^ model[v - 1]);
        // a ⊕ b ⊕ c = parity: one clause per falsifying assignment.
        for assign in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| assign >> i & 1 == 1).collect();
            if bits.iter().fold(false, |acc, &b| acc ^ b) != parity {
                clauses.push(
                    vars.iter()
                        .zip(&bits)
                        .map(|(&v, &b)| if b { -(v as i64) } else { v as i64 })
                        .collect(),
                );
            }
        }
    }
    CnfCase {
        num_vars,
        clauses,
        expected: Some(true),
        planted: Some(model),
    }
}

/// Exact-entailment checks to run per conflict-rich iteration. Covers
/// the mutant's first corruption point (export 64) with headroom.
const HARD_CHECKS: usize = 80;

/// Conflict budget per entailment witness hunt; an exhausted hunt is
/// skipped (never flagged), so the budget bounds cost, not soundness.
const HARD_CHECK_CONFLICTS: u64 = 2000;

/// Drives the conflict-rich legs: collect a high-volume export stream
/// from one solve, then attack every export's entailment.
pub fn evaluate_hard(case: &CnfCase) -> Evaluation {
    let (mut solver, vars) = load_solver(case);
    solver.set_share(sat::SolverShare::collector(
        sat::ShareFilter::permissive(32),
        512,
    ));
    let verdict = solver.solve().is_sat();
    let share = solver.take_share().expect("collector share is attached");
    let stats = share.stats();
    let exports = share.into_pool_exports();
    let counters = vec![
        stats.exported,
        stats.export_rejected,
        exports.len() as u64,
        solver.conflicts(),
        verdict as u64,
    ];
    let report = |detail: String| Evaluation {
        disagreement: Some(detail),
        counters: counters.clone(),
    };
    if let Some(expected) = case.expected {
        if verdict != expected {
            return report(format!(
                "hard-case solver says {verdict}, planted expectation is {expected}"
            ));
        }
    }
    if !verdict {
        // Entailment under an UNSAT formula is vacuous — nothing to check.
        return Evaluation {
            disagreement: None,
            counters,
        };
    }
    let model = extract_model(&solver, &vars);
    if let Some(ci) = sat_fuzz::violated_clause(&case.clauses, &model) {
        return report(format!("hard-case solver model violates clause {ci}"));
    }
    // Necessary condition: every model of the CNF satisfies every
    // entailed clause, so an export violated by the solver's own model
    // or by the planted model cannot be entailed.
    let mut witnesses: Vec<&Vec<bool>> = vec![&model];
    if let Some(planted) = &case.planted {
        witnesses.push(planted);
    }
    for clause in &exports {
        for m in &witnesses {
            let satisfied = clause
                .iter()
                .any(|&l| m[l.var().index()] == l.is_positive());
            if !satisfied {
                return report(format!(
                    "exported clause {clause:?} is NOT entailed (a known model violates it)"
                ));
            }
        }
    }
    // Exact condition, witness-verified: hunt a model of cnf ∧ ¬c on a
    // fresh share-free solver. Any hit is double-checked against the
    // original clauses before flagging, so false alarms are impossible.
    let (mut checker, cvars) = load_solver(case);
    let effort = exec::Effort {
        sat_conflicts: Some(HARD_CHECK_CONFLICTS),
        sat_decisions: None,
        bdd_nodes: None,
    };
    for clause in exports.iter().take(HARD_CHECKS) {
        let negated: Vec<Lit> = clause.iter().map(|&l| !l).collect();
        if let Some(result) = checker.solve_budgeted(&negated, &effort).decided() {
            if result.is_sat() {
                let witness = extract_model(&checker, &cvars);
                let violates_export = !clause
                    .iter()
                    .any(|&l| witness[l.var().index()] == l.is_positive());
                if sat_fuzz::violated_clause(&case.clauses, &witness).is_none() && violates_export {
                    return report(format!(
                        "exported clause {clause:?} is NOT entailed (witness model found)"
                    ));
                }
            }
        }
    }
    Evaluation {
        disagreement: None,
        counters,
    }
}

/// One fuzz iteration: run the small-case legs, the chained-case leg,
/// and the conflict-rich legs; shrink (or report the convicting witness
/// for) whichever disagreed first. The shrink predicates re-run their
/// leg with a fresh deterministic RNG (derived from the case shape) so
/// reductions are reproducible.
pub(crate) fn run_one(rng: &mut FuzzRng, bias: u64) -> FamilyOutcome {
    let case = sat_fuzz::generate(rng, bias);
    let eval = evaluate(&case, rng);
    let (chain_eval, chain_case) = evaluate_chain(rng);
    let hard_case = generate_hard(rng);
    let hard_eval = evaluate_hard(&hard_case);
    let mut counters = eval.counters;
    counters.extend_from_slice(&chain_eval.counters);
    counters.extend_from_slice(&hard_eval.counters);
    let failure = if let Some(detail) = eval.disagreement {
        let still_fails = |c: &CnfCase| {
            let mut r = FuzzRng::new(c.clauses.len() as u64 ^ (c.num_vars as u64) << 32);
            evaluate(c, &mut r).disagreement.is_some()
        };
        let minimized = shrink::minimize(case, 500, sat_fuzz::shrink_candidates, still_fails);
        Some(crate::Failure {
            detail,
            minimized: sat_fuzz::render(&minimized),
        })
    } else if let Some(detail) = chain_eval.disagreement {
        // The chain disagreement already names the non-entailed clause
        // and its violating model; the convicting case is the witness
        // instance (re-deriving the exact export stream during shrinking
        // would need the whole chain replayed, so it is reported whole).
        Some(crate::Failure {
            detail,
            minimized: chain_case
                .as_ref()
                .map(sat_fuzz::render)
                .unwrap_or_default(),
        })
    } else if let Some(detail) = hard_eval.disagreement {
        let still_fails = |c: &CnfCase| evaluate_hard(c).disagreement.is_some();
        let minimized = shrink::minimize(hard_case, 200, sat_fuzz::shrink_candidates, still_fails);
        Some(crate::Failure {
            detail,
            minimized: sat_fuzz::render(&minimized),
        })
    } else {
        None
    };
    FamilyOutcome { counters, failure }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entailment_oracle_accepts_and_rejects_correctly() {
        let case = CnfCase {
            num_vars: 3,
            clauses: vec![vec![1, 2], vec![-2, 3]],
            expected: None,
            planted: None,
        };
        let lit =
            |l: i64| Lit::with_polarity(Var::from_index((l.unsigned_abs() - 1) as usize), l > 0);
        // (1 ∨ 2) ∧ (¬2 ∨ 3) entails (1 ∨ 2) and the resolvent (1 ∨ 3).
        assert!(brute_force_entailed(&case, &[lit(1), lit(2)]));
        assert!(brute_force_entailed(&case, &[lit(1), lit(3)]));
        // It does not entail the unit 3.
        assert!(!brute_force_entailed(&case, &[lit(3)]));
    }

    #[test]
    #[cfg(not(any(feature = "sat-mutant", feature = "share-mutant")))]
    fn healthy_sharing_legs_agree_on_generated_cases() {
        let mut r = FuzzRng::new(77);
        for i in 0..12 {
            let case = sat_fuzz::generate(&mut r, i * 997);
            let eval = evaluate(&case, &mut r);
            assert_eq!(eval.disagreement, None, "case {case:?}");
            assert!(!eval.counters.is_empty());
        }
    }

    #[test]
    #[cfg(not(any(feature = "sat-mutant", feature = "share-mutant")))]
    fn chained_cases_cross_the_mutant_export_stride() {
        // The chained-case leg must actually walk the shared handle past
        // the mutant's 64-export stride, or the share-mutant gate is
        // toothless.
        let mut r = FuzzRng::new(3);
        for i in 0..4 {
            let (eval, case) = evaluate_chain(&mut r);
            assert_eq!(eval.disagreement, None);
            assert!(case.is_none());
            assert!(
                eval.counters[0] >= 64,
                "chain {i} only offered {} exports",
                eval.counters[0]
            );
        }
    }

    #[test]
    #[cfg(not(any(feature = "sat-mutant", feature = "share-mutant")))]
    fn hard_cases_are_conflict_rich() {
        let mut r = FuzzRng::new(3);
        let mut best = 0u64;
        for _ in 0..3 {
            let case = generate_hard(&mut r);
            let eval = evaluate_hard(&case);
            assert_eq!(eval.disagreement, None);
            best = best.max(eval.counters[0]);
        }
        assert!(best >= 32, "best hard run only offered {best} clauses");
    }
}
