//! The fuzzer's deterministic PRNG.
//!
//! A SplitMix64 generator built on the repo's canonical mixing finalizer
//! ([`sim::faults::mix64`]) — no `rand`, no global state, no
//! wall-clock. Every stream is derived purely from a [`ReproId`], so a
//! `seed:family:iter` triple pins the generated case bit-for-bit.

use crate::repro::ReproId;
use sim::faults::{fnv1a, mix64};

/// Golden-ratio increment of SplitMix64.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A seeded deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        FuzzRng {
            state: mix64(seed ^ GAMMA),
        }
    }

    /// The canonical per-iteration stream: derived from the run seed, the
    /// family name, and the iteration ordinal, so a reproducer ID alone
    /// re-creates the exact case.
    pub fn for_iter(id: &ReproId) -> Self {
        let family = fnv1a(id.family.as_str().as_bytes());
        FuzzRng::new(mix64(id.seed) ^ mix64(family) ^ mix64(id.iter.wrapping_mul(GAMMA)))
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix64(self.state)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform usize draw in `lo..=hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A random boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let id = ReproId {
            seed: 7,
            family: Family::Sat,
            iter: 3,
        };
        let a: Vec<u64> = {
            let mut r = FuzzRng::for_iter(&id);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FuzzRng::for_iter(&id);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);

        let other = ReproId {
            iter: 4,
            ..id.clone()
        };
        let c: Vec<u64> = {
            let mut r = FuzzRng::for_iter(&other);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "adjacent iterations must draw distinct streams");
    }

    #[test]
    fn range_is_inclusive_and_in_bounds() {
        let mut r = FuzzRng::new(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..4000 {
            let v = r.range(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
    }
}
