//! The SAT oracle family: planted CNF instances cross-checked across
//! every independent SAT implementation in the workspace.
//!
//! Each iteration plants a case with a *known* verdict — a random model
//! with every clause forced to satisfy it (SAT), or a full sign-cube
//! over a small variable subset buried in random filler (UNSAT) — and
//! then demands agreement between: the CDCL solver, brute-force
//! enumeration, the BDD package (verdict *and* model count), the
//! portfolio (sequential and parallel), a second incremental solve on
//! the same solver, an assumption-pinned replay of the planted model, an
//! instrumented solver, and a DIMACS render/parse round trip. Any model
//! returned is validated against the clauses directly.

use crate::rng::FuzzRng;
use crate::shrink;
use crate::{Evaluation, FamilyOutcome};
use sat::{Lit, Solver, Var};

/// One generated CNF case, in DIMACS literal convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfCase {
    /// Number of variables (literal magnitudes are `1..=num_vars`).
    pub num_vars: usize,
    /// Clauses of non-zero DIMACS-signed literals.
    pub clauses: Vec<Vec<i64>>,
    /// Ground-truth verdict, when known (`true` = satisfiable).
    pub expected: Option<bool>,
    /// The planted model for planted-SAT cases (`planted[v]` for DIMACS
    /// variable `v + 1`).
    pub planted: Option<Vec<bool>>,
}

/// Brute-force satisfiability by full enumeration — the reference even
/// differential pairs cannot argue with. Callers cap `num_vars` (the
/// cost is `2^num_vars · Σ|clause|`).
pub fn brute_force_sat(num_vars: usize, clauses: &[Vec<i64>]) -> bool {
    assert!(
        num_vars < 26,
        "brute force is exponential; keep cases small"
    );
    (0u64..(1u64 << num_vars)).any(|bits| {
        clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|&l| (bits >> (l.unsigned_abs() - 1)) & 1 == (l > 0) as u64)
        })
    })
}

/// Does `model` satisfy every clause? Returns the index of the first
/// violated clause otherwise.
pub fn violated_clause(clauses: &[Vec<i64>], model: &[bool]) -> Option<usize> {
    clauses.iter().position(|clause| {
        !clause
            .iter()
            .any(|&l| model[(l.unsigned_abs() - 1) as usize] == (l > 0))
    })
}

/// Renders the case as DIMACS with the expectation as a comment — the
/// form minimized reproducers are reported in.
pub fn render(case: &CnfCase) -> String {
    let expectation = match case.expected {
        Some(true) => "SAT",
        Some(false) => "UNSAT",
        None => "unknown",
    };
    let dimacs = sat::Dimacs {
        num_vars: case.num_vars,
        clauses: case.clauses.clone(),
    };
    format!("c expected {expectation}\n{}", dimacs.render())
}

/// Generation profile decoded from the coverage-steering bias word.
struct Profile {
    vars_lo: usize,
    vars_hi: usize,
    ratio: u64,
    unsat_pct: u64,
    long_clause_pct: u64,
}

impl Profile {
    fn from_bias(bias: u64) -> Profile {
        let vars_lo = 3 + (bias & 7) as usize; // 3..=10
        Profile {
            vars_lo,
            vars_hi: (vars_lo + 1 + ((bias >> 3) & 7) as usize).min(14),
            ratio: 2 + ((bias >> 6) & 3),
            unsat_pct: 25 + ((bias >> 8) & 3) * 15,
            long_clause_pct: 10 + ((bias >> 10) & 3) * 20,
        }
    }
}

fn random_clause(rng: &mut FuzzRng, num_vars: usize, profile: &Profile) -> Vec<i64> {
    let len = if rng.chance(profile.long_clause_pct, 100) {
        4
    } else {
        // Mostly 2-3 literals, occasionally units.
        match rng.below(10) {
            0 => 1,
            1..=4 => 2,
            _ => 3,
        }
    }
    .min(num_vars);
    let mut vars: Vec<usize> = Vec::with_capacity(len);
    while vars.len() < len {
        let v = rng.range_usize(1, num_vars);
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.into_iter()
        .map(|v| if rng.flip() { v as i64 } else { -(v as i64) })
        .collect()
}

/// Generates one planted case under the steering profile.
pub fn generate(rng: &mut FuzzRng, bias: u64) -> CnfCase {
    let profile = Profile::from_bias(bias);
    let num_vars = rng.range_usize(profile.vars_lo, profile.vars_hi);
    let num_clauses = (num_vars as u64 * profile.ratio + rng.below(4)) as usize;
    if rng.chance(profile.unsat_pct, 100) {
        // Planted UNSAT: all 2^k sign combinations over a k-variable
        // subset form an unsatisfiable core; filler clauses cannot fix it.
        let k = rng.range_usize(2, 3.min(num_vars));
        let mut core_vars: Vec<usize> = Vec::with_capacity(k);
        while core_vars.len() < k {
            let v = rng.range_usize(1, num_vars);
            if !core_vars.contains(&v) {
                core_vars.push(v);
            }
        }
        let mut clauses: Vec<Vec<i64>> = Vec::with_capacity(num_clauses + (1 << k));
        for signs in 0..(1u32 << k) {
            clauses.push(
                core_vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        if signs >> i & 1 == 1 {
                            v as i64
                        } else {
                            -(v as i64)
                        }
                    })
                    .collect(),
            );
        }
        for _ in 0..num_clauses {
            let clause = random_clause(rng, num_vars, &profile);
            let at = rng.range_usize(0, clauses.len());
            clauses.insert(at, clause);
        }
        CnfCase {
            num_vars,
            clauses,
            expected: Some(false),
            planted: None,
        }
    } else {
        // Planted SAT: draw a model, then force every clause to contain
        // at least one literal the model satisfies.
        let model: Vec<bool> = (0..num_vars).map(|_| rng.flip()).collect();
        let clauses: Vec<Vec<i64>> = (0..num_clauses)
            .map(|_| {
                let mut clause = random_clause(rng, num_vars, &profile);
                let satisfied = clause
                    .iter()
                    .any(|&l| model[(l.unsigned_abs() - 1) as usize] == (l > 0));
                if !satisfied {
                    let fix = rng.range_usize(0, clause.len() - 1);
                    clause[fix] = -clause[fix];
                }
                clause
            })
            .collect();
        CnfCase {
            num_vars,
            clauses,
            expected: Some(true),
            planted: Some(model),
        }
    }
}

fn load_solver(case: &CnfCase) -> (Solver, Vec<Var>) {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..case.num_vars).map(|_| solver.new_var()).collect();
    for clause in &case.clauses {
        solver.add_clause(
            clause
                .iter()
                .map(|&l| Lit::with_polarity(vars[(l.unsigned_abs() - 1) as usize], l > 0)),
        );
    }
    (solver, vars)
}

fn extract_model(solver: &Solver, vars: &[Var]) -> Vec<bool> {
    vars.iter()
        .map(|&v| solver.value(v) == Some(true))
        .collect()
}

fn lit_clauses(case: &CnfCase) -> Vec<Vec<Lit>> {
    case.clauses
        .iter()
        .map(|clause| {
            clause
                .iter()
                .map(|&l| {
                    Lit::with_polarity(Var::from_index((l.unsigned_abs() - 1) as usize), l > 0)
                })
                .collect()
        })
        .collect()
}

fn bdd_verdict(case: &CnfCase) -> (bool, u64) {
    let mut mgr = bdd::Manager::new();
    let mut formula = mgr.constant(true);
    for clause in &case.clauses {
        let mut clause_bdd = mgr.constant(false);
        for &l in clause {
            let v = (l.unsigned_abs() - 1) as u32;
            let lit = if l > 0 { mgr.var(v) } else { mgr.nvar(v) };
            clause_bdd = mgr.or(clause_bdd, lit);
        }
        formula = mgr.and(formula, clause_bdd);
    }
    let count = mgr.sat_count(formula, case.num_vars as u32);
    (formula != bdd::Ref::FALSE, count)
}

/// Runs every engine pairing on `case` and reports the first
/// disagreement, plus the behaviour counters used as coverage feedback.
pub fn evaluate(case: &CnfCase) -> Evaluation {
    let report = |detail: String, counters: Vec<u64>| Evaluation {
        disagreement: Some(detail),
        counters,
    };

    // Engine 1: the CDCL solver, with its model validated directly.
    let (mut solver, vars) = load_solver(case);
    let verdict = solver.solve().is_sat();
    let counters = vec![
        solver.conflicts(),
        solver.decisions(),
        solver.propagations(),
        solver.num_learnt() as u64,
        verdict as u64,
    ];
    if verdict {
        let model = extract_model(&solver, &vars);
        if let Some(ci) = violated_clause(&case.clauses, &model) {
            return report(
                format!("solver model violates clause {ci} ({:?})", case.clauses[ci]),
                counters,
            );
        }
    }

    // Ground truth: the planted verdict, and brute force when affordable.
    if let Some(expected) = case.expected {
        if verdict != expected {
            return report(
                format!("solver says {verdict}, planted expectation is {expected}"),
                counters,
            );
        }
    }
    if case.num_vars <= 12 {
        let brute = brute_force_sat(case.num_vars, &case.clauses);
        if verdict != brute {
            return report(
                format!("solver says {verdict}, brute force says {brute}"),
                counters,
            );
        }
    }

    // Engine 2: the BDD package — verdict and model count must agree.
    let (bdd_sat, bdd_count) = bdd_verdict(case);
    if bdd_sat != verdict {
        return report(
            format!("solver says {verdict}, bdd says {bdd_sat}"),
            counters,
        );
    }
    if (bdd_count > 0) != verdict {
        return report(
            format!("bdd sat_count {bdd_count} contradicts verdict {verdict}"),
            counters,
        );
    }

    // Engine 3: the portfolio, sequentially and raced across workers.
    let cnf = sat::Cnf {
        num_vars: case.num_vars,
        clauses: lit_clauses(case),
    };
    for mode in [
        exec::ExecMode::Sequential,
        exec::ExecMode::Parallel { workers: 2 },
    ] {
        let outcome = sat::solve_portfolio(&cnf, mode);
        if outcome.result.is_sat() != verdict {
            return report(
                format!("portfolio ({mode:?}) disagrees with solver verdict {verdict}"),
                counters,
            );
        }
        if let Some(model) = &outcome.model {
            if let Some(ci) = violated_clause(&case.clauses, model) {
                return report(
                    format!("portfolio model violates clause {ci} ({mode:?})"),
                    counters,
                );
            }
        }
    }

    // Incremental re-solve on the same solver must not change its mind.
    let again = solver.solve().is_sat();
    if again != verdict {
        return report(
            format!("incremental re-solve flipped {verdict} -> {again}"),
            counters,
        );
    }
    // The planted model, pinned via assumptions, must be accepted.
    if let Some(model) = &case.planted {
        let assumptions: Vec<Lit> = vars
            .iter()
            .zip(model)
            .map(|(&v, &b)| Lit::with_polarity(v, b))
            .collect();
        if !solver.solve_under_assumptions(&assumptions).is_sat() {
            return report(
                "solver rejects the planted model under assumptions".into(),
                counters,
            );
        }
    }

    // Instrumented vs plain: telemetry must not perturb the verdict.
    let collector = telemetry::Collector::shared();
    let instr: telemetry::SharedInstrument = collector.clone();
    let (mut instrumented, ivars) = load_solver(case);
    instrumented.set_instrument(instr);
    let iverdict = instrumented.solve().is_sat();
    if iverdict != verdict {
        return report(
            format!("instrumented solver says {iverdict}, plain says {verdict}"),
            counters,
        );
    }
    if iverdict {
        let model = extract_model(&instrumented, &ivars);
        if violated_clause(&case.clauses, &model).is_some() {
            return report(
                "instrumented solver model violates a clause".into(),
                counters,
            );
        }
    }

    // DIMACS round trip: render, reparse, resolve.
    let dimacs = sat::Dimacs {
        num_vars: case.num_vars,
        clauses: case.clauses.clone(),
    };
    match sat::dimacs::parse(&dimacs.render()) {
        Err(e) => return report(format!("rendered DIMACS fails to reparse: {e}"), counters),
        Ok(reparsed) => {
            if reparsed != dimacs {
                return report("DIMACS round trip altered the instance".into(), counters);
            }
            let (mut rs, _) = reparsed.into_solver();
            let rv = rs.solve().is_sat();
            if rv != verdict {
                return report(
                    format!("DIMACS round-trip solver says {rv}, original says {verdict}"),
                    counters,
                );
            }
        }
    }

    Evaluation {
        disagreement: None,
        counters,
    }
}

/// Remaps literals so used variables are dense `1..=k`; drops the
/// planted model (shrinking invalidates it) and recomputes the expected
/// verdict by brute force.
fn canonicalize(case: &CnfCase) -> CnfCase {
    let mut map: Vec<usize> = vec![0; case.num_vars + 1];
    let mut next = 0usize;
    let clauses: Vec<Vec<i64>> = case
        .clauses
        .iter()
        .map(|clause| {
            clause
                .iter()
                .map(|&l| {
                    let v = l.unsigned_abs() as usize;
                    if map[v] == 0 {
                        next += 1;
                        map[v] = next;
                    }
                    map[v] as i64 * l.signum()
                })
                .collect()
        })
        .collect();
    with_ground_truth(CnfCase {
        num_vars: next,
        clauses,
        expected: None,
        planted: None,
    })
}

fn with_ground_truth(mut case: CnfCase) -> CnfCase {
    case.planted = None;
    case.expected = if case.num_vars <= 12 {
        Some(brute_force_sat(case.num_vars, &case.clauses))
    } else {
        None
    };
    case
}

pub(crate) fn shrink_candidates(case: &CnfCase) -> Vec<CnfCase> {
    let mut out = Vec::new();
    for i in 0..case.clauses.len() {
        let mut c = case.clone();
        c.clauses.remove(i);
        out.push(with_ground_truth(c));
    }
    for (i, clause) in case.clauses.iter().enumerate() {
        if clause.len() <= 1 {
            continue;
        }
        for j in 0..clause.len() {
            let mut c = case.clone();
            c.clauses[i].remove(j);
            out.push(with_ground_truth(c));
        }
    }
    let canonical = canonicalize(case);
    if canonical.num_vars < case.num_vars {
        out.push(canonical);
    }
    out
}

/// Greedy delta-debugging: any case on which [`evaluate`] still reports
/// a disagreement is a valid reduction.
pub fn shrink_case(case: CnfCase) -> CnfCase {
    shrink::minimize(case, 3000, shrink_candidates, |c| {
        evaluate(c).disagreement.is_some()
    })
}

/// One fuzz iteration: generate, cross-check, and shrink on failure.
pub(crate) fn run_one(rng: &mut FuzzRng, bias: u64) -> FamilyOutcome {
    let case = generate(rng, bias);
    let eval = evaluate(&case);
    let failure = eval.disagreement.map(|detail| {
        let minimized = shrink_case(case);
        crate::Failure {
            detail,
            minimized: render(&minimized),
        }
    });
    FamilyOutcome {
        counters: eval.counters,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> FuzzRng {
        FuzzRng::new(seed)
    }

    #[test]
    fn planted_expectations_match_brute_force() {
        let mut r = rng(11);
        for bias in [0u64, 0x5A5A, u64::MAX] {
            for _ in 0..40 {
                let case = generate(&mut r, bias);
                if case.num_vars <= 12 {
                    assert_eq!(
                        case.expected,
                        Some(brute_force_sat(case.num_vars, &case.clauses)),
                        "planting failed for {case:?}"
                    );
                }
                if let Some(model) = &case.planted {
                    assert_eq!(violated_clause(&case.clauses, model), None);
                }
            }
        }
    }

    #[test]
    fn healthy_engines_agree_on_generated_cases() {
        let mut r = rng(23);
        for i in 0..30 {
            let case = generate(&mut r, i);
            let eval = evaluate(&case);
            #[cfg(not(feature = "sat-mutant"))]
            assert_eq!(eval.disagreement, None, "case {case:?}");
            assert!(!eval.counters.is_empty());
        }
    }

    #[test]
    #[cfg(not(feature = "sat-mutant"))]
    fn a_forced_disagreement_shrinks_to_a_minimal_core() {
        // Corrupt the expectation on a tiny SAT instance: the oracle must
        // flag it, and the shrinker (which re-derives ground truth) must
        // strip it down to clauses that genuinely disagree — here, none,
        // so the wrongly-expected case collapses to the empty instance.
        let case = CnfCase {
            num_vars: 3,
            clauses: vec![vec![1, 2], vec![-1, 3], vec![2, 3], vec![-2, -3], vec![1]],
            expected: Some(false), // wrong on purpose: the instance is SAT
            planted: None,
        };
        assert!(evaluate(&case).disagreement.is_some());
        // Shrinking recomputes ground truth, so the disagreement vanishes
        // on every reduction: the minimum equals the original case.
        let shrunk = shrink_case(case.clone());
        assert_eq!(shrunk, case);
    }

    #[test]
    fn shrinking_a_real_failure_predicate_is_deterministic() {
        // Drive the generic minimizer with the family's candidate
        // function and a stand-in failure ("mentions variable 2"), and
        // pin that the result is minimal and reproducible.
        let case = CnfCase {
            num_vars: 4,
            clauses: vec![vec![1, -2, 3], vec![2, 4], vec![-4, 1], vec![-2]],
            expected: None,
            planted: None,
        };
        let fails = |c: &CnfCase| c.clauses.iter().flatten().any(|&l| l.unsigned_abs() == 2);
        let a = crate::shrink::minimize(case.clone(), 10_000, shrink_candidates, |c| fails(c));
        let b = crate::shrink::minimize(case, 10_000, shrink_candidates, |c| fails(c));
        assert_eq!(a, b);
        assert_eq!(
            a.clauses,
            vec![vec![-2]],
            "a single unit mentioning the pinned variable"
        );
    }
}
