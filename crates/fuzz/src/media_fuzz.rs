//! The media-pipeline oracle family: random datasets and probe frames
//! through the face-recognition reference model, cross-checked against
//! independent recomputation and the behavioural kernel IR.
//!
//! Oracles:
//!
//! * recognition is deterministic (same probe twice → identical
//!   [`media::reference::RecognitionResult`] including the trace),
//! * the WINNER stage equals an independent argmin scan and every trace
//!   distance equals an independent `root(calcdist(distance(...)))`
//!   recomputation,
//! * a noise-free probe of an enrolled `(identity, pose)` recognizes
//!   itself at distance 0,
//! * the behavioural-IR kernels ([`media::kernels::root_function`] and
//!   [`media::kernels::distance_step_function`]) interpreted through
//!   [`behav::interp::Interpreter`] match the pure-Rust pipeline math on
//!   random operands — including the case's own distance values.

use crate::rng::FuzzRng;
use crate::shrink;
use crate::{Evaluation, FamilyOutcome};
use behav::interp::Interpreter;
use media::kernels::{distance_step_function, root_function};
use media::pipeline::{calcdist, distance, root, winner};
use media::reference::{enroll, extract_features, recognize};
use media::{Dataset, DatasetConfig};

/// A media fuzz case: a dataset shape, one probe, and kernel operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaCase {
    /// Identities in the gallery (2..=4).
    pub identities: usize,
    /// Poses per identity (1..=2).
    pub poses: usize,
    /// Square frame edge length (≥ 32).
    pub size: usize,
    /// Sensor noise amplitude.
    pub noise_amp: i64,
    /// Probe identity (modulo `identities`).
    pub probe_identity: usize,
    /// Probe pose (modulo `poses`).
    pub probe_pose: usize,
    /// Probe noise seed (0 = noise-free self-recognition check).
    pub probe_seed: u64,
    /// `(a, b, acc)` operand triples for the DISTANCE-step kernel; the
    /// `a` values double as ROOT kernel inputs.
    pub kernel_probes: Vec<(u64, u64, u64)>,
}

/// Generates one random case under the coverage bias.
pub fn generate(rng: &mut FuzzRng, bias: u64) -> MediaCase {
    let kernel_probes = (0..rng.range(2, 6))
        .map(|_| (rng.below(1 << 16), rng.below(1 << 16), rng.below(1 << 31)))
        .collect();
    MediaCase {
        identities: rng.range_usize(2, 4),
        poses: rng.range_usize(1, 2),
        size: 32 + rng.range_usize(0, 8),
        noise_amp: (bias & 7) as i64,
        probe_identity: rng.range_usize(0, 8),
        probe_pose: rng.range_usize(0, 8),
        probe_seed: if rng.chance(1, 3) { 0 } else { rng.next_u64() },
        kernel_probes,
    }
}

/// Runs every oracle on the case.
pub fn evaluate(case: &MediaCase) -> Evaluation {
    let dataset = Dataset::new(DatasetConfig {
        identities: case.identities,
        poses: case.poses,
        width: case.size,
        height: case.size,
        noise_amp: case.noise_amp,
    });
    let gallery = enroll(&dataset);
    let id = case.probe_identity % case.identities;
    let pose = case.probe_pose % case.poses;
    let probe = dataset.frame(id, pose, case.probe_seed);
    let result = recognize(&probe, &gallery);
    let counters = vec![
        gallery.entries.len() as u64,
        result.trace.edge_count,
        u64::from(result.distance),
        result.trace.winner_entry as u64,
    ];
    let fail = |msg: String| Evaluation {
        disagreement: Some(msg),
        counters: counters.clone(),
    };

    if recognize(&probe, &gallery) != result {
        return fail("recognition of the same probe is not deterministic".into());
    }

    // WINNER versus an independent first-argmin scan.
    let mut best = 0usize;
    for (i, &d) in result.trace.distances.iter().enumerate() {
        if d < result.trace.distances[best] {
            best = i;
        }
    }
    if winner(&result.trace.distances) != best || result.trace.winner_entry != best {
        return fail(format!(
            "winner {} disagrees with argmin scan {best}",
            result.trace.winner_entry
        ));
    }
    let (won_id, won_pose, _) = gallery.entries[best].clone();
    if result.identity != won_id
        || result.pose != won_pose
        || result.distance != result.trace.distances[best]
    {
        return fail("recognition result fields disagree with the winning entry".into());
    }

    // Every trace distance must equal an independent recomputation.
    let (features, _) = extract_features(&probe);
    if features != result.trace.features {
        return fail("trace features differ from a fresh extract_features".into());
    }
    for (i, (_, _, g)) in gallery.entries.iter().enumerate() {
        let d = root(calcdist(&distance(&features, g)));
        if d != result.trace.distances[i] {
            return fail(format!(
                "distance[{i}] {} != recomputed {d}",
                result.trace.distances[i]
            ));
        }
    }

    // Noise-free probes of enrolled frames are exact self-matches.
    if case.probe_seed == 0 && (result.identity != id || result.distance != 0) {
        return fail(format!(
            "noise-free probe of ({id}, {pose}) recognized as ({}, distance {})",
            result.identity, result.distance
        ));
    }

    // Behavioural-IR ROOT vs pure-Rust root on the case's own distances
    // (pre-root magnitudes) and on the random kernel operands.
    let root_fn = root_function();
    let mut root_inputs: Vec<u64> = gallery
        .entries
        .iter()
        .map(|(_, _, g)| calcdist(&distance(&features, g)))
        .collect();
    root_inputs.extend(case.kernel_probes.iter().map(|&(a, _, _)| a));
    let mut interp = Interpreter::new(&root_fn);
    for x in root_inputs {
        let x = x & 0xFFFF_FFFF;
        let got = interp
            .run(&[x])
            .expect("root kernel runs")
            .return_value
            .expect("root kernel returns");
        let want = u64::from(root(x)) & 0xFFFF;
        if got != want {
            return fail(format!(
                "behavioural ROOT({x}) = {got}, pure Rust says {want}"
            ));
        }
    }

    // Behavioural-IR DISTANCE step vs the closed-form accumulator update.
    let dist_fn = distance_step_function();
    for &(a, b, acc) in &case.kernel_probes {
        let got = Interpreter::new(&dist_fn)
            .run(&[a, b, acc])
            .expect("distance kernel runs")
            .return_value
            .expect("distance kernel returns");
        let d = (a as i64 - b as i64).unsigned_abs();
        let want = (acc + d * d) & 0xFFFF_FFFF;
        if got != want {
            return fail(format!(
                "behavioural DISTANCE({a},{b},{acc}) = {got}, pure Rust says {want}"
            ));
        }
    }

    Evaluation {
        disagreement: None,
        counters,
    }
}

fn shrink_candidates(case: &MediaCase) -> Vec<MediaCase> {
    let mut out = Vec::new();
    if case.identities > 2 {
        let mut c = case.clone();
        c.identities -= 1;
        out.push(c);
    }
    if case.poses > 1 {
        let mut c = case.clone();
        c.poses -= 1;
        out.push(c);
    }
    if case.size > 32 {
        let mut c = case.clone();
        c.size = 32;
        out.push(c);
    }
    if case.noise_amp > 0 {
        let mut c = case.clone();
        c.noise_amp = 0;
        out.push(c);
    }
    if case.probe_seed > 1 {
        let mut c = case.clone();
        c.probe_seed = 1;
        out.push(c);
    }
    for i in 0..case.kernel_probes.len() {
        let mut c = case.clone();
        c.kernel_probes.remove(i);
        out.push(c);
    }
    out
}

/// One fuzz iteration: generate, evaluate, shrink on disagreement.
pub(crate) fn run_one(rng: &mut FuzzRng, bias: u64) -> FamilyOutcome {
    let case = generate(rng, bias);
    let eval = evaluate(&case);
    let failure = eval.disagreement.map(|detail| {
        let min = shrink::minimize(case, 60, shrink_candidates, |c| {
            evaluate(c).disagreement.is_some()
        });
        crate::Failure {
            detail,
            minimized: format!("{min:?}"),
        }
    });
    FamilyOutcome {
        counters: eval.counters,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_cases_satisfy_every_oracle() {
        let mut rng = FuzzRng::new(21);
        for bias in 0..4u64 {
            let case = generate(&mut rng, bias);
            let eval = evaluate(&case);
            assert_eq!(eval.disagreement, None, "case {case:?}");
        }
    }

    #[test]
    fn noise_free_probe_cases_self_recognize() {
        let mut rng = FuzzRng::new(22);
        let mut case = generate(&mut rng, 0);
        case.probe_seed = 0;
        let eval = evaluate(&case);
        assert_eq!(eval.disagreement, None);
        // distance counter is 0 for a noise-free self-match.
        assert_eq!(eval.counters[2], 0);
    }
}
