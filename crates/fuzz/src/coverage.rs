//! Coverage-steered generation from telemetry-style counters.
//!
//! The engines already count the work they do (SAT conflicts and
//! propagations, BMC SAT calls, bus waits). The fuzzer uses those
//! counters as cheap coverage feedback: each iteration's counters are
//! bucketed to a signature, and a signature never seen before means the
//! input reached new engine behaviour. The driver keeps the current
//! generator profile while signatures stay fresh and re-randomizes it
//! when they go stale — an AFL-style bias with zero instrumentation cost.

use sim::faults::{fnv1a, mix64};
use std::collections::HashSet;

/// Log-scale bucket of a counter value (0, 1, 2, 4-7, 8-15, … collapse).
pub fn bucket(value: u64) -> u64 {
    64 - u64::from(value.leading_zeros())
}

/// The set of behaviour signatures observed so far in one run.
#[derive(Debug, Default)]
pub struct CoverageMap {
    seen: HashSet<u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// Folds bucketed counters into one signature hash.
    pub fn signature(counters: &[u64]) -> u64 {
        let mut h = fnv1a(b"symbad-fuzz-coverage");
        for &c in counters {
            h = mix64(h ^ bucket(c));
        }
        h
    }

    /// Records the signature of `counters`; true when it is new.
    pub fn observe(&mut self, counters: &[u64]) -> bool {
        self.seen.insert(Self::signature(counters))
    }

    /// Number of distinct signatures observed.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_collapse_magnitudes() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(7), 3);
        assert_eq!(bucket(1 << 40), 41);
    }

    #[test]
    fn novelty_is_first_sighting_only() {
        let mut map = CoverageMap::new();
        assert!(map.observe(&[0, 5, 9]));
        assert!(!map.observe(&[0, 5, 9]));
        // Same buckets, same signature: 4..=7 collapse.
        assert!(!map.observe(&[0, 6, 10]));
        assert!(map.observe(&[1, 5, 9]));
        assert_eq!(map.distinct(), 2);
    }
}
