//! Linear-programming verification (LPV) for the Symbad flow.
//!
//! Re-implementation of the LPV technology the paper adopts from
//! TNI-Valiosys (reference \[7\]): verification questions are compiled to
//! linear programs whose infeasibility or optimum value constitutes a
//! *certificate*. The crate contains:
//!
//! * [`rational`] — exact `i128` rational arithmetic,
//! * [`simplex`] — a two-phase primal simplex solver (Bland's rule, hence
//!   guaranteed termination) over those rationals,
//! * [`petri`] — Petri-net abstractions of the transaction-level model,
//! * [`lpv`] — the four verification encodings used at levels 1–2 of the
//!   flow: deadlock freeness, marking unreachability, deadline achievement
//!   and FIFO dimensioning.
//!
//! # Example: proving a dataflow ring deadlock-free
//!
//! ```
//! use lp::petri::PetriNet;
//! use lp::lpv::{check_liveness, LivenessVerdict};
//!
//! let mut net = PetriNet::new();
//! let a = net.add_transition("producer");
//! let b = net.add_transition("consumer");
//! net.add_channel("data", a, b, 0);
//! net.add_channel("credit", b, a, 4); // 4-deep FIFO modelled as credits
//! assert!(matches!(check_liveness(&net), LivenessVerdict::Live { .. }));
//! ```

pub mod lpv;
pub mod petri;
pub mod rational;
pub mod simplex;

pub use lpv::{
    check_deadline, check_deadline_batch, check_liveness, check_liveness_batch, check_unreachable,
    dimension_fifo, dimension_fifo_batch, ChannelRates, DeadlineVerdict, FifoBound,
    LivenessVerdict, MarkingConstraint, MarkingRelation, Reachability, TaskGraph,
};
pub use petri::{PetriNet, PlaceId, TransitionId};
pub use rational::Rational;
pub use simplex::{Problem, Relation, Solution};
